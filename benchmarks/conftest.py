"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced,
laptop-friendly scale (tens of clients, tens of rounds instead of thousands
of clients and hundreds of rounds).  The *shape* of each result — who wins,
roughly by how much, and in which direction trends move — is asserted; the
absolute numbers are recorded in EXPERIMENTS.md next to the paper's values.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import ExperimentConfig
from repro.federated.client import LocalTrainingConfig


@pytest.fixture(scope="session")
def femnist_bench_config():
    """Reduced-scale stand-in for the paper's FEMNIST setting."""
    return ExperimentConfig(
        dataset="femnist",
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.2,
        rounds=18,
        sample_rate=0.3,
        attack="collapois",
        compromised_fraction=0.125,
        trojan_epochs=12,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        max_test_samples=25,
        seed=7,
    )


@pytest.fixture(scope="session")
def sentiment_bench_config():
    """Reduced-scale stand-in for the paper's Sentiment setting."""
    return ExperimentConfig(
        dataset="sentiment",
        num_clients=24,
        samples_per_client=36,
        alpha=0.2,
        rounds=18,
        sample_rate=0.3,
        attack="collapois",
        compromised_fraction=0.125,
        trojan_epochs=12,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        max_test_samples=25,
        seed=7,
    )


ALPHA_SWEEP = [0.05, 0.5, 5.0]


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
