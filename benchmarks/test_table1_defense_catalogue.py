"""Table I — catalogue of robust federated training defenses.

The paper's Table I lists the robust-aggregation / model-smoothness / DP
defenses considered.  This benchmark verifies every row of the table is
implemented, exercises each one on a CollaPois round, and reports how far the
aggregated update each defense produces deviates from the benign-only mean
(a proxy for how much of the malicious pull survives aggregation).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.defenses.base import AggregationContext
from repro.defenses.registry import available_defenses, make_defense
from repro.experiments.gradient_geometry import _collect_round_updates
from repro.experiments.results import format_table

TABLE1_ROWS = [
    "krum",          # Krum / Multi-Krum
    "median",        # Median GD
    "trimmed_mean",  # Trimmed-mean GD
    "signsgd",       # SignSGD with majority vote
    "rlr",           # Robust learning rate
    "norm_bound",    # Norm bounding
    "crfl",          # CRFL clip + smooth
    "flare",         # FLARE trust scores
    "dp",            # DP-optimizer / user-level DP
]


def test_table1_every_defense_is_implemented():
    names = available_defenses()
    for row in TABLE1_ROWS:
        assert row in names, f"Table I defense {row!r} is missing"


def test_table1_defenses_on_a_collapois_round(benchmark, femnist_bench_config):
    collected = run_once(
        benchmark, _collect_round_updates, femnist_bench_config, "collapois"
    )
    benign = collected["benign"]
    malicious = collected["malicious"]
    updates = np.vstack([benign, malicious])
    global_params = np.zeros(updates.shape[1])
    benign_mean = benign.mean(axis=0)
    ctx = AggregationContext(rng=np.random.default_rng(0))
    rows = []
    for name in TABLE1_ROWS + ["mean", "detector"]:
        defense = make_defense(name)
        aggregated = defense(updates, global_params, ctx)
        rows.append(
            {
                "defense": name,
                "aggregate_norm": float(np.linalg.norm(aggregated)),
                "deviation_from_benign_mean": float(np.linalg.norm(aggregated - benign_mean)),
            }
        )
    print("\nTable I — defense catalogue exercised on one CollaPois round")
    print(format_table(rows))
    by_name = {row["defense"]: row for row in rows}
    # The undefended mean deviates from the benign-only mean (the malicious
    # pull is present); Krum suppresses most of that deviation.
    assert by_name["mean"]["deviation_from_benign_mean"] > by_name["krum"]["deviation_from_benign_mean"]
