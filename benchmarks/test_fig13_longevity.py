"""Fig. 13 — Benign AC and Attack SR over training rounds (longevity).

Paper: MRepl causes an abrupt shift when its replacement round fires and then
decays (≈40% Attack SR decline over 40 rounds), whereas CollaPois rises
steadily and persists with only a negligible drop.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.longevity import longevity_analysis
from repro.experiments.results import format_table


def test_fig13_longevity(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(rounds=24, alpha=0.1)
    series = run_once(
        benchmark, longevity_analysis, config, attacks=["collapois", "mrepl"], eval_every=2
    )
    for attack, rows in series.items():
        print(f"\nFig. 13 — {attack}: Attack SR / Benign AC per round")
        print(format_table(rows))
    colla = [row["attack_success_rate"] for row in series["collapois"]]
    mrepl = [row["attack_success_rate"] for row in series["mrepl"]]
    # CollaPois keeps (or grows) its success toward the end of training.
    assert colla[-1] >= 0.8 * max(colla)
    # CollaPois ends stronger than the one-shot replacement attack, whose
    # effect decays after its replacement round.
    assert colla[-1] >= mrepl[-1]
    assert max(colla) > 0.4
    # Benign accuracy under CollaPois does not crater over time.
    benign = [row["benign_accuracy"] for row in series["collapois"]]
    assert benign[-1] >= 0.8 * max(benign)
