"""Overhead of pairwise-masked secure aggregation.

Runs the same seeded federated workload (full participation, a
≥1e5-parameter MLP) with secure aggregation off and on, asserting the
histories are bit-identical — masking is pure obfuscation, never a numeric
change — and recording the masked run's latency and its communication-ledger
byte total into the BENCH trajectory.  The interesting number is the
relative overhead: mask derivation is one seeded RNG stream per client pair
per round, O(participants · param_dim) words, all in NumPy.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig

#: 256·384 + 384 + 384·10 + 10 = 102,538 parameters — above the 1e5 floor.
HIDDEN = (384,)
PARAM_DIM = 256 * HIDDEN[0] + HIDDEN[0] + HIDDEN[0] * 10 + 10


def _scenario() -> Scenario:
    return Scenario(
        dataset="femnist",
        num_clients=12,
        samples_per_client=16,
        num_classes=10,
        image_size=16,
        hidden=HIDDEN,
        rounds=2,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=9,
        max_test_samples=8,
    )


def test_secagg_masking_overhead(benchmark):
    """plaintext vs masked mean aggregation; histories bit-identical."""
    base = _scenario()
    assert PARAM_DIM >= 100_000

    def sweep():
        rows = []
        histories = {}
        ledgers = {}
        for label, secagg in (("plaintext", False), ("secagg", True)):
            scenario = base.with_overrides(secure_aggregation=secagg)
            start = time.perf_counter()
            result = scenario.run()
            elapsed = time.perf_counter() - start
            histories[label] = result.history.to_dict()["records"]
            ledgers[label] = result.ledger.totals()
            rows.append(
                {
                    "mode": label,
                    "seconds": round(elapsed, 3),
                    "s_per_round": round(elapsed / base.rounds, 3),
                    "ledger_bytes": ledgers[label]["bytes"],
                }
            )
        return rows, histories, ledgers

    rows, histories, ledgers = run_once(benchmark, sweep)
    assert histories["secagg"] == histories["plaintext"], (
        f"masking changed the history at param_dim={PARAM_DIM}"
    )
    # Masking adds zero wire volume: same frames, same payload bytes (the
    # only delta is the 'masked' flag in each update frame's JSON envelope).
    assert ledgers["secagg"]["payload_bytes"] == ledgers["plaintext"]["payload_bytes"]

    print(
        f"\nSecagg overhead — {base.num_clients} clients, "
        f"param_dim={PARAM_DIM}, {os.cpu_count()} cpus"
    )
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["param_dim"] = PARAM_DIM
    benchmark.extra_info["ledger_bytes"] = ledgers["secagg"]["bytes"]
    benchmark.extra_info["cpu_count"] = os.cpu_count()
