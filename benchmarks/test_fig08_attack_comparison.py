"""Figs. 8 & 15 — CollaPois vs DPois / MRepl / DBA across α and FL algorithms.

Paper: CollaPois achieves a much higher Attack SR than every baseline without
a notable Benign AC drop, on both datasets and under FedAvg, FedDC (where
personalisation blunts the baselines but not CollaPois) and MetaFed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.attack_comparison import attack_comparison_sweep
from repro.experiments.results import format_table

ALPHAS = [0.1, 1.0, 10.0]
ATTACKS = ["collapois", "dpois", "mrepl", "dba"]


def _check_collapois_dominates(rows):
    by_attack = {attack: [r for r in rows if r["attack"] == attack] for attack in ATTACKS}
    colla_sr = np.mean([r["attack_success_rate"] for r in by_attack["collapois"]])
    colla_acc = np.mean([r["benign_accuracy"] for r in by_attack["collapois"]])
    for baseline in ("dpois", "mrepl", "dba"):
        base_sr = np.mean([r["attack_success_rate"] for r in by_attack[baseline]])
        assert colla_sr > base_sr, f"CollaPois should beat {baseline}"
    # No dramatic utility loss relative to the baselines' accuracy level.
    baseline_acc = np.mean(
        [r["benign_accuracy"] for a in ("dpois", "dba") for r in by_attack[a]]
    )
    assert colla_acc > baseline_acc - 0.25


def test_fig08_fedavg_sentiment(benchmark, sentiment_bench_config):
    config = sentiment_bench_config.with_overrides(algorithm="fedavg", rounds=14)
    rows = run_once(benchmark, attack_comparison_sweep, config, alphas=ALPHAS, attacks=ATTACKS)
    print("\nFig. 8 — FedAvg, Sentiment-like: attack comparison")
    print(format_table(rows))
    _check_collapois_dominates(rows)


def test_fig15_fedavg_femnist(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(algorithm="fedavg", rounds=14)
    rows = run_once(benchmark, attack_comparison_sweep, config, alphas=ALPHAS, attacks=ATTACKS)
    print("\nFig. 15 — FedAvg, FEMNIST-like: attack comparison")
    print(format_table(rows))
    _check_collapois_dominates(rows)


def test_fig08_feddc_femnist(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(algorithm="feddc", rounds=14)
    rows = run_once(
        benchmark, attack_comparison_sweep, config, alphas=[0.1, 1.0], attacks=["collapois", "dpois"]
    )
    print("\nFig. 15 — FedDC, FEMNIST-like: personalisation blunts DPois, not CollaPois")
    print(format_table(rows))
    colla = np.mean([r["attack_success_rate"] for r in rows if r["attack"] == "collapois"])
    dpois = np.mean([r["attack_success_rate"] for r in rows if r["attack"] == "dpois"])
    assert colla > dpois


def test_fig08_metafed_femnist(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(algorithm="metafed", rounds=10)
    rows = run_once(
        benchmark, attack_comparison_sweep, config, alphas=[0.1, 10.0], attacks=["collapois", "dba"]
    )
    print("\nFig. 15 — MetaFed, FEMNIST-like: attack comparison")
    print(format_table(rows))
    colla = np.mean([r["attack_success_rate"] for r in rows if r["attack"] == "collapois"])
    dba = np.mean([r["attack_success_rate"] for r in rows if r["attack"] == "dba"])
    assert colla > dba
