"""Ablation benches for the design choices called out in DESIGN.md.

* Dynamic learning rate ψ ~ U[a, b] vs an (almost) fixed ψ — the stealth
  mechanism of Eq. 4.
* Malicious-gradient clipping bound A on/off under the NormBound defense.
* Trigger type: warping (WaNet-style) vs pixel patch.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.runner import run_experiment


def test_ablation_dynamic_learning_rate(benchmark, femnist_bench_config):
    """A wider psi range adds randomness without destroying attack success."""

    def sweep():
        rows = []
        for low, high in ((0.98, 0.99), (0.9, 1.0), (0.5, 1.0)):
            config = femnist_bench_config.with_overrides(psi_low=low, psi_high=high, rounds=16)
            result = run_experiment(config)
            attack = result.extras["attack"]
            psis = [entry[2] for entry in attack.psi_history]
            rows.append(
                {
                    "psi_low": low,
                    "psi_high": high,
                    "psi_std": float(np.std(psis)) if psis else 0.0,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation — dynamic learning rate range")
    print(format_table(rows))
    assert rows[0]["psi_std"] < rows[2]["psi_std"]
    for row in rows:
        assert row["attack_success_rate"] > 0.3


def test_ablation_clipping_under_norm_bound(benchmark, femnist_bench_config):
    """Attacker-side clipping keeps the attack effective under NormBound."""

    def sweep():
        rows = []
        for clip in (None, 2.0):
            config = femnist_bench_config.with_overrides(
                clip_bound=clip, rounds=24,
                defense="norm_bound", defense_kwargs={"max_norm": 2.0},
            )
            result = run_experiment(config)
            rows.append(
                {
                    "attacker_clip": "none" if clip is None else clip,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation — attacker-side clipping under the NormBound defense")
    print(format_table(rows))
    # Both variants keep a meaningful attack: server-side clipping already
    # bounds what reaches the aggregate, so attacker-side clipping costs
    # little while improving stealth.
    for row in rows:
        assert row["attack_success_rate"] > 0.2


def test_ablation_trigger_type(benchmark, femnist_bench_config):
    """Warping and pixel-patch triggers both carry the backdoor."""

    def sweep():
        rows = []
        for trigger in ("warping", "patch"):
            config = femnist_bench_config.with_overrides(trigger=trigger, rounds=16)
            result = run_experiment(config)
            rows.append(
                {
                    "trigger": trigger,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation — trigger type")
    print(format_table(rows))
    for row in rows:
        assert row["attack_success_rate"] > 0.4
        assert row["benign_accuracy"] > 0.5
