"""Cost of run telemetry: ~zero disabled, <5% of round latency enabled.

Runs the same seeded federated workload (full participation, a
≥1e5-parameter MLP) with telemetry off and on, asserting the histories are
bit-identical — telemetry is strictly out-of-band observation — and that
the enabled run's median wall time stays within 5% (plus a small absolute
slack for timer noise) of the disabled run.  Each mode runs several times
and the medians are compared, because a single run's wall time on a shared
CI machine is too noisy to gate a single-digit-percent bound on.

The enabled run's whole-run phase breakdown
(:func:`repro.telemetry.render.phase_totals`) is tagged into
``extra_info["phases"]``, which ``benchmarks/record.py`` distills into the
BENCH trajectory — the perf record then says *where* the benchmark's time
went, not just how much there was.
"""

from __future__ import annotations

import os
import statistics
import time

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig
from repro.telemetry import phase_totals

#: 256·384 + 384 + 384·10 + 10 = 102,538 parameters — above the 1e5 floor.
HIDDEN = (384,)
PARAM_DIM = 256 * HIDDEN[0] + HIDDEN[0] + HIDDEN[0] * 10 + 10

#: Runs per mode; medians over these are what the 5% bound compares.
REPEATS = 3

#: Absolute slack (seconds) on top of the 5% relative bound: sub-second
#: workloads on shared runners jitter by tens of milliseconds for reasons
#: unrelated to the code under test.
ABS_SLACK_S = 0.25


def _scenario() -> Scenario:
    return Scenario(
        dataset="femnist",
        num_clients=12,
        samples_per_client=16,
        num_classes=10,
        image_size=16,
        hidden=HIDDEN,
        rounds=2,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=9,
        max_test_samples=8,
    )


def test_telemetry_overhead(benchmark):
    """telemetry off vs on: identical histories, <5% median latency cost."""
    base = _scenario()
    assert PARAM_DIM >= 100_000

    def sweep():
        times = {"off": [], "on": []}
        histories = {}
        last_result = {}
        # Alternate modes so drift (cache warmup, cpu frequency) hits both.
        for _ in range(REPEATS):
            for label, enabled in (("off", False), ("on", True)):
                scenario = base.with_overrides(telemetry=enabled)
                start = time.perf_counter()
                result = scenario.run()
                times[label].append(time.perf_counter() - start)
                histories[label] = result.history.to_dict()["records"]
                last_result[label] = result
        return times, histories, last_result

    times, histories, last_result = run_once(benchmark, sweep)
    assert histories["on"] == histories["off"], (
        f"telemetry changed the history at param_dim={PARAM_DIM}"
    )
    # Disabled runs must not even allocate telemetry state: the feature's
    # entire disabled-mode footprint is one None check per span site.
    assert last_result["off"].telemetry is None
    assert last_result["off"].extras["server"].telemetry is None
    assert last_result["on"].telemetry is not None

    off_median = statistics.median(times["off"])
    on_median = statistics.median(times["on"])
    overhead = on_median / off_median - 1.0
    assert on_median <= off_median * 1.05 + ABS_SLACK_S, (
        f"telemetry overhead {overhead:+.1%} exceeds the 5% budget "
        f"(off={off_median:.3f}s on={on_median:.3f}s)"
    )

    phases = phase_totals(last_result["on"].telemetry)
    rows = [
        {
            "mode": label,
            "median_s": round(statistics.median(times[label]), 3),
            "s_per_round": round(statistics.median(times[label]) / base.rounds, 3),
        }
        for label in ("off", "on")
    ]
    print(
        f"\nTelemetry overhead — {base.num_clients} clients, "
        f"param_dim={PARAM_DIM}, {REPEATS} repeats, {os.cpu_count()} cpus"
    )
    print(format_table(rows))
    print(f"overhead: {overhead:+.1%}; phases: {phases}")
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["param_dim"] = PARAM_DIM
    benchmark.extra_info["overhead_pct"] = round(overhead * 100.0, 2)
    benchmark.extra_info["phases"] = phases
    benchmark.extra_info["cpu_count"] = os.cpu_count()
