"""Distill a pytest-benchmark JSON report into the repo's perf trajectory.

CI runs the benchmark suites with ``--benchmark-json=bench_raw.json``; this
script reduces that (large, machine-specific) report to the small record the
repo tracks per PR — one ``(op, median, param_dim)`` row per benchmark —
and writes ``BENCH_<pr>.json``, which the workflow uploads as an artifact::

    python benchmarks/record.py bench_raw.json --pr 4

``compare`` mode diffs a fresh report against the latest committed
``BENCH_<pr>.json`` and prints a per-benchmark delta table, so the recorded
perf trajectory is actually *read* every CI run, not just appended to::

    python benchmarks/record.py compare bench_raw.json

Regressions above the threshold (default 25%) print a ``WARNING`` but never
fail the run — medians from shared CI runners are too noisy to gate on; the
warning is the prompt for a human (or the next PR) to look.

``param_dim`` is taken from each benchmark's ``extra_info`` when the suite
records one (the perf benches tag themselves); benches without a parameter
dimension record ``null``.  Medians are in seconds, as reported by
pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def distill(raw: dict) -> list[dict]:
    """Reduce a pytest-benchmark report to (op, median, param_dim) rows.

    Benchmarks that tag ``extra_info["ledger_bytes"]`` (runs carrying a
    communication ledger) keep that total in the distilled record, so the
    perf trajectory tracks wire volume alongside wall time.  Benchmarks
    that tag ``extra_info["phases"]`` (telemetry-instrumented runs — a
    whole-run seconds-per-phase dict from
    :func:`repro.telemetry.render.phase_totals`) keep the phase breakdown,
    so the trajectory records *where* a benchmark's time went, not just how
    much there was.
    """
    records = []
    for bench in raw.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        record = {
            "op": bench["name"],
            "median": bench["stats"]["median"],
            "param_dim": extra.get("param_dim"),
        }
        if extra.get("ledger_bytes") is not None:
            record["ledger_bytes"] = extra["ledger_bytes"]
        if extra.get("phases") is not None:
            record["phases"] = extra["phases"]
        records.append(record)
    return sorted(records, key=lambda r: r["op"])


def latest_committed_record(root: Path) -> tuple[int, dict] | None:
    """Load the highest-numbered ``BENCH_<pr>.json`` under ``root``."""
    best: tuple[int, Path] | None = None
    for path in root.glob("BENCH_*.json"):
        stem = path.stem.removeprefix("BENCH_")
        if stem.isdigit() and (best is None or int(stem) > best[0]):
            best = (int(stem), path)
    if best is None:
        return None
    return best[0], json.loads(best[1].read_text())


def compare(
    fresh: list[dict], baseline: list[dict], threshold: float
) -> tuple[list[dict], list[str]]:
    """Diff fresh benchmark rows against a baseline record.

    Returns the delta rows (one per fresh benchmark, sorted by op) and the
    list of over-threshold regression descriptions.
    """
    base_by_op = {row["op"]: row for row in baseline}
    rows = []
    regressions = []
    for row in fresh:
        base = base_by_op.get(row["op"])
        entry = {
            "op": row["op"],
            "baseline_s": None if base is None else round(base["median"], 6),
            "median_s": round(row["median"], 6),
            "delta": "new",
        }
        if base is not None and base["median"] > 0:
            ratio = row["median"] / base["median"] - 1.0
            entry["delta"] = f"{ratio:+.1%}"
            if ratio > threshold:
                regressions.append(f"{row['op']}: {ratio:+.1%} vs baseline")
        rows.append(entry)
    for op in sorted(set(base_by_op) - {row["op"] for row in fresh}):
        rows.append(
            {"op": op, "baseline_s": round(base_by_op[op]["median"], 6),
             "median_s": None, "delta": "removed"}
        )
    return sorted(rows, key=lambda r: r["op"]), regressions


def _format_rows(rows: list[dict]) -> str:
    columns = ["op", "baseline_s", "median_s", "delta"]
    table = [[("" if row[c] is None else str(row[c])) for c in columns] for row in rows]
    widths = [max(len(c), *(len(line[i]) for line in table)) for i, c in enumerate(columns)]
    lines = ["  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))]
    lines.extend("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in table)
    return "\n".join(lines)


def main_compare(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="record.py compare",
        description="Diff a fresh pytest-benchmark report against the latest "
        "committed BENCH_<pr>.json (warn on regressions, never fail)",
    )
    parser.add_argument("report", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument(
        "--against",
        type=Path,
        default=None,
        help="baseline BENCH_<pr>.json (default: highest-numbered committed one)",
    )
    parser.add_argument(
        "--warn-pct",
        type=float,
        default=25.0,
        help="slowdown percentage that triggers a warning (default 25)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="deprecated ratio form of --warn-pct (0.25 = +25%%); wins when "
        "both are given",
    )
    args = parser.parse_args(argv)
    threshold = (
        args.threshold if args.threshold is not None else args.warn_pct / 100.0
    )

    fresh = distill(json.loads(args.report.read_text()))
    if args.against is not None:
        label = str(args.against)
        if not args.against.exists():
            print(f"baseline {label} does not exist; nothing to compare, skipping")
            return 0
        baseline = json.loads(args.against.read_text())
    else:
        found = latest_committed_record(Path(__file__).resolve().parent.parent)
        if found is None:
            print("no committed BENCH_<pr>.json to compare against; skipping")
            return 0
        label = f"BENCH_{found[0]}.json"
        baseline = found[1]

    baseline_records = baseline.get("records") or []
    if not baseline_records:
        print(f"baseline {label} records no benchmarks; nothing to compare, skipping")
        return 0

    rows, regressions = compare(fresh, baseline_records, threshold)
    print(f"Benchmark deltas vs {label} "
          f"(baseline cpu_count={baseline.get('cpu_count')}):")
    print(_format_rows(rows))
    for regression in regressions:
        print(f"WARNING: perf regression {regression}")
    if not regressions:
        print(f"No regressions above {threshold:.0%}.")
    # Deliberately non-fatal: shared-runner medians are too noisy to gate on.
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return main_compare(argv[1:])
    parser = argparse.ArgumentParser(
        description="Distill a pytest-benchmark JSON report to BENCH_<pr>.json"
    )
    parser.add_argument("report", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--pr", type=int, required=True, help="PR number for the record")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default BENCH_<pr>.json next to the report's cwd)",
    )
    args = parser.parse_args(argv)

    raw = json.loads(args.report.read_text())
    records = distill(raw)
    if not records:
        print(f"error: no benchmarks found in {args.report}", file=sys.stderr)
        return 2
    machine_info = raw.get("machine_info", {})
    cpu = machine_info.get("cpu")
    payload = {
        "pr": args.pr,
        "cpu_count": cpu.get("count") if isinstance(cpu, dict) else None,
        "machine": machine_info.get("machine"),
        "records": records,
    }
    out = args.out or Path(f"BENCH_{args.pr}.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {out} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
