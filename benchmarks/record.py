"""Distill a pytest-benchmark JSON report into the repo's perf trajectory.

CI runs the benchmark suites with ``--benchmark-json=bench_raw.json``; this
script reduces that (large, machine-specific) report to the small record the
repo tracks per PR — one ``(op, median, param_dim)`` row per benchmark —
and writes ``BENCH_<pr>.json``, which the workflow uploads as an artifact::

    python benchmarks/record.py bench_raw.json --pr 4

``param_dim`` is taken from each benchmark's ``extra_info`` when the suite
records one (the perf benches tag themselves); benches without a parameter
dimension record ``null``.  Medians are in seconds, as reported by
pytest-benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def distill(raw: dict) -> list[dict]:
    """Reduce a pytest-benchmark report to (op, median, param_dim) rows."""
    records = []
    for bench in raw.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        records.append(
            {
                "op": bench["name"],
                "median": bench["stats"]["median"],
                "param_dim": extra.get("param_dim"),
            }
        )
    return sorted(records, key=lambda r: r["op"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Distill a pytest-benchmark JSON report to BENCH_<pr>.json"
    )
    parser.add_argument("report", type=Path, help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--pr", type=int, required=True, help="PR number for the record")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default BENCH_<pr>.json next to the report's cwd)",
    )
    args = parser.parse_args(argv)

    raw = json.loads(args.report.read_text())
    records = distill(raw)
    if not records:
        print(f"error: no benchmarks found in {args.report}", file=sys.stderr)
        return 2
    machine_info = raw.get("machine_info", {})
    cpu = machine_info.get("cpu")
    payload = {
        "pr": args.pr,
        "cpu_count": cpu.get("count") if isinstance(cpu, dict) else None,
        "machine": machine_info.get("machine"),
        "records": records,
    }
    out = args.out or Path(f"BENCH_{args.pr}.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {out} ({len(records)} records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
