"""Fig. 11 — distribution of Benign AC and Attack SR across individual clients.

Paper: under FedAvg with the DP defense on FEMNIST, clients spread over a wide
range of Attack SR — the population average hides a heavily-infected subset.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.client_level import client_cluster_analysis
from repro.experiments.results import format_table


def test_fig11_per_client_distribution(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(
        rounds=20, defense="dp", defense_kwargs={"clip_norm": 2.0, "noise_multiplier": 0.002}
    )
    analysis = run_once(benchmark, client_cluster_analysis, config)
    benign = analysis["per_client_benign_accuracy"]
    attack = analysis["per_client_attack_success_rate"]
    rows = [
        {"cluster": name, **metrics} for name, metrics in analysis["cluster_metrics"].items()
    ]
    print("\nFig. 11 — per-cluster Benign AC / Attack SR (FedAvg + DP, FEMNIST-like)")
    print(format_table(rows))
    print(f"per-client Attack SR: min={attack.min():.2f} median={np.median(attack):.2f} max={attack.max():.2f}")
    assert benign.shape == attack.shape
    # The spread across clients is wide: the most-affected client has a much
    # higher Attack SR than the least-affected one.
    assert attack.max() - attack.min() > 0.3
    # Cluster metrics are ordered: top clusters are hit hardest.
    metrics = analysis["cluster_metrics"]
    assert metrics["top1%"]["attack_success_rate"] >= metrics["bottom"]["attack_success_rate"]
