"""Fig. 5 — 3-D surface of the |C|/|N| lower bound over (µ_α, σ).

Paper: larger µ_α and σ (more scattered benign gradients, i.e. more diverse
local data) reduce the number of compromised clients needed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.theory_figs import alpha_to_bound, bound_surface


def test_fig05_bound_surface(benchmark):
    surface = run_once(benchmark, bound_surface, resolution=12)
    grid = surface["surface"]
    print("\nFig. 5 — |C|/|N| lower-bound surface (rows: sigma, cols: mu)")
    print(np.array_str(grid, precision=3, suppress_small=True))
    assert grid.shape == (12, 12)
    assert np.all(grid >= 0.0) and np.all(grid <= 1.0)
    # Monotone decrease along both axes (more diversity -> fewer clients).
    assert np.all(np.diff(grid, axis=0) <= 1e-12)
    assert np.all(np.diff(grid, axis=1) <= 1e-12)


def test_fig05_companion_alpha_mapping(benchmark):
    rows = run_once(benchmark, alpha_to_bound, [0.01, 0.1, 1.0, 10.0, 100.0])
    print("\nFig. 5 companion — analytic bound as a function of alpha")
    print(format_table(rows))
    fractions = [row["fraction"] for row in rows]
    assert all(fractions[i] <= fractions[i + 1] + 1e-12 for i in range(len(fractions) - 1))
