"""Fig. 6 — attack stealthiness: malicious and benign gradients blend.

Paper: with ψ ~ U[0.95, 0.99] the average angle (and its variance) between
malicious gradients and a background of sampled gradients is close to that of
benign gradients, so angle-based screening cannot separate them.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.gradient_geometry import stealth_angle_analysis
from repro.experiments.results import format_table


def test_fig06_stealth_blending(benchmark, femnist_bench_config):
    rows = run_once(
        benchmark,
        stealth_angle_analysis,
        femnist_bench_config,
        psi_ranges=[(0.95, 0.99), (0.5, 1.0)],
    )
    print("\nFig. 6 — malicious vs benign gradient angle statistics")
    print(format_table(rows))
    for row in rows:
        # Malicious angles to the benign background stay within the spread of
        # the benign population itself (no obvious separation).
        assert row["malicious_angle_mean"] <= row["benign_angle_mean"] + 3 * row["benign_angle_std"]
    # A wider psi range adds randomness to the malicious updates' magnitudes.
    narrow, wide = rows[0], rows[1]
    assert wide["psi_high"] - wide["psi_low"] > narrow["psi_high"] - narrow["psi_low"]
