"""Performance benches for the execution engine and the col2im Conv2d backward.

* ``test_conv2d_backward_col2im`` — the vectorised kernel-offset scatter-add
  against the historical Python double loop over output positions (the exact
  code shipped before the optimisation), on identical inputs.
* ``test_backend_wall_clock_20_clients`` — serial vs. thread(-vs. process)
  backend wall clock on a full-participation 20-client federation, with the
  bit-identical-history guarantee asserted on the side.

Timings are always recorded (``extra_info``); the speedup *assertions* only
run off-CI and, for the backend bench, on multi-core hosts — wall-clock
thresholds are too noisy on shared CI runners to gate a pipeline on.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import format_table
from repro.experiments.runner import run_experiment
from repro.federated.client import LocalTrainingConfig
from repro.nn.layers import Conv2d


def _backward_reference_loop(conv: Conv2d, grad_out: np.ndarray) -> np.ndarray:
    """The pre-optimisation Conv2d.backward input-gradient path, verbatim."""
    batch, _, out_h, out_w = grad_out.shape
    k = conv.kernel_size
    grad = grad_out.transpose(0, 2, 3, 1)
    grad_2d = grad.reshape(-1, conv.out_channels)
    w_mat = conv.params["W"].reshape(conv.out_channels, -1)
    grad_cols = (grad_2d @ w_mat).reshape(batch, out_h, out_w, conv.in_channels, k, k)
    grad_x = np.zeros(conv._x_shape, dtype=np.float64)
    stride = conv.stride
    for i in range(out_h):
        hi = i * stride
        for j in range(out_w):
            wj = j * stride
            grad_x[:, :, hi : hi + k, wj : wj + k] += grad_cols[:, i, j]
    if conv.padding:
        pad = conv.padding
        grad_x = grad_x[:, :, pad:-pad, pad:-pad]
    return grad_x


def _time(fn, repeats: int = 10) -> float:
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_conv2d_backward_col2im(benchmark):
    """Vectorised col2im must match the loop bit-for-bit-ish and beat it."""
    rng = np.random.default_rng(0)
    conv = Conv2d(4, 8, kernel_size=3, padding=1, rng=rng)
    x = rng.normal(size=(16, 4, 32, 32))
    grad_out = rng.normal(size=conv.forward(x, training=True).shape)

    reference = _backward_reference_loop(conv, grad_out)
    conv.zero_grad()
    vectorized = conv.backward(grad_out)
    # Same math, different floating-point summation order.
    np.testing.assert_allclose(vectorized, reference, rtol=1e-10, atol=1e-12)

    loop_time = _time(lambda: _backward_reference_loop(conv, grad_out))
    vec_time = run_once(benchmark, lambda: _time(lambda: conv.backward(grad_out)))
    speedup = loop_time / vec_time
    benchmark.extra_info["loop_ms"] = loop_time * 1000
    benchmark.extra_info["vectorized_ms"] = vec_time * 1000
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nConv2d.backward col2im: loop {loop_time * 1000:.2f} ms -> "
        f"vectorized {vec_time * 1000:.2f} ms ({speedup:.2f}x)"
    )
    if not os.environ.get("CI"):
        assert speedup > 1.1, f"vectorised col2im should beat the loop, got {speedup:.2f}x"


def test_backend_wall_clock_20_clients(benchmark):
    """Serial vs. parallel backend wall clock on a 20-client round plan."""
    config = ExperimentConfig(
        dataset="femnist",
        num_clients=20,
        samples_per_client=32,
        num_classes=6,
        image_size=16,
        alpha=0.3,
        rounds=5,
        sample_rate=1.0,  # all 20 clients train every round
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=3,
    )
    backends = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        backends.append("process")

    def sweep():
        rows = []
        histories = {}
        for backend in backends:
            start = time.perf_counter()
            result = run_experiment(config.with_overrides(backend=backend))
            elapsed = time.perf_counter() - start
            histories[backend] = result.history
            rows.append({"backend": backend, "seconds": round(elapsed, 3)})
        return rows, histories

    rows, histories = run_once(benchmark, sweep)
    reference = histories["serial"].series("update_norm")
    for backend, history in histories.items():
        assert history.series("update_norm") == reference, (
            f"{backend} backend diverged from serial"
        )

    serial_time = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = round(serial_time / row["seconds"], 2)
    print("\nExecution-backend wall clock — 20 clients/round, 5 rounds")
    print(format_table(rows))
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["rows"] = rows

    if (os.cpu_count() or 1) > 1 and not os.environ.get("CI"):
        thread_row = next(r for r in rows if r["backend"] == "thread")
        assert thread_row["speedup_vs_serial"] > 1.05, (
            "thread backend should show wall-clock speedup on a multi-core host: "
            f"{rows}"
        )
