"""Fig. 7 — the server's estimation error of the Trojaned model X over rounds.

Paper: with detection precision p = 1 the error stabilises at a controlled
lower bound as training progresses, preventing accurate reconstruction of X.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.theory_figs import estimation_error_over_rounds


def test_fig07_estimation_error_over_rounds(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(rounds=16)
    rows = run_once(
        benchmark, estimation_error_over_rounds, config, checkpoints=[4, 8, 16], precision=1.0
    )
    print("\nFig. 7 — server estimation error of X over training rounds (p=1)")
    print(format_table(rows))
    for row in rows:
        # Theorem 3: the realised error of the naive estimator never drops
        # below the lower bound (up to numerical slack).
        assert row["lower_bound"] >= 0.0
        assert row["realized_error"] >= 0.0
    # The global model keeps approaching X while the estimation error of X
    # does not collapse to zero.
    assert rows[-1]["distance_to_trojan"] <= rows[0]["distance_to_trojan"] + 1e-9
    assert rows[-1]["realized_error"] > 0.0
