"""Fig. 12 — label-distribution similarity to the auxiliary data vs Attack SR.

Paper: clusters of benign clients whose cumulative label distributions are
closer (higher cosine similarity) to the attacker's auxiliary data Da show
higher Attack SR; the bottom-50% cluster has both the lowest similarity and
the lowest Attack SR.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.client_level import label_similarity_analysis
from repro.experiments.results import format_table


def _check_similarity_tracks_attack(rows):
    named = {row["cluster"]: row for row in rows}
    # The top-25% cluster (more stable than the single-client top-1% cluster
    # at this reduced scale) is at least as similar to Da as the bottom
    # cluster, and is hit at least as hard — the Fig. 12 correlation.
    top = named["top25%"]
    bottom = named["bottom"]
    assert top["cosine_similarity"] >= bottom["cosine_similarity"] - 0.05
    assert top["attack_success_rate"] >= bottom["attack_success_rate"] - 1e-9


def test_fig12_femnist(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(rounds=20, alpha=0.1)
    rows = run_once(benchmark, label_similarity_analysis, config)
    print("\nFig. 12 — cluster similarity to Da vs Attack SR (FEMNIST-like)")
    print(format_table(rows))
    _check_similarity_tracks_attack(rows)


def test_fig12_sentiment(benchmark, sentiment_bench_config):
    config = sentiment_bench_config.with_overrides(rounds=16, alpha=0.1)
    rows = run_once(benchmark, label_similarity_analysis, config)
    print("\nFig. 12 — cluster similarity to Da vs Attack SR (Sentiment-like)")
    print(format_table(rows))
    _check_similarity_tracks_attack(rows)
