"""Performance benches for the streaming update pipeline.

* ``test_streaming_mean_peak_memory`` — peak traced allocations of the
  streaming accumulate/finalize protocol vs. the buffered matrix path for
  the mean aggregator at a large ``param_dim``.  The buffered path has to
  materialise the full ``(clients, param_dim)`` stack; the streaming path
  holds one running vector plus the update in flight, so its peak should be
  a small multiple of ``param_dim`` regardless of the client count.  Memory
  accounting is deterministic, so this assertion also runs on CI.
* ``test_streaming_round_latency`` — end-to-end round wall clock,
  ``streaming=on`` vs ``streaming=off``, on the serial and thread backends,
  with the bit-identical-history guarantee asserted on the side.  Wall-clock
  assertions stay off-CI (shared runners are too noisy to gate on).
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from benchmarks.conftest import run_once
from repro.defenses.base import AggregationContext, MeanAggregator
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import format_table
from repro.experiments.runner import run_experiment
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.plan import ClientUpdate

NUM_CLIENTS = 32
PARAM_DIM = 100_000  # buffered stack: 32 * 100k * 8 B ≈ 25.6 MB


def _iter_synthetic_updates():
    """Yield one round of synthetic client updates without retaining them."""
    for slot in range(NUM_CLIENTS):
        vector = np.random.default_rng(slot).normal(size=PARAM_DIM)
        yield ClientUpdate(client_id=slot, slot=slot, update=vector)


def _traced_peak(fn):
    tracemalloc.start()
    try:
        out = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return out, peak


def test_streaming_mean_peak_memory(benchmark):
    """Streaming aggregation must not materialise the round matrix."""
    global_params = np.zeros(PARAM_DIM)

    def buffered():
        ctx = AggregationContext(rng=np.random.default_rng(0))
        stacked = np.stack([u.update for u in _iter_synthetic_updates()])
        return MeanAggregator()(stacked, global_params, ctx)

    def streaming():
        ctx = AggregationContext(rng=np.random.default_rng(0))
        aggregator = MeanAggregator()
        state = aggregator.begin_round(ctx)
        for update in _iter_synthetic_updates():
            aggregator.accumulate(state, update)
        return aggregator.finalize(state, global_params, ctx)

    buffered_out, buffered_peak = _traced_peak(buffered)
    streaming_out, streaming_peak = run_once(
        benchmark, lambda: _traced_peak(streaming)
    )

    np.testing.assert_array_equal(streaming_out, buffered_out)

    rows = [
        {"path": "buffered", "peak_mib": buffered_peak / 2**20},
        {"path": "streaming", "peak_mib": streaming_peak / 2**20},
    ]
    print(
        f"\nMean aggregation peak memory — {NUM_CLIENTS} clients, "
        f"param_dim={PARAM_DIM}"
    )
    print(format_table(rows, floatfmt=".1f"))
    benchmark.extra_info["buffered_peak_mib"] = buffered_peak / 2**20
    benchmark.extra_info["streaming_peak_mib"] = streaming_peak / 2**20

    matrix_bytes = NUM_CLIENTS * PARAM_DIM * 8
    assert buffered_peak > matrix_bytes, "buffered path should hold the full stack"
    # Streaming holds the running sum + the update in flight (+ generator
    # scratch): a handful of param_dim vectors, nowhere near the matrix.
    assert streaming_peak < buffered_peak / 4, (
        f"streaming peak {streaming_peak / 2**20:.1f} MiB should be well under "
        f"the buffered {buffered_peak / 2**20:.1f} MiB"
    )


def test_streaming_round_latency(benchmark):
    """streaming=on vs off wall clock; histories must stay bit-identical."""
    config = ExperimentConfig(
        dataset="femnist",
        num_clients=16,
        samples_per_client=32,
        num_classes=6,
        image_size=16,
        alpha=0.3,
        rounds=4,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=3,
    )

    def sweep():
        rows = []
        histories = {}
        for backend in ("serial", "thread"):
            for mode in ("off", "on"):
                scenario = config.with_overrides(backend=backend, streaming=mode)
                start = time.perf_counter()
                result = run_experiment(scenario)
                elapsed = time.perf_counter() - start
                histories[(backend, mode)] = result.history
                rows.append(
                    {
                        "backend": backend,
                        "streaming": mode,
                        "seconds": round(elapsed, 3),
                    }
                )
        return rows, histories

    rows, histories = run_once(benchmark, sweep)
    reference = histories[("serial", "off")].series("update_norm")
    for key, history in histories.items():
        assert history.series("update_norm") == reference, (
            f"{key} diverged from the buffered serial reference"
        )

    print("\nRound latency — streaming vs buffered, 16 clients/round, 4 rounds")
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    if not os.environ.get("CI"):
        by_key = {(r["backend"], r["streaming"]): r["seconds"] for r in rows}
        # Streaming folds aggregation into the round instead of adding work;
        # allow generous slack because each cell is a short run.
        assert by_key[("serial", "on")] < by_key[("serial", "off")] * 1.5, rows
