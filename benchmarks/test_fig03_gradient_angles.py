"""Fig. 3 — gradient-angle geometry as a function of the non-IID level α.

Paper: (a) benign clients' gradients scatter more (larger pairwise angles) as
α shrinks, while CollaPois's malicious gradients stay tightly aligned;
(b) DPois's malicious gradients scatter like benign ones.
"""

from __future__ import annotations

from benchmarks.conftest import ALPHA_SWEEP, run_once
from repro.experiments.gradient_geometry import gradient_angle_analysis
from repro.experiments.results import format_table


def test_fig03_gradient_angle_geometry(benchmark, femnist_bench_config):
    rows = run_once(
        benchmark, gradient_angle_analysis, femnist_bench_config, alphas=ALPHA_SWEEP
    )
    print("\nFig. 3 — gradient angles vs alpha (FEMNIST-like)")
    print(format_table(rows))
    # CollaPois malicious gradients are (near-)parallel at every alpha and
    # tighter than both benign gradients and DPois malicious gradients.
    for row in rows:
        assert row["collapois_malicious_angle_mean"] <= 0.2
        assert row["collapois_malicious_angle_mean"] < row["benign_angle_mean"]
        assert row["collapois_malicious_angle_mean"] <= row["dpois_malicious_angle_mean"] + 1e-9
    # Benign gradients scatter more under more diverse data (smaller alpha).
    by_alpha = {row["alpha"]: row for row in rows}
    assert by_alpha[min(ALPHA_SWEEP)]["benign_angle_mean"] > by_alpha[max(ALPHA_SWEEP)]["benign_angle_mean"]
