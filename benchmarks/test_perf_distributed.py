"""Round-latency benches for the distributed execution backend.

``test_distributed_round_latency`` runs the same seeded federated workload
— full participation, a ≥1e5-parameter MLP so the update vectors crossing
the wire are benchmark-sized — through the serial, thread and distributed
(2 local socket workers) backends, asserting history bit-identity across
all three and recording per-backend round latency into the BENCH
trajectory.  Wall-clock *assertions* are deliberately absent: the
distributed backend pays two interpreter spawns plus per-round parameter
broadcasts, which only amortise on real multi-host/multi-core hardware,
and shared CI runners are too noisy to gate on.  The numbers are recorded
so the trajectory shows when the break-even point moves.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig

NUM_WORKERS = 2
#: 256·384 + 384 + 384·10 + 10 = 102,538 parameters — above the 1e5 floor.
HIDDEN = (384,)
PARAM_DIM = 256 * HIDDEN[0] + HIDDEN[0] + HIDDEN[0] * 10 + 10

BACKENDS = (
    ("serial", {}),
    ("thread", {"backend_workers": NUM_WORKERS}),
    ("distributed", {"backend_workers": NUM_WORKERS}),
)


def _scenario() -> Scenario:
    return Scenario(
        dataset="femnist",
        num_clients=12,
        samples_per_client=16,
        num_classes=10,
        image_size=16,
        hidden=HIDDEN,
        rounds=2,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=9,
        max_test_samples=8,
    )


def test_distributed_round_latency(benchmark):
    """serial vs thread vs 2-worker distributed; histories bit-identical."""
    base = _scenario()
    assert PARAM_DIM >= 100_000

    def sweep():
        rows = []
        histories = {}
        for name, overrides in BACKENDS:
            scenario = base.with_overrides(backend=name, **overrides)
            start = time.perf_counter()
            result = scenario.run()
            elapsed = time.perf_counter() - start
            histories[name] = result.history.to_dict()["records"]
            rows.append(
                {
                    "backend": name,
                    "seconds": round(elapsed, 3),
                    "s_per_round": round(elapsed / base.rounds, 3),
                }
            )
        return rows, histories

    rows, histories = run_once(benchmark, sweep)
    for name, _overrides in BACKENDS[1:]:
        assert histories[name] == histories["serial"], (
            f"{name} backend diverged from serial at param_dim={PARAM_DIM}"
        )

    print(
        f"\nRound latency — {base.num_clients} clients, param_dim={PARAM_DIM}, "
        f"{NUM_WORKERS} workers, {os.cpu_count()} cpus"
    )
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["param_dim"] = PARAM_DIM
    benchmark.extra_info["num_workers"] = NUM_WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
