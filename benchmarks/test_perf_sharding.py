"""Performance benches for sharded streaming aggregation.

* ``test_sharded_fold_latency_scaling`` — wall clock of one full streaming
  round fold (accumulate × 32 clients + finalize), plain single fold vs. a
  4-shard worker-pool fold, across ``param_dim`` 1e5–1e6.  Bit-identity of
  the two paths is asserted unconditionally at every size; the ≥1.5×
  speedup at ``param_dim=1e6`` is asserted only where it is physically
  possible — thread-parallel elementwise folds need cores, so the gate is
  ``os.cpu_count() >= 2 * NUM_SHARDS`` and not CI (shared runners are too
  noisy to gate wall clock on, as with the other perf suites).
* ``test_sharded_round_end_to_end`` — full federated rounds through the
  server with ``num_shards=4`` vs ``num_shards=1``; history bit-identity is
  the assertion, the latency table is recorded for the perf trajectory.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.defenses.base import AggregationContext, MeanAggregator
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import format_table
from repro.experiments.runner import run_experiment
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.plan import ClientUpdate
from repro.federated.engine.sharding import ShardedAggregator

NUM_CLIENTS = 32
NUM_SHARDS = 4
PARAM_DIMS = (100_000, 300_000, 1_000_000)


def _synthetic_updates(param_dim: int) -> list[ClientUpdate]:
    rng = np.random.default_rng(11)
    return [
        ClientUpdate(client_id=slot, slot=slot, update=rng.normal(size=param_dim))
        for slot in range(NUM_CLIENTS)
    ]


def _fold_round(aggregator, updates, param_dim):
    ctx = AggregationContext(rng=np.random.default_rng(0))
    state = aggregator.begin_round(ctx)
    for update in updates:
        aggregator.accumulate(state, update)
    return aggregator.finalize(state, np.zeros(param_dim), ctx)


def _best_of(fn, repeats=5):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def test_sharded_fold_latency_scaling(benchmark):
    """Sharded fold must stay bit-identical and scale with shard workers."""

    def sweep():
        rows = []
        for param_dim in PARAM_DIMS:
            updates = _synthetic_updates(param_dim)
            plain_s, plain_out = _best_of(
                lambda updates=updates, param_dim=param_dim: _fold_round(
                    MeanAggregator(), updates, param_dim
                )
            )
            sharded = ShardedAggregator(MeanAggregator(), NUM_SHARDS)
            try:
                sharded_s, sharded_out = _best_of(
                    lambda updates=updates, param_dim=param_dim: _fold_round(
                        sharded, updates, param_dim
                    )
                )
            finally:
                sharded.close()
            np.testing.assert_array_equal(sharded_out, plain_out)
            rows.append(
                {
                    "param_dim": param_dim,
                    "plain_ms": round(plain_s * 1e3, 2),
                    "sharded_ms": round(sharded_s * 1e3, 2),
                    "speedup": round(plain_s / sharded_s, 2),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print(
        f"\nStreaming-mean round fold — {NUM_CLIENTS} clients, "
        f"{NUM_SHARDS} shard workers, {os.cpu_count()} cpus"
    )
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["param_dim"] = PARAM_DIMS[-1]
    benchmark.extra_info["num_shards"] = NUM_SHARDS
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    # The speedup target needs real cores to fold shards on: on a 1-core box
    # the sharded path can only reach parity (which bit-identity still pins).
    cpus = os.cpu_count() or 1
    if not os.environ.get("CI") and cpus >= 2 * NUM_SHARDS:
        at_top = next(r for r in rows if r["param_dim"] == PARAM_DIMS[-1])
        assert at_top["speedup"] >= 1.5, rows


def test_sharded_round_end_to_end(benchmark):
    """num_shards=4 vs 1 through the real server; histories bit-identical."""
    config = ExperimentConfig(
        dataset="femnist",
        num_clients=16,
        samples_per_client=32,
        num_classes=6,
        image_size=16,
        alpha=0.3,
        rounds=4,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=3,
    )

    def sweep():
        rows = []
        histories = {}
        for shards in (1, NUM_SHARDS):
            scenario = config.with_overrides(num_shards=shards)
            start = time.perf_counter()
            result = run_experiment(scenario)
            elapsed = time.perf_counter() - start
            histories[shards] = result.history
            rows.append({"num_shards": shards, "seconds": round(elapsed, 3)})
        return rows, histories

    rows, histories = run_once(benchmark, sweep)
    reference = histories[1].series("update_norm")
    assert histories[NUM_SHARDS].series("update_norm") == reference, (
        "sharded run diverged from the unsharded reference"
    )

    print(f"\nEnd-to-end round latency — num_shards 1 vs {NUM_SHARDS}")
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["cpu_count"] = os.cpu_count()
