"""Fig. 4 — relative approximation error of the Theorem-1 lower bound vs α.

Paper: the error of approximating Σβ² by its Gaussian expectation is marginal
across all α (2.23% at α = 0.01 down to 0.57% at α = 100).
"""

from __future__ import annotations

from benchmarks.conftest import ALPHA_SWEEP, run_once
from repro.experiments.results import format_table
from repro.experiments.theory_figs import bound_approximation_error_sweep


def test_fig04_bound_approximation_error(benchmark, femnist_bench_config):
    rows = run_once(
        benchmark, bound_approximation_error_sweep, femnist_bench_config, alphas=ALPHA_SWEEP
    )
    print("\nFig. 4 — Theorem 1 bound approximation error vs alpha")
    print(format_table(rows))
    for row in rows:
        # The approximation error stays marginal (paper: a few percent).
        assert row["relative_error"] < 0.15
        # And the bound itself is a valid fraction of the population.
        assert 0.0 <= row["approximate_bound"] <= femnist_bench_config.num_clients
