"""Section V "Bypassing Defenses" — statistical indistinguishability.

Paper: with a narrow ψ range and clipping, malicious gradients pass the
t-test / Levene / KS battery against benign gradients and fewer than ~3.5% are
flagged by the 3σ rule; the MESAS-style detector therefore cannot reliably
separate compromised from benign clients without a large false-positive rate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.statistics import gradient_indistinguishability
from repro.defenses.detector import StatisticalDetector
from repro.experiments.gradient_geometry import _collect_round_updates
from repro.experiments.results import format_table
from repro.metrics.gradients import angles_to_reference


def test_statistical_bypass(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(
        psi_low=0.95, psi_high=0.99, clip_bound=0.5
    )
    collected = run_once(benchmark, _collect_round_updates, config, "collapois")
    benign = collected["benign"]
    malicious = collected["malicious"]
    reference = np.vstack([benign, malicious]).mean(axis=0)

    benign_angles = angles_to_reference(benign, reference)
    malicious_angles = angles_to_reference(malicious, reference)
    benign_norms = np.linalg.norm(benign, axis=1)
    malicious_norms = np.linalg.norm(malicious, axis=1)

    angle_report = gradient_indistinguishability(malicious_angles, benign_angles)
    norm_report = gradient_indistinguishability(malicious_norms, benign_norms)
    rows = [
        {"feature": "angle", **{k: v for k, v in angle_report.items()}},
        {"feature": "norm", **{k: v for k, v in norm_report.items()}},
    ]
    print("\nStatistical bypass — test battery on angles and norms")
    print(format_table(rows))
    # The clipped, narrow-psi malicious updates are not trivially separable:
    # at most a small fraction are 3-sigma outliers on either feature.
    assert angle_report["three_sigma_outlier_fraction"] <= 0.5
    assert norm_report["three_sigma_outlier_fraction"] <= 0.5

    detector = StatisticalDetector()
    updates = np.vstack([benign, malicious])
    mask = np.zeros(updates.shape[0], dtype=bool)
    mask[len(benign):] = True
    report = detector.detection_report(updates, mask)
    print(f"MESAS-style detector: recall={report['recall']:.2f} "
          f"precision={report['precision']:.2f} fpr={report['false_positive_rate']:.2f}")
    # The detector cannot achieve high recall on the stealth-configured attack.
    assert report["recall"] < 1.0
