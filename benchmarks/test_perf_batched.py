"""Round-throughput benches for the cross-client batched backend.

Serial vs. ``backend="batched"`` wall clock on full-participation
federations at the reduced Fig-8 model sizes — the Sentiment text head
(the figure's headline setting, where stacking pays most: the model is all
small GEMMs) and the FEMNIST MLP.  The bit-identical-history guarantee is
asserted on the side in both benches, so a regression in the batched math
can never hide behind a fast wall clock.

The paper-facing target is 3x serial round throughput; on a single-core
host the stacked path cannot amortise BLAS across cores (every per-client
GEMM slice still runs serially, by design — that is what buys bit-identity)
and the gain comes purely from eliminated Python dispatch and allocations,
so the asserted floor drops to 1.5x there.  Timings and the target are
always recorded in ``extra_info`` (and hence in ``BENCH_<pr>.json``); the
assertions only run off-CI, per the repo's perf-bench convention.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.experiments.results import format_table
from repro.experiments.runner import build_dataset, run_experiment
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig

#: Paper-facing round-throughput target at Fig-8 model sizes (multi-core);
#: the single-core floor is what a 1-CPU container can honestly deliver.
TARGET_SPEEDUP = 3.0
SINGLE_CORE_FLOOR = 1.5


def _fig8_scenario(dataset: str) -> Scenario:
    """Full-participation clean run at the Fig-8 bench scale."""
    return Scenario(
        dataset=dataset,
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.2,
        hidden=(64,),
        rounds=8,
        sample_rate=1.0,
        attack="none",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        max_test_samples=None,
        seed=7,
    )


def _sweep(scenario: Scenario, repeats: int = 3) -> tuple[list[dict], float]:
    rows = []
    histories = {}
    data = build_dataset(scenario)  # shared, outside the timed region
    for backend in ("serial", "batched"):
        cell = scenario.with_overrides(backend=backend)
        best = None
        for _ in range(repeats):  # best-of-N: single runs are too jittery
            start = time.perf_counter()
            result = run_experiment(cell, prebuilt_data=data)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        histories[backend] = result.history
        rows.append(
            {
                "backend": backend,
                "seconds": round(best, 3),
                "ms_per_round": round(best * 1000 / scenario.rounds, 2),
            }
        )
    assert histories["batched"].series("update_norm") == histories["serial"].series(
        "update_norm"
    ), "batched backend diverged from serial"
    speedup = rows[0]["seconds"] / rows[1]["seconds"]
    for row in rows:
        row["speedup_vs_serial"] = round(rows[0]["seconds"] / row["seconds"], 2)
    return rows, speedup


def _record(benchmark, rows, speedup, label):
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["target_speedup"] = TARGET_SPEEDUP
    benchmark.extra_info["single_core_floor"] = SINGLE_CORE_FLOOR
    print(f"\nBatched-execution wall clock — {label}, 24 clients/round, 8 rounds")
    print(format_table(rows))


def test_batched_throughput_fig8_sentiment(benchmark):
    """The asserted case: Fig 8's Sentiment text head (all small GEMMs)."""
    rows, speedup = run_once(benchmark, _sweep, _fig8_scenario("sentiment"))
    _record(benchmark, rows, speedup, "sentiment text head")
    if not os.environ.get("CI"):
        floor = SINGLE_CORE_FLOOR if (os.cpu_count() or 1) == 1 else TARGET_SPEEDUP
        assert speedup >= floor, (
            f"batched backend should deliver >= {floor}x serial round "
            f"throughput at the Fig-8 sentiment setting, got {speedup:.2f}x: {rows}"
        )


def test_batched_throughput_fig8_femnist(benchmark):
    """Recorded (not asserted): the FEMNIST MLP carries bigger GEMMs per
    client, so dispatch overhead is a smaller share and the gain is milder."""
    rows, speedup = run_once(benchmark, _sweep, _fig8_scenario("femnist"))
    _record(benchmark, rows, speedup, "femnist mlp(64)")
    if not os.environ.get("CI"):
        assert speedup >= 1.0, f"batched should never be slower than serial: {rows}"
