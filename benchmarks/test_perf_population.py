"""Peak memory of lazy client populations at large scale.

Runs a 1e5-client federated round loop over a lazy
:class:`~repro.federated.population.SyntheticPopulation` — under plain
``uniform`` participation and under ``buffered_async`` with churn +
stragglers — measuring peak traced memory with ``tracemalloc``, and
compares against materialising an *eager* federation of just 2,000 clients.
The lazy run must peak below the far smaller eager build: that is the
O(sampled clients) memory claim of the population subsystem, pinned as an
inequality so it cannot silently regress.
"""

from __future__ import annotations

import os
import time
import tracemalloc

from benchmarks.conftest import run_once
from repro.data.federated_data import build_federated_dataset
from repro.data.femnist import SyntheticFEMNIST
from repro.experiments.results import format_table
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig

LAZY_CLIENTS = 100_000
EAGER_CLIENTS = 2_000


def _scenario(**overrides) -> Scenario:
    base = dict(
        dataset="femnist",
        num_clients=LAZY_CLIENTS,
        samples_per_client=16,
        num_classes=6,
        image_size=12,
        hidden=(24,),
        rounds=2,
        attack="none",
        population="synthetic:cache_size=64,eval_clients=8",
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        seed=11,
        max_test_samples=8,
        eval_every=None,
    )
    base.update(overrides)
    return Scenario(**base)


def _traced(fn):
    """Run ``fn``, returning (result, peak_traced_bytes, seconds)."""
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
        elapsed = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, elapsed


def test_population_memory_is_o_sampled(benchmark):
    """1e5 lazy clients must peak below an eager build of 2e3 clients."""

    def sweep():
        rows = []
        peaks = {}

        def eager_build():
            generator = SyntheticFEMNIST(num_classes=6, image_size=12, seed=11)
            return build_federated_dataset(
                generator,
                num_clients=EAGER_CLIENTS,
                samples_per_client=16,
                alpha=0.5,
                seed=11,
            )

        dataset, peaks["eager_build"], eager_s = _traced(eager_build)
        del dataset
        rows.append(
            {
                "mode": f"eager build ({EAGER_CLIENTS} clients)",
                "clients": EAGER_CLIENTS,
                "peak_mb": round(peaks["eager_build"] / 1e6, 1),
                "seconds": round(eager_s, 3),
            }
        )

        runs = {
            "lazy uniform": _scenario(
                participation="uniform:sample_rate=0.0003,min_clients=8",
            ),
            "lazy buffered_async": _scenario(
                participation=(
                    "tiered:sample_rate=0.0003,min_clients=8,"
                    "availability=0.8,dropout_rate=0.001"
                ),
                aggregation_mode="buffered_async:buffer_size=6",
            ),
        }
        for label, scenario in runs.items():
            result, peaks[label], run_s = _traced(scenario.run)
            cache = result.extras["dataset"].cache_info()
            rows.append(
                {
                    "mode": f"{label} ({LAZY_CLIENTS} clients)",
                    "clients": LAZY_CLIENTS,
                    "peak_mb": round(peaks[label] / 1e6, 1),
                    "seconds": round(run_s, 3),
                    "materialized": cache["materializations"],
                }
            )
            del result
        return rows, peaks

    rows, peaks = run_once(benchmark, sweep)

    # The acceptance pin: a full 1e5-client *training run* (two rounds,
    # evaluation included) stays under the memory of merely *building* a
    # 50×-smaller eager federation.
    assert peaks["lazy uniform"] < peaks["eager_build"], (
        f"lazy run peaked at {peaks['lazy uniform']} bytes ≥ eager build's "
        f"{peaks['eager_build']} at {EAGER_CLIENTS} clients"
    )
    assert peaks["lazy buffered_async"] < peaks["eager_build"]

    print(f"\nPopulation memory — lazy {LAZY_CLIENTS} vs eager {EAGER_CLIENTS} clients")
    print(format_table(rows))
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["lazy_clients"] = LAZY_CLIENTS
    benchmark.extra_info["eager_clients"] = EAGER_CLIENTS
    benchmark.extra_info["peak_bytes"] = {k: int(v) for k, v in peaks.items()}
    benchmark.extra_info["cpu_count"] = os.cpu_count()
