"""Figs. 9 & 16 — CollaPois (1% compromised in the paper) under robust defenses.

Paper: DP and NormBound leave the FL model highly vulnerable; Krum and RLR
suppress the backdoor but at a substantial Benign AC cost, making them
impractical.  Krum and RLR are not applicable to MetaFed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.defense_evaluation import defense_sweep
from repro.experiments.results import format_table

DEFENSES = {
    "mean": {},
    "dp": {"clip_norm": 2.0, "noise_multiplier": 0.002},
    "norm_bound": {"max_norm": 2.0},
    "krum": {"num_malicious": 1, "multi": 3},
    "rlr": {"threshold_fraction": 0.6},
}


def test_fig09_defenses_sentiment(benchmark, sentiment_bench_config):
    config = sentiment_bench_config.with_overrides(rounds=20)
    rows = run_once(benchmark, defense_sweep, config, alphas=[0.2], defenses=DEFENSES)
    print("\nFig. 9 — CollaPois under defenses (Sentiment-like, FedAvg)")
    print(format_table(rows))
    by_defense = {row["defense"]: row for row in rows}
    undefended_sr = by_defense["mean"]["attack_success_rate"]
    # Weak defenses: the attack retains most of its success.
    assert by_defense["norm_bound"]["attack_success_rate"] > 0.4 * undefended_sr
    # Strong defenses pay with benign accuracy and/or suppress the attack.
    assert by_defense["krum"]["attack_success_rate"] < undefended_sr


def test_fig16_defenses_femnist(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(rounds=24)
    rows = run_once(benchmark, defense_sweep, config, alphas=[0.2], defenses=DEFENSES)
    print("\nFig. 16 — CollaPois under defenses (FEMNIST-like, FedAvg)")
    print(format_table(rows))
    by_defense = {row["defense"]: row for row in rows}
    undefended = by_defense["mean"]
    # NormBound leaves the model vulnerable (paper: up to ~91% Attack SR).
    assert by_defense["norm_bound"]["attack_success_rate"] > 0.4
    # Krum/RLR trade benign accuracy for robustness (paper: −25% / −61% Benign AC).
    strong = min(by_defense["krum"]["benign_accuracy"], by_defense["rlr"]["benign_accuracy"])
    assert strong < undefended["benign_accuracy"] + 1e-9
    assert min(
        by_defense["krum"]["attack_success_rate"], by_defense["rlr"]["attack_success_rate"]
    ) < undefended["attack_success_rate"]


def test_fig16_metafed_skips_inapplicable_defenses(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(algorithm="metafed", rounds=10)
    rows = run_once(benchmark, defense_sweep, config, alphas=[0.2], defenses=DEFENSES)
    print("\nFig. 9/16 — MetaFed rows (Krum and RLR not applicable)")
    print(format_table(rows))
    assert {row["defense"] for row in rows} == {"mean", "dp", "norm_bound"}
