"""Fig. 1 — DPois and MRepl barely react to |C| or to the non-IID level.

Paper: on the Sentiment dataset, moving from 0.1% to 1% compromised clients
and sweeping α ∈ [0.01, 100] produces only modest changes in the baseline
attacks' success — the observation that motivates CollaPois.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.attack_comparison import baseline_sensitivity_sweep
from repro.experiments.results import format_table


def test_fig01_baseline_attacks_insensitive(benchmark, sentiment_bench_config):
    config = sentiment_bench_config.with_overrides(rounds=12)
    rows = run_once(
        benchmark,
        baseline_sensitivity_sweep,
        config,
        alphas=[0.05, 5.0],
        fractions=[0.05, 0.15],
        attacks=["dpois", "mrepl"],
    )
    print("\nFig. 1 — baseline attack sensitivity (Sentiment-like)")
    print(format_table(rows))
    # Shape check: for each baseline attack the spread of Attack SR across
    # (fraction, alpha) combinations stays modest — nothing approaches the
    # near-total compromise CollaPois achieves in Fig. 8.
    for attack in ("dpois", "mrepl"):
        rates = [r["attack_success_rate"] for r in rows if r["attack"] == attack]
        assert max(rates) - min(rates) < 0.6
        assert max(rates) < 0.9
