"""Figs. 10 & 17–25 — fewer compromised clients, top-k% most affected clients.

Paper: with only 0.1–0.5% compromised clients the population-average Attack SR
drops, but the top-25% most affected benign clients still show very high
Attack SR (86% on average with 0.5% compromised), and the top-1% are hit
almost surely.  The reduced scale here uses proportionally small |C| (1–3
clients out of 24).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.defense_evaluation import compromised_fraction_sweep
from repro.experiments.results import format_table


def test_fig10_topk_affected_clients(benchmark, femnist_bench_config):
    config = femnist_bench_config.with_overrides(rounds=30)
    rows = run_once(
        benchmark,
        compromised_fraction_sweep,
        config,
        fractions=[0.05, 0.125],
        top_k_percents=[1.0, 25.0, 50.0, 100.0],
        defense="norm_bound",
        defense_kwargs={"max_norm": 2.0},
    )
    print("\nFigs. 10/17–25 — top-k% affected clients vs compromised fraction")
    print(format_table(rows))
    for fraction in (0.05, 0.125):
        subset = {row["top_k_percent"]: row for row in rows if row["compromised_fraction"] == fraction}
        # Attack SR is monotone in the cluster: the most affected clients are
        # hit at least as hard as the population average.
        assert subset[1.0]["attack_success_rate"] >= subset[25.0]["attack_success_rate"] - 1e-9
        assert subset[25.0]["attack_success_rate"] >= subset[100.0]["attack_success_rate"] - 1e-9
    # Even with a small compromised fraction, the most affected quarter of
    # the benign clients is substantially backdoored (the paper's headline
    # client-level finding), and shrinking |C| lowers the population average
    # more than it lowers the top-25% figure.
    top25 = {
        row["compromised_fraction"]: row["attack_success_rate"]
        for row in rows
        if row["top_k_percent"] == 25.0
    }
    assert top25[0.125] > 0.35
    overall = {
        row["compromised_fraction"]: row["attack_success_rate"]
        for row in rows
        if row["top_k_percent"] == 100.0
    }
    assert top25[0.05] >= overall[0.05]
