"""Unit and property-based tests for the Theorem 1–3 bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    approximate_lower_bound,
    compromised_fraction_surface,
    convergence_bound,
    estimation_error_bounds,
    exact_lower_bound_from_angles,
    expected_angle_statistics,
    min_compromised_clients,
)


class TestTheorem1:
    def test_formula_matches_paper_expression(self):
        mu, sigma, n, a, b = 0.5, 0.2, 1000, 0.9, 1.0
        expected = (2 - sigma**2 - mu**2) / (a + b + 2 - sigma**2 - mu**2) * n
        assert min_compromised_clients(mu, sigma, n, a, b) == pytest.approx(expected)

    def test_more_diversity_needs_fewer_compromised_clients(self):
        low_div = min_compromised_clients(0.3, 0.1, 1000)
        high_div = min_compromised_clients(1.0, 0.5, 1000)
        assert high_div < low_div

    def test_bound_never_exceeds_population(self):
        assert min_compromised_clients(0.0, 0.0, 100) < 100

    def test_extreme_diversity_drives_bound_to_zero(self):
        assert min_compromised_clients(1.4, 0.3, 1000) == pytest.approx(0.0, abs=30)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            min_compromised_clients(0.5, 0.1, 0)
        with pytest.raises(ValueError):
            min_compromised_clients(0.5, 0.1, 100, psi_low=0.0)
        with pytest.raises(ValueError):
            min_compromised_clients(-0.5, 0.1, 100)

    @settings(max_examples=50, deadline=None)
    @given(
        mu=st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
        sigma=st.floats(min_value=0.0, max_value=0.8, allow_nan=False),
        n=st.integers(min_value=10, max_value=10_000),
    )
    def test_bound_is_always_a_valid_fraction(self, mu, sigma, n):
        """The bound lies in [0, N] and decreases as diversity increases."""
        bound = min_compromised_clients(mu, sigma, n)
        assert 0.0 <= bound <= n
        more_diverse = min_compromised_clients(min(mu + 0.2, 1.6), sigma, n)
        assert more_diverse <= bound + 1e-9


class TestApproximation:
    def test_relative_error_is_small_for_gaussian_angles(self, rng):
        angles = rng.normal(0.6, 0.15, size=500)
        report = approximate_lower_bound(angles, num_clients=1000)
        assert report["relative_error"] < 0.05

    def test_exact_bound_requires_angles(self):
        with pytest.raises(ValueError):
            exact_lower_bound_from_angles(np.zeros(0), 100)

    def test_more_scatter_gives_larger_relative_error(self, rng):
        tight = approximate_lower_bound(rng.normal(0.5, 0.05, size=200), 1000)
        wide = approximate_lower_bound(rng.normal(0.9, 0.4, size=200), 1000)
        assert wide["relative_error"] >= tight["relative_error"] - 1e-6


class TestSurface:
    def test_surface_shape_and_monotonicity(self):
        mu = np.linspace(0.0, 1.2, 8)
        sigma = np.linspace(0.0, 0.6, 5)
        surface = compromised_fraction_surface(mu, sigma)
        assert surface.shape == (5, 8)
        # Larger mu (columns) never increases the required fraction.
        assert np.all(np.diff(surface, axis=1) <= 1e-12)
        # Larger sigma (rows) never increases the required fraction.
        assert np.all(np.diff(surface, axis=0) <= 1e-12)
        assert surface.max() <= 1.0 and surface.min() >= 0.0


class TestTheorem2:
    def test_bound_formula(self):
        assert convergence_bound(2.0, psi_low=0.5, residual_norm=0.1) == pytest.approx(2.1)

    def test_psi_one_gives_residual_only(self):
        assert convergence_bound(5.0, psi_low=1.0, residual_norm=0.2) == pytest.approx(0.2)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            convergence_bound(1.0, psi_low=0.0)
        with pytest.raises(ValueError):
            convergence_bound(-1.0, psi_low=0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        norm=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        a=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    def test_bound_nonnegative_and_decreasing_in_a(self, norm, a):
        """The Theorem-2 bound is non-negative and shrinks as a → 1."""
        bound = convergence_bound(norm, psi_low=a)
        assert bound >= 0.0
        tighter = convergence_bound(norm, psi_low=min(1.0, a + 0.1))
        assert tighter <= bound + 1e-9


class TestTheorem3:
    def _setup(self, rng, num_compromised=4, dim=30):
        trojan = rng.normal(size=dim)
        client_params = trojan + rng.normal(0, 1.0, size=(8, dim))
        malicious = np.stack([0.95 * (trojan - rng.normal(size=dim)) for _ in range(num_compromised)])
        return malicious, client_params, trojan

    def test_lower_bound_below_upper_bound(self, rng):
        malicious, clients, trojan = self._setup(rng)
        bounds = estimation_error_bounds(malicious, clients, trojan,
                                         precision=1.0, num_compromised=4)
        assert bounds["lower_bound"] >= 0.0
        assert bounds["upper_bound"] >= 0.0

    def test_lower_precision_increases_lower_bound(self, rng):
        malicious, clients, trojan = self._setup(rng)
        high_p = estimation_error_bounds(malicious, clients, trojan, 1.0, 4)
        low_p = estimation_error_bounds(malicious, clients, trojan, 0.5, 4)
        assert low_p["lower_bound"] > high_p["lower_bound"]

    def test_smaller_psi_high_increases_lower_bound(self, rng):
        malicious, clients, trojan = self._setup(rng)
        large_b = estimation_error_bounds(malicious, clients, trojan, 1.0, 4, psi_high=1.0)
        small_b = estimation_error_bounds(malicious, clients, trojan, 1.0, 4, psi_high=0.5)
        assert small_b["lower_bound"] > large_b["lower_bound"]

    def test_invalid_arguments(self, rng):
        malicious, clients, trojan = self._setup(rng)
        with pytest.raises(ValueError):
            estimation_error_bounds(malicious, clients, trojan, 0.0, 4)
        with pytest.raises(ValueError):
            estimation_error_bounds(malicious, clients, trojan, 1.0, 0)


class TestExpectedAngleStatistics:
    def test_smaller_alpha_gives_larger_angles(self):
        mu_small, sigma_small = expected_angle_statistics(0.01)
        mu_large, sigma_large = expected_angle_statistics(100.0)
        assert mu_small > mu_large
        assert sigma_small > sigma_large

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            expected_angle_statistics(0.0)
