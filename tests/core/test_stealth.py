"""Unit tests for the stealth machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stealth import StealthConfig, blend_statistics, clip_update, upscale_update


class TestStealthConfig:
    def test_defaults_are_valid(self):
        config = StealthConfig()
        assert 0 < config.psi_low < config.psi_high <= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"psi_low": 0.0, "psi_high": 0.5},
            {"psi_low": 0.9, "psi_high": 0.8},
            {"psi_low": 0.5, "psi_high": 1.5},
            {"clip_bound": 0.0},
            {"min_update_norm": -1.0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            StealthConfig(**kwargs)

    def test_sample_psi_in_range(self, rng):
        config = StealthConfig(psi_low=0.4, psi_high=0.6)
        samples = [config.sample_psi(rng) for _ in range(200)]
        assert min(samples) >= 0.4 and max(samples) <= 0.6
        assert np.std(samples) > 0.0


class TestClipAndUpscale:
    def test_clip_reduces_large_updates(self, rng):
        update = rng.normal(size=50) * 10
        clipped = clip_update(update, bound=1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)

    def test_clip_keeps_small_updates(self, rng):
        update = rng.normal(size=50) * 1e-3
        np.testing.assert_allclose(clip_update(update, bound=1.0), update)

    def test_clip_invalid_bound(self, rng):
        with pytest.raises(ValueError):
            clip_update(rng.normal(size=5), bound=0.0)

    def test_upscale_enlarges_small_updates(self, rng):
        update = rng.normal(size=50)
        update = update / np.linalg.norm(update) * 0.01
        scaled = upscale_update(update, min_norm=2.0)
        assert np.linalg.norm(scaled) == pytest.approx(2.0)

    def test_upscale_leaves_large_updates(self, rng):
        update = rng.normal(size=50) * 10
        np.testing.assert_allclose(upscale_update(update, min_norm=1.0), update)

    def test_zero_update_untouched(self):
        zero = np.zeros(10)
        np.testing.assert_allclose(clip_update(zero, 1.0), zero)
        np.testing.assert_allclose(upscale_update(zero, 1.0), zero)


class TestBlendStatistics:
    def test_keys_present(self, rng):
        malicious = rng.normal(size=(3, 20))
        benign = rng.normal(size=(5, 20))
        stats = blend_statistics(malicious, benign)
        for key in (
            "malicious_angle_mean",
            "malicious_angle_std",
            "benign_angle_mean",
            "benign_angle_std",
            "malicious_norm_mean",
            "benign_norm_mean",
        ):
            assert key in stats

    def test_identical_groups_have_matching_norms(self, rng):
        group = rng.normal(size=(4, 10))
        stats = blend_statistics(group, group)
        assert stats["malicious_norm_mean"] == pytest.approx(stats["benign_norm_mean"])

    def test_aligned_malicious_updates_have_small_angles_to_themselves(self, rng):
        base = rng.normal(size=20)
        malicious = np.stack([base * s for s in (0.9, 0.95, 1.0)])
        stats = blend_statistics(malicious, malicious)
        assert stats["malicious_angle_mean"] == pytest.approx(0.0, abs=1e-6)
