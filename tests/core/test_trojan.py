"""Unit tests for Trojaned-model training (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger, poison_dataset
from repro.core.trojan import train_trojan_model, trojan_model_quality
from repro.data.dataset import Dataset
from repro.nn.serialization import flatten_params, parameter_count


@pytest.fixture()
def poisoned_aux(small_federation, rng):
    aux = small_federation.auxiliary_dataset([0, 1], source="all")
    trigger = PixelPatchTrigger(image_size=12, patch_size=3)
    return aux, poison_dataset(aux, trigger, target_class=0, poison_fraction=0.8, rng=rng), trigger


class TestTrainTrojanModel:
    def test_returns_flat_vector_of_right_size(self, image_model_factory, poisoned_aux):
        _, poisoned, _ = poisoned_aux
        params = train_trojan_model(image_model_factory, poisoned, epochs=2, lr=0.05, seed=0)
        assert params.shape == (parameter_count(image_model_factory()),)

    def test_empty_dataset_raises(self, image_model_factory):
        empty = Dataset(np.zeros((0, 1, 12, 12)), np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            train_trojan_model(image_model_factory, empty)

    def test_invalid_epochs(self, image_model_factory, poisoned_aux):
        _, poisoned, _ = poisoned_aux
        with pytest.raises(ValueError):
            train_trojan_model(image_model_factory, poisoned, epochs=0)

    def test_training_moves_parameters(self, image_model_factory, poisoned_aux):
        _, poisoned, _ = poisoned_aux
        init = flatten_params(image_model_factory())
        trained = train_trojan_model(image_model_factory, poisoned, epochs=2, lr=0.05, seed=0)
        assert not np.allclose(trained, init)

    def test_warm_start_respected(self, image_model_factory, poisoned_aux):
        _, poisoned, _ = poisoned_aux
        warm = np.ones(parameter_count(image_model_factory()))
        cold = train_trojan_model(image_model_factory, poisoned, epochs=1, lr=0.001, seed=0)
        warm_trained = train_trojan_model(
            image_model_factory, poisoned, epochs=1, lr=0.001, seed=0, init_params=warm
        )
        # With a tiny learning rate the result stays near its starting point.
        assert np.linalg.norm(warm_trained - warm) < np.linalg.norm(warm_trained - cold)

    def test_trojan_model_learns_both_tasks(self, image_model_factory, poisoned_aux, rng):
        clean, poisoned, trigger = poisoned_aux
        params = train_trojan_model(image_model_factory, poisoned, epochs=25, lr=0.08, seed=0)
        triggered_x = trigger.apply(clean.x)
        triggered = Dataset(triggered_x, np.zeros(len(clean), dtype=np.int64))
        quality = trojan_model_quality(image_model_factory, params, clean, triggered)
        assert quality["clean_accuracy"] > 0.6
        assert quality["trojan_accuracy"] > 0.7
