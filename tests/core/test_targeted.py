"""Unit tests for the targeted / semi-ready CollaPois variant (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger
from repro.core.targeted import TargetedCollaPois
from repro.federated.client import LocalTrainingConfig
from repro.metrics.similarity import cumulative_label_cosine
from repro.nn.serialization import flatten_params


@pytest.fixture()
def targeted_attack(small_federation, image_model_factory):
    attack = TargetedCollaPois(warmup_rounds=2, trojan_epochs=3, high_value_fraction=0.25)
    trigger = PixelPatchTrigger(image_size=12, patch_size=2)
    attack.setup(
        small_federation, [0, 1], image_model_factory, trigger, target_class=0,
        local_config=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05), seed=0,
    )
    return attack


class TestConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TargetedCollaPois(warmup_rounds=-1)
        with pytest.raises(ValueError):
            TargetedCollaPois(high_value_fraction=0.0)


class TestHighValueClients:
    def test_excludes_compromised_and_respects_fraction(self, targeted_attack, small_federation):
        targets = targeted_attack.high_value_clients()
        assert targets
        assert not set(targets) & {0, 1}
        benign_count = small_federation.num_clients - 2
        assert len(targets) == max(1, round(0.25 * benign_count))

    def test_targets_are_the_most_similar_clients(self, targeted_attack, small_federation):
        targets = targeted_attack.high_value_clients()
        aux = small_federation.auxiliary_class_counts([0, 1], source="all")
        benign = [c for c in range(small_federation.num_clients) if c not in {0, 1}]
        sims = {
            c: cumulative_label_cosine(small_federation.client(c).class_counts, aux)
            for c in benign
        }
        worst_target = min(sims[c] for c in targets)
        best_non_target = max(sims[c] for c in benign if c not in targets)
        assert worst_target >= best_non_target - 1e-9


class TestDormantPhaseAndActivation:
    def test_warmup_updates_look_benign(self, targeted_attack, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update = targeted_attack.compute_update(0, global_params, 0, model, rng)
        # During warm-up the update is an honest local-training update, not a
        # scalar multiple of (X - theta).
        direction = targeted_attack.trojan_params - global_params
        cos = np.dot(update, direction) / (
            np.linalg.norm(update) * np.linalg.norm(direction) + 1e-12
        )
        assert cos < 0.99
        assert targeted_attack.activated_round is None

    def test_activation_refreshes_trojan_near_global(self, targeted_attack, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        original_trojan = targeted_attack.trojan_params.copy()
        update = targeted_attack.compute_update(0, global_params, 3, model, rng)
        assert targeted_attack.activated_round == 3
        refreshed = targeted_attack.trojan_params
        # The semi-ready Trojaned model is re-trained at activation time and
        # therefore differs from the cold-start X prepared in setup().
        assert not np.allclose(refreshed, original_trojan)
        # The update is again a psi-scaled pull toward the refreshed X.
        direction = refreshed - global_params
        ratios = update[np.abs(direction) > 1e-9] / direction[np.abs(direction) > 1e-9]
        assert ratios.std() < 1e-9

    def test_activation_happens_once(self, targeted_attack, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        targeted_attack.compute_update(0, global_params, 2, model, rng)
        first_activation = targeted_attack.activated_round
        targeted_attack.compute_update(1, global_params, 5, model, rng)
        assert targeted_attack.activated_round == first_activation

    def test_no_refresh_keeps_original_trojan(self, small_federation, image_model_factory, rng):
        attack = TargetedCollaPois(warmup_rounds=1, refresh_trojan=False, trojan_epochs=3)
        trigger = PixelPatchTrigger(image_size=12, patch_size=2)
        attack.setup(small_federation, [0], image_model_factory, trigger, 0, seed=0)
        original = attack.trojan_params.copy()
        model = image_model_factory()
        attack.compute_update(0, flatten_params(image_model_factory()), 4, model, rng)
        np.testing.assert_allclose(attack.trojan_params, original)
