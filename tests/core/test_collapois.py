"""Unit tests for the CollaPois attack mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger
from repro.core.collapois import CollaPoisAttack
from repro.core.stealth import StealthConfig
from repro.federated.client import LocalTrainingConfig
from repro.nn.serialization import flatten_params


@pytest.fixture()
def configured_attack(small_federation, image_model_factory):
    attack = CollaPoisAttack(
        stealth=StealthConfig(psi_low=0.9, psi_high=1.0),
        trojan_epochs=4,
    )
    trigger = PixelPatchTrigger(image_size=12, patch_size=2)
    attack.setup(
        small_federation, [0, 1], image_model_factory, trigger, target_class=0,
        local_config=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05), seed=0,
    )
    return attack


class TestCollaPoisConstruction:
    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CollaPoisAttack(poison_fraction=0.0)
        with pytest.raises(ValueError):
            CollaPoisAttack(trojan_epochs=0)
        with pytest.raises(ValueError):
            CollaPoisAttack(aux_source="bogus")

    def test_compute_before_setup_raises(self, image_model_factory, rng):
        attack = CollaPoisAttack()
        model = image_model_factory()
        with pytest.raises(RuntimeError):
            attack.compute_update(0, flatten_params(model), 0, model, rng)


class TestMaliciousUpdate:
    def test_update_follows_psi_times_direction(self, configured_attack, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update = configured_attack.compute_update(0, global_params, 0, model, rng)
        direction = configured_attack.trojan_params - global_params
        # The update must be a positive scalar multiple of (X − θ) with the
        # scalar inside [a, b].
        ratios = update[np.abs(direction) > 1e-9] / direction[np.abs(direction) > 1e-9]
        assert ratios.std() < 1e-9
        assert 0.9 <= ratios.mean() <= 1.0

    def test_psi_is_recorded_per_call(self, configured_attack, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        configured_attack.compute_update(0, global_params, 3, model, rng)
        configured_attack.compute_update(1, global_params, 3, model, rng)
        rounds = [entry[0] for entry in configured_attack.psi_history]
        assert rounds[-2:] == [3, 3]

    def test_all_compromised_clients_share_the_same_trojan(self, configured_attack,
                                                           image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        a = configured_attack.compute_update(0, global_params, 0, model, np.random.default_rng(1))
        b = configured_attack.compute_update(1, global_params, 0, model, np.random.default_rng(2))
        # Updates differ only by the scalar ψ — their directions coincide.
        cos = np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cos == pytest.approx(1.0, abs=1e-9)

    def test_clipping_limits_norm(self, small_federation, image_model_factory, rng):
        attack = CollaPoisAttack(
            stealth=StealthConfig(psi_low=0.9, psi_high=1.0, clip_bound=0.1),
            trojan_epochs=3,
        )
        trigger = PixelPatchTrigger(image_size=12, patch_size=2)
        attack.setup(small_federation, [0], image_model_factory, trigger, 0, seed=0)
        model = image_model_factory()
        update = attack.compute_update(0, flatten_params(image_model_factory()), 0, model, rng)
        assert np.linalg.norm(update) <= 0.1 + 1e-9

    def test_min_norm_upscaling(self, small_federation, image_model_factory, rng):
        attack = CollaPoisAttack(
            stealth=StealthConfig(psi_low=0.9, psi_high=1.0, min_update_norm=1e3),
            trojan_epochs=3,
        )
        trigger = PixelPatchTrigger(image_size=12, patch_size=2)
        attack.setup(small_federation, [0], image_model_factory, trigger, 0, seed=0)
        model = image_model_factory()
        update = attack.compute_update(0, flatten_params(image_model_factory()), 0, model, rng)
        assert np.linalg.norm(update) >= 1e3 - 1e-6


class TestDiagnostics:
    def test_distance_to_trojan(self, configured_attack):
        at_trojan = configured_attack.distance_to_trojan(configured_attack.trojan_params)
        assert at_trojan == pytest.approx(0.0)
        away = configured_attack.distance_to_trojan(configured_attack.trojan_params + 1.0)
        assert away > 0.0

    def test_surrogate_loss_minimised_at_trojan(self, configured_attack):
        at_trojan = configured_attack.surrogate_loss(configured_attack.trojan_params)
        away = configured_attack.surrogate_loss(configured_attack.trojan_params + 0.5)
        assert at_trojan == pytest.approx(0.0)
        assert away > at_trojan

    def test_surrogate_loss_includes_benign_term(self, configured_attack):
        theta = configured_attack.trojan_params
        personal = np.stack([theta + 1.0, theta - 1.0])
        without = configured_attack.surrogate_loss(theta)
        with_benign = configured_attack.surrogate_loss(theta, personal)
        assert with_benign > without
