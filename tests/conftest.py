"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Fallback so the tests run from a source checkout even when the package has
# not been installed (e.g. straight after cloning).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.data.femnist import SyntheticFEMNIST
from repro.data.federated_data import build_federated_dataset
from repro.data.sentiment import SyntheticSentiment
from repro.experiments.config import ExperimentConfig
from repro.federated.client import LocalTrainingConfig
from repro.nn.layers import Flatten
from repro.nn.model import Sequential, make_mlp


@pytest.fixture(scope="session")
def femnist_generator():
    return SyntheticFEMNIST(num_classes=5, image_size=12, seed=3)


@pytest.fixture(scope="session")
def sentiment_generator():
    return SyntheticSentiment(num_classes=2, vocab_size=80, embedding_dim=16, seed=3)


@pytest.fixture(scope="session")
def small_federation(femnist_generator):
    """A small non-IID FEMNIST-like federation shared across tests."""
    return build_federated_dataset(
        femnist_generator, num_clients=8, samples_per_client=24, alpha=0.3, seed=11
    )


@pytest.fixture(scope="session")
def iid_federation(femnist_generator):
    """An IID-ish federation (large alpha) for comparison tests."""
    return build_federated_dataset(
        femnist_generator, num_clients=8, samples_per_client=24, alpha=50.0, seed=11
    )


@pytest.fixture()
def image_model_factory(femnist_generator):
    """Factory for small MLP classifiers over the synthetic FEMNIST images."""
    image_size = femnist_generator.image_size
    num_classes = femnist_generator.num_classes

    def factory():
        mlp = make_mlp(image_size * image_size, (24,), num_classes, seed=5)
        return Sequential([Flatten(), *mlp.layers])

    return factory


@pytest.fixture()
def tiny_config():
    """A fast ExperimentConfig used by the integration tests."""
    return ExperimentConfig(
        dataset="femnist",
        num_clients=10,
        samples_per_client=24,
        num_classes=6,
        image_size=16,
        alpha=0.3,
        rounds=6,
        sample_rate=0.5,
        attack="none",
        compromised_fraction=0.1,
        trojan_epochs=6,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        max_test_samples=20,
        seed=1,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
