"""Participation models: server-stream stability, churn/tier determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.population.participation import (
    ChurnParticipation,
    ParticipationContext,
    TieredParticipation,
    UniformParticipation,
    uniform_sample,
)
from repro.federated.server import FederatedServer, ServerConfig
from repro.registry import PARTICIPATION


def _ctx(num_clients=100, seed=7, round_idx=0, rng_seed=0):
    return ParticipationContext(
        num_clients=num_clients,
        seed=seed,
        round_idx=round_idx,
        rng=np.random.default_rng(rng_seed),
    )


class TestServerStreamStability:
    """Pins ``uniform_sample``'s exact RNG consumption.

    Every pre-participation-API seeded history depends on the server stream
    advancing by exactly one ``random(num_clients)`` draw per round, plus a
    conditional ``choice`` top-up only when the floor is unmet.  If either
    canary below moves, a refactor changed the consumption pattern — and
    with it every existing seeded history.  Do not update the expected
    values without accepting that break deliberately.
    """

    def test_no_floor_canary(self):
        rng = np.random.default_rng(123)
        sampled = uniform_sample(20, 0.4, rng, min_clients=2)
        np.testing.assert_array_equal(sampled, [1, 2, 3, 4, 7, 11, 13, 17])
        assert int(rng.integers(0, 1_000_000)) == 794151

    def test_floor_topup_canary(self):
        # sample_rate tiny: the conditional choice() top-up path runs, and
        # consumes its own slice of the stream.
        rng = np.random.default_rng(123)
        sampled = uniform_sample(20, 0.01, rng, min_clients=3)
        np.testing.assert_array_equal(sampled, [4, 14, 19])
        assert int(rng.integers(0, 1_000_000)) == 497788

    def test_topup_is_conditional(self):
        # Same seed, floor met vs unmet: the post-sampling stream position
        # differs, proving the top-up draw only happens when needed.
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        uniform_sample(20, 0.4, a, min_clients=2)   # floor met: one draw
        uniform_sample(20, 0.01, b, min_clients=3)  # floor unmet: two draws
        assert int(a.integers(0, 10**9)) != int(b.integers(0, 10**9))


class TestUniformParticipation:
    def test_matches_uniform_sample_and_consumes_server_rng(self):
        model = UniformParticipation(sample_rate=0.3, min_clients=2)
        ctx = _ctx(rng_seed=42)
        direct = uniform_sample(100, 0.3, np.random.default_rng(42), min_clients=2)
        result = model.sample_round(ctx)
        np.testing.assert_array_equal(result.sampled, direct)
        assert result.latencies == ()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            UniformParticipation(sample_rate=0.0)
        with pytest.raises(ValueError):
            UniformParticipation(min_clients=0)


class TestChurnParticipation:
    def test_deterministic_and_server_rng_untouched(self):
        model = ChurnParticipation(sample_rate=0.2, availability=0.7)
        a = model.sample_round(_ctx(rng_seed=1))
        b = ChurnParticipation(sample_rate=0.2, availability=0.7).sample_round(
            _ctx(rng_seed=2)
        )
        # Identical cohorts despite different server RNGs: churn never reads
        # the server stream.
        np.testing.assert_array_equal(a.sampled, b.sampled)
        ctx = _ctx(rng_seed=1)
        model.sample_round(ctx)
        np.testing.assert_array_equal(
            ctx.rng.random(4), np.random.default_rng(1).random(4)
        )

    def test_sessions_change_availability(self):
        model = ChurnParticipation(
            sample_rate=1.0, availability=0.5, session_length=2, min_clients=1
        )
        pools = [
            set(model.available_clients(_ctx(round_idx=r)).tolist())
            for r in range(4)
        ]
        assert pools[0] == pools[1]  # same session
        assert pools[1] != pools[2]  # session boundary re-draws

    def test_permanent_dropout_shrinks_population(self):
        model = ChurnParticipation(
            sample_rate=1.0, availability=1.0, dropout_rate=0.3, min_clients=1
        )
        early = model.available_clients(_ctx(round_idx=0)).size
        late = model.available_clients(_ctx(round_idx=10)).size
        assert late < early
        # Dropout is permanent: a client gone in round t stays gone.
        gone = set(range(100)) - set(model.available_clients(_ctx(round_idx=5)).tolist())
        later = set(model.available_clients(_ctx(round_idx=9)).tolist())
        assert gone.isdisjoint(later)

    def test_empty_pool_raises(self):
        model = ChurnParticipation(availability=0.01, dropout_rate=0.9)
        with pytest.raises(RuntimeError, match="no clients available"):
            model.sample_round(_ctx(num_clients=3, round_idx=40))

    def test_min_floor_over_available_pool(self):
        model = ChurnParticipation(
            sample_rate=0.001, availability=0.5, min_clients=5
        )
        result = model.sample_round(_ctx())
        available = set(model.available_clients(_ctx()).tolist())
        assert result.sampled.size >= min(5, len(available))
        assert set(result.sampled.tolist()) <= available


class TestTieredParticipation:
    def test_latencies_align_with_cohort(self):
        model = TieredParticipation(sample_rate=0.3)
        result = model.sample_round(_ctx())
        assert len(result.latencies) == result.sampled.size
        assert all(lat > 0 for lat in result.latencies)

    def test_latency_depends_only_on_seed_round_cid(self):
        # A client's latency must not depend on who else got sampled — that
        # is what makes arrival order backend-independent.
        wide = TieredParticipation(sample_rate=1.0, min_clients=1)
        narrow = TieredParticipation(sample_rate=0.2, min_clients=1)
        all_of = dict(
            zip(
                wide.sample_round(_ctx()).sampled.tolist(),
                wide.sample_round(_ctx()).latencies,
            )
        )
        few = narrow.sample_round(_ctx())
        for cid, lat in zip(few.sampled.tolist(), few.latencies):
            assert lat == all_of[cid]

    def test_tiers_are_run_constant(self):
        model = TieredParticipation()
        t0 = model._tier_of(_ctx(round_idx=0))
        t5 = model._tier_of(_ctx(round_idx=5))
        np.testing.assert_array_equal(t0, t5)

    def test_weights_skew_tier_mixture(self):
        slow_heavy = TieredParticipation(
            speeds=(1.0, 10.0), weights=(0.05, 0.95), jitter=0.0, sample_rate=1.0,
            min_clients=1,
        )
        result = slow_heavy.sample_round(_ctx(num_clients=400))
        slow = sum(1 for lat in result.latencies if lat > 5.0)
        assert slow > len(result.latencies) * 0.8

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TieredParticipation(speeds=())
        with pytest.raises(ValueError):
            TieredParticipation(speeds=(1.0, -2.0))
        with pytest.raises(ValueError):
            TieredParticipation(speeds=(1.0, 2.0), weights=(1.0,))
        with pytest.raises(ValueError):
            TieredParticipation(jitter=-0.1)


class TestRegistryFamily:
    def test_models_are_registered(self):
        assert set(PARTICIPATION.names()) >= {"uniform", "churn", "tiered"}

    def test_spec_grammar_builds_models(self):
        model = PARTICIPATION.create("tiered:sample_rate=0.5,jitter=0.1")
        assert isinstance(model, TieredParticipation)
        assert model.sample_rate == 0.5 and model.jitter == 0.1


class TestServerIntegration:
    """``participation="uniform"`` must reproduce legacy histories exactly."""

    def _run(self, federation, factory, backend="serial", **config_kwargs):
        config = ServerConfig(
            rounds=3,
            seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
            **config_kwargs,
        )
        server = FederatedServer(
            federation, factory, FedAvg(), config, backend=backend
        )
        with server:
            history = server.run()
        return history, server.global_params

    def test_uniform_matches_deprecated_scalars_bit_identically(
        self, small_federation, image_model_factory
    ):
        with pytest.warns(DeprecationWarning):
            legacy_config = ServerConfig(
                rounds=3, sample_rate=0.5, seed=2,
                local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
            )
        legacy = FederatedServer(
            small_federation, image_model_factory, FedAvg(), legacy_config
        )
        legacy_history = legacy.run()
        new_history, new_params = self._run(
            small_federation, image_model_factory,
            participation="uniform:sample_rate=0.5",
        )
        assert [r.sampled_clients for r in new_history.records] == [
            r.sampled_clients for r in legacy_history.records
        ]
        np.testing.assert_array_equal(new_params, legacy.global_params)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_churn_is_bit_identical_across_backends(
        self, small_federation, image_model_factory, backend
    ):
        reference, ref_params = self._run(
            small_federation, image_model_factory, "serial",
            participation="churn:sample_rate=0.6,availability=0.9,min_clients=2",
        )
        other, params = self._run(
            small_federation, image_model_factory, backend,
            participation="churn:sample_rate=0.6,availability=0.9,min_clients=2",
        )
        assert [r.sampled_clients for r in other.records] == [
            r.sampled_clients for r in reference.records
        ]
        np.testing.assert_array_equal(params, ref_params)

    def test_injected_model_instance_wins(self, small_federation, image_model_factory):
        class FixedCohort(UniformParticipation):
            def sample_round(self, ctx):
                from repro.federated.population.participation import (
                    ParticipationRound,
                )

                return ParticipationRound(sampled=np.array([1, 4], dtype=np.int64))

        config = ServerConfig(
            rounds=1, seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        )
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            participation=FixedCohort(),
        )
        record = server.run_round()
        assert record.sampled_clients == [1, 4]
