"""Unit tests for local client training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.federated.client import LocalTrainingConfig, evaluate_model, local_train
from repro.nn.serialization import flatten_params, unflatten_params


class TestLocalTrainingConfig:
    def test_defaults_valid(self):
        config = LocalTrainingConfig()
        assert config.epochs >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"proximal_mu": -1.0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            LocalTrainingConfig(**kwargs)


class TestLocalTrain:
    def test_update_has_parameter_dimension(self, image_model_factory, small_federation, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update, loss = local_train(
            model, global_params, small_federation.client(0).train,
            LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05), rng,
        )
        assert update.shape == global_params.shape
        assert np.isfinite(loss)
        assert np.abs(update).sum() > 0

    def test_empty_dataset_returns_zero_update(self, image_model_factory, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        empty = Dataset(np.zeros((0, 1, 12, 12)), np.zeros(0, dtype=np.int64))
        update, loss = local_train(
            model, global_params, empty, LocalTrainingConfig(), rng
        )
        assert np.allclose(update, 0.0)
        assert loss == 0.0

    def test_training_reduces_local_loss(self, image_model_factory, small_federation):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        config = LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05)
        data = small_federation.client(1).train
        _, first_loss = local_train(model, global_params, data, config,
                                    np.random.default_rng(0))
        many = LocalTrainingConfig(epochs=6, batch_size=8, lr=0.05)
        _, later_loss = local_train(model, global_params, data, many,
                                    np.random.default_rng(0))
        assert later_loss < first_loss

    def test_update_improves_local_accuracy(self, image_model_factory, small_federation, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        data = small_federation.client(2).train
        before = evaluate_model(model, global_params, data)
        update, _ = local_train(
            model, global_params, data, LocalTrainingConfig(epochs=8, batch_size=8, lr=0.05), rng
        )
        after = evaluate_model(model, global_params + update, data)
        assert after >= before

    def test_proximal_term_shrinks_update(self, image_model_factory, small_federation):
        data = small_federation.client(0).train
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        free_update, _ = local_train(
            model, global_params, data,
            LocalTrainingConfig(epochs=3, batch_size=8, lr=0.05, proximal_mu=0.0),
            np.random.default_rng(1),
        )
        prox_update, _ = local_train(
            model, global_params, data,
            LocalTrainingConfig(epochs=3, batch_size=8, lr=0.05, proximal_mu=5.0),
            np.random.default_rng(1),
        )
        assert np.linalg.norm(prox_update) < np.linalg.norm(free_update)

    def test_does_not_modify_global_vector(self, image_model_factory, small_federation, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        snapshot = global_params.copy()
        local_train(model, global_params, small_federation.client(0).train,
                    LocalTrainingConfig(), rng)
        np.testing.assert_allclose(global_params, snapshot)


class TestEvaluateModel:
    def test_perfectly_memorised_data(self, image_model_factory, small_federation):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        data = small_federation.client(0).train
        update, _ = local_train(
            model, global_params, data,
            LocalTrainingConfig(epochs=20, batch_size=8, lr=0.08),
            np.random.default_rng(0),
        )
        accuracy = evaluate_model(model, global_params + update, data)
        assert accuracy > 0.8

    def test_empty_dataset_scores_zero(self, image_model_factory):
        model = image_model_factory()
        params = flatten_params(model)
        empty = Dataset(np.zeros((0, 1, 12, 12)), np.zeros(0, dtype=np.int64))
        assert evaluate_model(model, params, empty) == 0.0
