"""Tests for the streaming update pipeline: ClientUpdate, iter_updates,
the incremental Aggregator protocol and the server's streaming round path.

The acceptance bar: for the same seed, ``streaming="on"`` and
``streaming="off"`` produce bit-identical ``TrainingHistory`` objects on the
serial and thread backends — including under *forced out-of-order
completion* — for both a true streaming defense (``mean``) and a buffering
one (``krum``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.defenses.base import MeanAggregator
from repro.defenses.krum import Krum
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine import CallbackHook, ClientUpdate, build_round_plan
from repro.federated.engine import backends as backends_mod
from repro.federated.server import FederatedServer, ServerConfig


def _make_server(
    federation,
    factory,
    backend,
    streaming="auto",
    aggregator=None,
    rounds=3,
    hooks=None,
):
    config = ServerConfig(
        rounds=rounds,
        participation="uniform:sample_rate=0.5",
        seed=2,
        streaming=streaming,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
    )
    return FederatedServer(
        federation,
        factory,
        FedAvg(),
        config,
        aggregator=aggregator,
        backend=backend,
        hooks=hooks,
    )


def _fingerprint(history):
    return [
        (
            r.round_idx,
            tuple(r.sampled_clients),
            tuple(r.compromised_sampled),
            r.mean_benign_loss,
            r.update_norm,
        )
        for r in history.records
    ]


class TestClientUpdate:
    def test_from_result_carries_slot_and_weight(self):
        plan = build_round_plan(1, [4, 7], set(), seed=0, attack_active=False)
        result = backends_mod.ClientResult(task=plan.tasks[1], update=np.ones(3), loss=0.5)
        update = ClientUpdate.from_result(result, num_examples=12)
        assert update.client_id == 7
        assert update.slot == 1
        assert update.loss == 0.5
        assert not update.malicious
        assert update.num_examples == 12
        assert update.weight == 12.0
        assert update.update is result.update  # shares, does not copy

    def test_iter_updates_covers_plan(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory, "serial")
        plan = build_round_plan(
            0, range(small_federation.num_clients), set(), seed=2, attack_active=False
        )
        updates = list(server.backend.iter_updates(plan, server.global_params))
        assert sorted(u.slot for u in updates) == list(range(len(plan)))
        assert {u.client_id for u in updates} == set(plan.sampled_clients)
        for u in updates:
            assert u.num_examples == len(small_federation.client(u.client_id).train)


class TestServerStreamingConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="streaming"):
            ServerConfig(streaming="sometimes")

    def test_auto_streams_only_streaming_aggregators(
        self, small_federation, image_model_factory, monkeypatch
    ):
        # Under auto + mean, the matrix aggregate() must never run.
        def boom(self, updates, global_params, ctx):
            raise AssertionError("matrix path used despite streaming=auto")

        monkeypatch.setattr(MeanAggregator, "aggregate", boom)
        server = _make_server(small_federation, image_model_factory, "serial", rounds=1)
        server.run()

    def test_subclass_overriding_aggregate_falls_back_to_buffering(
        self, small_federation, image_model_factory
    ):
        # A subclass that redefines the matrix math without touching the
        # streaming machinery must not inherit mean's streaming fold.
        calls = []

        class Recording(MeanAggregator):
            def aggregate(self, updates, global_params, ctx):
                calls.append(updates.shape)
                return super().aggregate(updates, global_params, ctx)

        assert Recording.streaming is False
        server = _make_server(
            small_federation, image_model_factory, "serial",
            aggregator=Recording(), rounds=2,
        )
        server.run()
        assert len(calls) == 2

    def test_streaming_on_uses_buffering_fallback_for_krum(
        self, small_federation, image_model_factory
    ):
        on = _make_server(
            small_federation, image_model_factory, "serial",
            streaming="on", aggregator=Krum(num_malicious=1),
        )
        off = _make_server(
            small_federation, image_model_factory, "serial",
            streaming="off", aggregator=Krum(num_malicious=1),
        )
        on.run()
        off.run()
        np.testing.assert_array_equal(on.global_params, off.global_params)
        assert _fingerprint(on.history) == _fingerprint(off.history)


class TestStreamingBitIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("make_aggregator", [MeanAggregator, Krum], ids=["mean", "krum"])
    def test_on_equals_off(
        self, small_federation, image_model_factory, backend, make_aggregator
    ):
        on = _make_server(
            small_federation, image_model_factory, backend,
            streaming="on", aggregator=make_aggregator(),
        )
        off = _make_server(
            small_federation, image_model_factory, backend,
            streaming="off", aggregator=make_aggregator(),
        )
        on.run()
        off.run()
        on.close()
        off.close()
        np.testing.assert_array_equal(on.global_params, off.global_params)
        assert _fingerprint(on.history) == _fingerprint(off.history)


class TestOutOfOrderCompletion:
    """Reversed completion order on the thread backend must not change results."""

    @pytest.fixture()
    def reversed_completion(self, monkeypatch):
        """Delay benign tasks so higher sampled slots finish first."""
        real = backends_mod.run_benign_task
        completion_order: list[int] = []

        def delayed(ctx, task, global_params, model):
            result = real(ctx, task, global_params, model)
            # Later slots get shorter sleeps: slot 0 finishes last.
            time.sleep(0.06 * (4 - min(task.order, 3)))
            completion_order.append(task.order)
            return result

        monkeypatch.setattr(backends_mod, "run_benign_task", delayed)
        return completion_order

    @pytest.mark.parametrize("make_aggregator", [MeanAggregator, Krum], ids=["mean", "krum"])
    def test_thread_matches_serial_history(
        self, small_federation, image_model_factory, reversed_completion, make_aggregator
    ):
        threaded = _make_server(
            small_federation, image_model_factory, "thread",
            streaming="on", aggregator=make_aggregator(), rounds=2,
        )
        # Enough workers that every benign task runs concurrently and the
        # injected delays fully control completion order.
        threaded.backend.max_workers = 8
        threaded.run()
        threaded.close()

        serial = _make_server(
            small_federation, image_model_factory, "serial",
            streaming="on", aggregator=make_aggregator(), rounds=2,
        )
        serial.run()

        # The injected delays really did reverse at least one round's
        # completion order — otherwise this test is vacuous.
        assert reversed_completion != sorted(reversed_completion)
        np.testing.assert_array_equal(threaded.global_params, serial.global_params)
        assert _fingerprint(threaded.history) == _fingerprint(serial.history)


class TestOnUpdateHook:
    def test_fires_once_per_client_between_start_and_collected(
        self, small_federation, image_model_factory
    ):
        events = []
        hook = CallbackHook(
            on_round_start=lambda s, p: events.append("start"),
            on_update=lambda s, p, u: events.append(("update", u.slot)),
            on_updates_collected=lambda s, p, r: events.append(("collected", len(r))),
        )
        server = _make_server(
            small_federation, image_model_factory, "serial", rounds=1, hooks=[hook]
        )
        record = server.run_round()
        n = len(record.sampled_clients)
        assert events[0] == "start"
        assert events[1:-1] == [("update", slot) for slot in range(n)]
        assert events[-1] == ("collected", n)

    def test_fires_on_buffered_path_too(self, small_federation, image_model_factory):
        seen = []
        hook = CallbackHook(on_update=lambda s, p, u: seen.append(u))
        server = _make_server(
            small_federation, image_model_factory, "serial",
            streaming="off", rounds=1, hooks=[hook],
        )
        record = server.run_round()
        assert [u.slot for u in seen] == list(range(len(record.sampled_clients)))
        assert all(isinstance(u, ClientUpdate) for u in seen)

    def test_streaming_round_skips_retention_without_consumers(
        self, small_federation, image_model_factory
    ):
        # No hook consumes the collected list and FedAvg's post_aggregate is
        # the base no-op, so the streaming path must not retain updates.
        collected = []
        hook = CallbackHook(on_update=lambda s, p, u: collected.append(u.slot))
        server = _make_server(
            small_federation, image_model_factory, "serial", rounds=1, hooks=[hook]
        )
        assert not server.hooks.wants_collected_results()
        assert not server._algorithm_consumes_updates()
        record = server.run_round()
        assert collected == list(range(len(record.sampled_clients)))
