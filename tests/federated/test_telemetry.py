"""End-to-end telemetry tests across the engine.

The acceptance bar: per seed, ``telemetry=True`` produces a
``TrainingHistory`` bit-identical to the uninstrumented run on every
backend — telemetry is strictly out-of-band observation — while the trace
carries the expected spans per feature (dispatch, client training, secagg
masking, shard folds, aggregation, evaluation), distributed runs merge
worker-measured spans over the wire with per-link clock offsets, and the
whole bundle survives the results-JSON round trip.
"""

from __future__ import annotations

import json
from functools import lru_cache

import pytest

from repro.experiments.results import ExperimentResult
from repro.experiments.scenario import Scenario


def base_scenario(**overrides) -> Scenario:
    """Tiny full-participation federation: 8 benign tasks per round."""
    scenario = Scenario(
        dataset="femnist",
        num_clients=8,
        samples_per_client=10,
        num_classes=4,
        image_size=8,
        hidden=(16,),
        rounds=2,
        sample_rate=1.0,
        local={"epochs": 1, "batch_size": 8, "lr": 0.05},
        seed=5,
        attack="none",
        max_test_samples=8,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


@lru_cache(maxsize=None)
def plain_history() -> str:
    """The uninstrumented serial history, as a canonical JSON string."""
    result = base_scenario().run()
    assert result.telemetry is None
    return json.dumps(result.history.to_dict()["records"])


def _span_names(telemetry: dict) -> set[str]:
    return {span["name"] for span in telemetry["spans"]}


class TestBitIdentityAcrossBackends:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"backend": "serial"},
            {"backend": "thread"},
            {"backend": "process", "backend_workers": 2},
            {"backend": "batched"},
            {"backend": "distributed", "backend_workers": 2},
        ],
        ids=["serial", "thread", "process", "batched", "distributed"],
    )
    def test_instrumented_history_matches_plain_serial(self, overrides):
        result = base_scenario(telemetry=True, **overrides).run()
        assert json.dumps(result.history.to_dict()["records"]) == plain_history(), (
            f"telemetry changed the history on {overrides['backend']}"
        )
        telemetry = result.telemetry
        assert telemetry is not None and telemetry["version"] == 1
        names = _span_names(telemetry)
        assert {"round", "client_train", "aggregate"} <= names
        rounds = [s for s in telemetry["spans"] if s["name"] == "round"]
        assert len(rounds) == 2
        assert all(s["end"] is not None for s in telemetry["spans"])
        assert telemetry["metrics"]["rounds_total"]["value"] == 2
        assert telemetry["metrics"]["clients_sampled_total"]["value"] == 16


class TestFeatureSpans:
    def test_secagg_run_records_mask_and_unmask_spans(self):
        result = base_scenario(telemetry=True, secure_aggregation=True).run()
        telemetry = result.telemetry
        assert {"secagg_mask", "secagg_unmask"} <= _span_names(telemetry)
        masks = [s for s in telemetry["spans"] if s["name"] == "secagg_mask"]
        # One mask per client per round, each tagged with round and client.
        assert len(masks) == 16
        assert all({"round", "client"} <= set(s["attrs"]) for s in masks)

    def test_sharded_run_records_fold_spans_and_worker_busy_histogram(self):
        result = base_scenario(telemetry=True, num_shards=2).run()
        telemetry = result.telemetry
        folds = [s for s in telemetry["spans"] if s["name"] == "shard_fold"]
        assert len(folds) == 2
        assert all(s["attrs"]["shards"] == 2 for s in folds)
        busy = telemetry["metrics"]["shard.fold_busy_s"]
        assert busy["type"] == "histogram"
        assert busy["count"] == 4  # 2 shards x 2 rounds

    def test_thread_backend_records_dispatch_spans(self):
        result = base_scenario(telemetry=True, backend="thread").run()
        dispatches = [
            s for s in result.telemetry["spans"] if s["name"] == "dispatch"
        ]
        assert len(dispatches) == 2
        assert all(s["attrs"]["tasks"] == 8 for s in dispatches)

    def test_evaluation_runs_inside_an_evaluate_span(self):
        result = base_scenario(telemetry=True, eval_every=1).run()
        evaluates = [
            s for s in result.telemetry["spans"] if s["name"] == "evaluate"
        ]
        assert len(evaluates) == 2


class TestDistributedWireTelemetry:
    @pytest.fixture(scope="class")
    def distributed_result(self):
        return base_scenario(
            telemetry=True, backend="distributed", backend_workers=2
        ).run()

    def test_worker_measured_spans_merge_into_the_driver_trace(
        self, distributed_result
    ):
        telemetry = distributed_result.telemetry
        wire = [
            s
            for s in telemetry["spans"]
            if s["name"] == "client_train" and s["attrs"].get("wire")
        ]
        # Every task's training was timed on the worker and merged: 8 per round.
        assert len(wire) == 16
        for span in wire:
            assert {"round", "client", "worker"} <= set(span["attrs"])
            assert span["end"] >= span["start"]

    def test_per_link_clock_offsets_are_recorded(self, distributed_result):
        offsets = distributed_result.telemetry["clock_offsets"]
        assert offsets, "no clock offsets recorded"
        assert all(link.startswith("worker:") for link in offsets)
        workers = {
            s["attrs"]["worker"]
            for s in distributed_result.telemetry["spans"]
            if s["attrs"].get("wire")
        }
        assert {f"worker:{pid}" for pid in workers} == set(offsets)

    def test_coordinator_queue_metrics_are_observed(self, distributed_result):
        metrics = distributed_result.telemetry["metrics"]
        assert metrics["distributed.pending_depth"]["count"] >= 16
        assert metrics["distributed.worker_outstanding"]["count"] >= 16
        assert metrics["distributed.redispatch_total"]["type"] == "gauge"


class TestSerialisation:
    def test_results_json_round_trip_preserves_telemetry(self, tmp_path):
        result = base_scenario(telemetry=True).run()
        path = tmp_path / "results.json"
        result.save(path)
        reloaded = ExperimentResult.load(path)
        assert reloaded.telemetry == result.telemetry
        assert reloaded.to_dict() == json.loads(path.read_text())

    def test_disabled_runs_serialise_without_a_telemetry_key(self):
        result = base_scenario().run()
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()

    def test_scenario_rejects_non_bool_telemetry(self):
        with pytest.raises(ValueError, match="telemetry must be a bool"):
            base_scenario(telemetry="yes")


class TestOutOfBandGuarantees:
    def test_disabled_run_allocates_no_telemetry_state(self):
        result = base_scenario().run()
        server = result.extras["server"]
        assert server.telemetry is None

    def test_telemetry_hook_never_triggers_update_materialisation(self):
        from repro.telemetry import TelemetryHook

        result = base_scenario(telemetry=True).run()
        server = result.extras["server"]
        assert server.telemetry is not None
        # The hook harvests at round end only; registering it must not make
        # the server fire per-update events or retain the update list (other
        # hooks — the ledger — may still ask for them on their own).
        hooks = list(server.hooks)
        telemetry_hooks = [h for h in hooks if isinstance(h, TelemetryHook)]
        assert len(telemetry_hooks) == 1
        assert not telemetry_hooks[0].wants_update_events()
        assert not telemetry_hooks[0].wants_collected_results()
        # Registered last, so it snapshots rounds other hooks already enriched.
        assert hooks[-1] is telemetry_hooks[0]
