"""Unit tests for the pluggable execution engine (backends, plans, hooks)."""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger
from repro.core.collapois import CollaPoisAttack
from repro.defenses.base import AggregationContext, MeanAggregator
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine import (
    CallbackHook,
    EvaluationHook,
    HookPipeline,
    ProcessPoolBackend,
    RoundHook,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    build_round_plan,
    make_backend,
)
from repro.federated.rng import client_stream_seed, personalization_seed
from repro.federated.server import FederatedServer, ServerConfig

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

ALL_BACKENDS = ["serial", "thread"] + (["process"] if HAS_FORK else [])


def _make_server(
    federation, factory, backend, algorithm=None, attack=False, rounds=3, hooks=None
):
    config = ServerConfig(
        rounds=rounds,
        participation="uniform:sample_rate=0.5",
        seed=2,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
    )
    attack_obj = None
    compromised = None
    if attack:
        attack_obj = CollaPoisAttack(trojan_epochs=2)
        compromised = [0, 3]
        attack_obj.setup(
            federation, compromised, factory, PixelPatchTrigger(12, patch_size=3), 0, seed=2
        )
    return FederatedServer(
        federation,
        factory,
        (algorithm or FedAvg)(),
        config,
        attack=attack_obj,
        compromised_ids=compromised,
        backend=backend,
        hooks=hooks,
    )


def _history_fingerprint(history):
    return [
        (
            r.round_idx,
            tuple(r.sampled_clients),
            tuple(r.compromised_sampled),
            r.mean_benign_loss,
            r.update_norm,
        )
        for r in history.records
    ]


class TestRngHelpers:
    def test_client_stream_seed_is_injective_locally(self):
        seeds = {
            client_stream_seed(7, r, c) for r in range(50) for c in range(200)
        }
        assert len(seeds) == 50 * 200

    def test_matches_historical_derivation(self):
        # The exact arithmetic the server used before the helper existed.
        assert client_stream_seed(5, 3, 11) == 5 * 1_000_003 + 3 * 1_009 + 11
        assert personalization_seed(5, 11) == 5 * 31 + 11


class TestRoundPlan:
    def test_build_round_plan_orders_and_flags(self):
        plan = build_round_plan(2, [1, 4, 6], {4}, seed=9, attack_active=True)
        assert plan.sampled_clients == (1, 4, 6)
        assert [t.order for t in plan.tasks] == [0, 1, 2]
        assert [t.malicious for t in plan.tasks] == [False, True, False]
        assert plan.compromised_sampled == [4]
        assert plan.tasks[0].rng_seed == client_stream_seed(9, 2, 1)

    def test_attack_inactive_makes_no_task_malicious(self):
        plan = build_round_plan(0, [0, 1], {0, 1}, seed=0, attack_active=False)
        assert plan.malicious_tasks == ()


class TestBackendRegistry:
    def test_available_backends(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", max_workers=2), ThreadPoolBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_unbound_backend_raises(self):
        with pytest.raises(RuntimeError, match="not bound"):
            SerialBackend().execute(None, None)


class TestBackendEquivalence:
    """Thread and process backends must be bit-identical to serial."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:])
    def test_clean_run_matches_serial(self, small_federation, image_model_factory, backend):
        # The acceptance bar: bit-for-bit identical TrainingHistory over a
        # seeded 10-round run.
        reference = _make_server(small_federation, image_model_factory, "serial", rounds=10)
        other = _make_server(small_federation, image_model_factory, backend, rounds=10)
        reference.run()
        other.run()
        other.close()
        np.testing.assert_array_equal(reference.global_params, other.global_params)
        assert _history_fingerprint(reference.history) == _history_fingerprint(other.history)

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:])
    def test_attacked_run_matches_serial(self, small_federation, image_model_factory, backend):
        reference = _make_server(small_federation, image_model_factory, "serial", attack=True)
        other = _make_server(small_federation, image_model_factory, backend, attack=True)
        reference.run()
        other.run()
        other.close()
        np.testing.assert_array_equal(reference.global_params, other.global_params)
        assert _history_fingerprint(reference.history) == _history_fingerprint(other.history)

    @pytest.mark.parametrize("backend", ALL_BACKENDS[1:])
    def test_stateful_algorithm_matches_serial(
        self, small_federation, image_model_factory, backend
    ):
        # FedDC mutates per-client drift every round: parallel workers must
        # observe the current state, not a stale snapshot.
        reference = _make_server(
            small_federation, image_model_factory, "serial", algorithm=FedDC
        )
        other = _make_server(small_federation, image_model_factory, backend, algorithm=FedDC)
        reference.run()
        other.run()
        other.close()
        np.testing.assert_array_equal(reference.global_params, other.global_params)

    def test_stateful_attack_bookkeeping_survives_parallel_backends(
        self, small_federation, image_model_factory
    ):
        # psi_history is attack-side state; it must accumulate in the driver
        # even when benign work runs on a pool.
        server = _make_server(small_federation, image_model_factory, "thread", attack=True)
        server.run()
        server.close()
        recorded = sum(len(r.compromised_sampled) for r in server.history.records)
        assert len(server.attack.psi_history) == recorded


class TestHookPipeline:
    def test_hook_event_ordering(self, small_federation, image_model_factory):
        events = []
        hook = CallbackHook(
            on_round_start=lambda s, p: events.append(("start", p.round_idx)),
            on_updates_collected=lambda s, p, r: events.append(("collected", p.round_idx)),
            on_aggregated=lambda s, p, a: events.append(("aggregated", p.round_idx)),
            on_round_end=lambda s, p, rec: events.append(("end", p.round_idx)),
        )
        server = _make_server(
            small_federation, image_model_factory, "serial", rounds=2, hooks=[hook]
        )
        server.run()
        assert events == [
            ("start", 0), ("collected", 0), ("aggregated", 0), ("end", 0),
            ("start", 1), ("collected", 1), ("aggregated", 1), ("end", 1),
        ]

    def test_hooks_run_in_registration_order(self, small_federation, image_model_factory):
        order = []
        first = CallbackHook(on_round_start=lambda s, p: order.append("first"))
        second = CallbackHook(on_round_start=lambda s, p: order.append("second"))
        server = _make_server(
            small_federation, image_model_factory, "serial", rounds=1, hooks=[first, second]
        )
        server.run()
        assert order == ["first", "second"]

    def test_updates_collected_sees_all_results(self, small_federation, image_model_factory):
        seen = []
        hook = CallbackHook(
            on_updates_collected=lambda s, p, results: seen.append(
                (len(results), len(p.sampled_clients))
            )
        )
        server = _make_server(
            small_federation, image_model_factory, "serial", rounds=2, hooks=[hook]
        )
        server.run()
        assert all(n_results == n_sampled for n_results, n_sampled in seen)

    def test_evaluation_hook_respects_every(self):
        calls = []
        hook = EvaluationHook(lambda params, idx: calls.append(idx) or {}, every=2)

        class FakeServer:
            global_params = np.zeros(1)

        class FakeRecord:
            extras: dict = {}
            benign_accuracy = None
            attack_success_rate = None

        for round_idx in range(4):
            record = FakeRecord()
            record.round_idx = round_idx
            record.extras = {}
            hook.on_round_end(FakeServer(), None, record)
        assert calls == [1, 3]

    def test_evaluation_hook_rejects_bad_every(self):
        with pytest.raises(ValueError):
            EvaluationHook(lambda p, i: {}, every=0)

    def test_constructor_eval_fn_registers_single_hook(
        self, small_federation, image_model_factory
    ):
        config = ServerConfig(
            rounds=1, participation="uniform:sample_rate=0.5", seed=2, eval_every=1
        )
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            eval_fn=lambda params, idx: {"benign_accuracy": 0.9},
        )
        assert len(server.hooks) == 1
        record = server.run_round()
        assert record.benign_accuracy == 0.9

    def test_pipeline_add_remove(self):
        pipeline = HookPipeline()
        hook = RoundHook()
        pipeline.add(hook)
        assert len(pipeline) == 1
        pipeline.remove(hook)
        assert len(pipeline) == 0

    def test_eval_fn_runs_before_user_hooks(
        self, small_federation, image_model_factory
    ):
        # The evaluation hook is always first in the pipeline, so user hooks
        # observe records with the metrics already filled in.
        seen = []
        collector = CallbackHook(
            on_round_end=lambda s, p, rec: seen.append(rec.benign_accuracy)
        )
        config = ServerConfig(
            rounds=1, participation="uniform:sample_rate=0.5", seed=2, eval_every=1
        )
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            eval_fn=lambda params, idx: {"benign_accuracy": 0.7},
            hooks=[collector],
        )
        server.run()
        assert seen == [0.7]

    def test_eval_fn_respects_eval_every_toggle(
        self, small_federation, image_model_factory
    ):
        # The hook gates on config.eval_every at round end, so toggling it
        # mid-run takes effect immediately.
        config = ServerConfig(rounds=2, participation="uniform:sample_rate=0.5", seed=2)
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            eval_fn=lambda params, idx: {"benign_accuracy": 0.4},
        )
        first = server.run_round()
        assert first.benign_accuracy is None  # eval_every still unset
        server.config.eval_every = 1
        second = server.run_round()
        assert second.benign_accuracy == 0.4

    def test_backend_rebind_resets_driver_model(self, small_federation, image_model_factory):
        backend = SerialBackend()
        first = _make_server(small_federation, image_model_factory, backend, rounds=1)
        first.run_round()
        stale = backend._driver_model
        assert stale is not None
        second = _make_server(small_federation, image_model_factory, backend, rounds=1)
        assert backend._driver_model is None
        second.run_round()
        assert backend._driver_model is not stale


class TestAggregationContext:
    def test_server_passes_context_with_round_info(
        self, small_federation, image_model_factory
    ):
        contexts = []

        class RecordingAggregator(MeanAggregator):
            def aggregate(self, updates, global_params, ctx):
                contexts.append(ctx)
                return super().aggregate(updates, global_params, ctx)

        config = ServerConfig(rounds=2, participation="uniform:sample_rate=0.5", seed=2)
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            aggregator=RecordingAggregator(),
        )
        server.run()
        assert [ctx.round_idx for ctx in contexts] == [0, 1]
        assert contexts[0].sampled_clients == tuple(server.history.records[0].sampled_clients)
        assert all(isinstance(ctx, AggregationContext) for ctx in contexts)

    def test_legacy_rng_call_is_rejected(self, rng):
        updates = np.arange(12, dtype=np.float64).reshape(3, 4)
        with pytest.raises(TypeError, match="AggregationContext.from_rng"):
            MeanAggregator()(updates, np.zeros(4), rng)

    def test_from_rng_wraps_generator(self, rng):
        ctx = AggregationContext.from_rng(rng)
        assert ctx.rng is rng
        assert ctx.round_idx == -1
        assert ctx.sampled_clients == ()


@pytest.mark.skipif(not HAS_FORK, reason="process backend requires fork")
class TestProcessPoolLifecycle:
    """Pins the ProcessPoolBackend contract the ROADMAP documents but nothing
    previously tested: idempotent close, barrier iter_updates, and pool
    teardown when a forked task raises."""

    def test_close_is_idempotent_and_leaves_backend_usable(
        self, small_federation, image_model_factory
    ):
        server = _make_server(small_federation, image_model_factory, "process", rounds=1)
        server.run()
        server.backend.close()
        server.backend.close()  # second close must be a no-op
        server.run_round()      # per-round fork: still usable after close
        assert len(server.history) == 2

    def test_iter_updates_is_a_barrier_in_slot_order(
        self, small_federation, image_model_factory, monkeypatch
    ):
        """The per-round fork makes iter_updates a barrier: every task has
        executed before the first update is yielded, and updates come out in
        aggregation (slot) order rather than completion order."""
        from repro.federated.engine import backends as backends_mod

        executed = []
        real = backends_mod.run_benign_task

        def recording(ctx, task, global_params, model):
            executed.append(task.order)
            return real(ctx, task, global_params, model)

        monkeypatch.setattr(backends_mod, "run_benign_task", recording)
        server = _make_server(small_federation, image_model_factory, "process", rounds=1)
        plan = build_round_plan(
            0, range(small_federation.num_clients), set(), seed=2, attack_active=False
        )
        updates = server.backend.iter_updates(plan, server.global_params)
        first = next(updates)
        # Forked children append to their own copy of `executed`; the barrier
        # is observable in the parent because execute() returned before the
        # first yield — the full result list already exists.
        assert first.slot == 0
        slots = [first.slot] + [u.slot for u in updates]
        assert slots == sorted(slots) == list(range(len(plan)))
        server.close()

    def test_pool_shuts_down_when_a_task_raises(
        self, small_federation, image_model_factory, monkeypatch
    ):
        from repro.federated.engine import backends as backends_mod

        def exploding(ctx, task, global_params, model):
            raise RuntimeError("boom in forked worker")

        real = backends_mod.run_benign_task
        # Children fork after the patch, so they inherit the exploding task.
        monkeypatch.setattr(backends_mod, "run_benign_task", exploding)
        server = _make_server(small_federation, image_model_factory, "process", rounds=1)
        with pytest.raises(RuntimeError, match="boom in forked worker"):
            server.run_round()
        # The per-round pool context manager tore the fork state down even
        # though the round failed; the next round forks fresh and succeeds.
        assert backends_mod._FORK_STATE is None
        monkeypatch.setattr(backends_mod, "run_benign_task", real)
        server.run_round()
        assert len(server.history) == 1
        server.close()
