"""Unit tests for uniform client sampling (the ``uniform`` model's core)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.population.participation import uniform_sample


class TestUniformSample:
    def test_respects_minimum(self, rng):
        sampled = uniform_sample(50, sample_rate=0.01, rng=rng, min_clients=3)
        assert sampled.size >= 3

    def test_full_rate_samples_everyone(self, rng):
        sampled = uniform_sample(10, sample_rate=1.0, rng=rng)
        assert sampled.size == 10

    def test_ids_are_valid_and_unique(self, rng):
        sampled = uniform_sample(30, sample_rate=0.5, rng=rng)
        assert sampled.min() >= 0 and sampled.max() < 30
        assert len(np.unique(sampled)) == len(sampled)

    def test_expected_fraction_roughly_matches_rate(self):
        rng = np.random.default_rng(0)
        totals = [
            uniform_sample(200, 0.3, rng, min_clients=1).size for _ in range(50)
        ]
        assert 40 < np.mean(totals) < 80

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            uniform_sample(0, 0.5, rng)
        with pytest.raises(ValueError):
            uniform_sample(10, 0.0, rng)
        with pytest.raises(ValueError):
            uniform_sample(10, 1.5, rng)

    def test_min_clients_larger_than_population(self, rng):
        sampled = uniform_sample(3, 0.1, rng, min_clients=10)
        assert sampled.size == 3

    def test_deprecated_import_location_matches(self):
        # The legacy entry point is the same code path behind a warning.
        from repro.federated.sampling import sample_clients

        a = uniform_sample(40, 0.4, np.random.default_rng(7))
        with pytest.warns(DeprecationWarning, match="uniform_sample"):
            b = sample_clients(40, 0.4, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
