"""Tests for the hook pipeline's capability flags and exception hygiene.

Two pinned behaviours:

* ``wants_update_events`` / ``wants_collected_results`` are derived from
  what a hook actually implements — subclasses automatically, the
  :class:`CallbackHook` adapter from which callbacks were supplied — so a
  hook that only observes round ends never makes the server materialise
  per-update events or the retained update list.
* A hook that raises mid-round (``on_update``, while a streaming fold is in
  flight) propagates loudly, but the server first aborts the half-folded
  aggregation state: sharded fold workers are released, and the aggregator
  can begin a fresh round afterwards.  This file is the pin referenced by
  the module docstring of :mod:`repro.federated.engine.hooks`.
"""

from __future__ import annotations

import pytest

from repro.defenses.base import Aggregator, MeanAggregator
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.hooks import CallbackHook, HookPipeline, RoundHook
from repro.federated.engine.sharding import ShardedAggregator
from repro.federated.secagg import SecureAggregator
from repro.federated.server import FederatedServer, ServerConfig


class TestWantsFlags:
    def test_base_hook_wants_nothing(self):
        hook = RoundHook()
        assert not hook.wants_update_events()
        assert not hook.wants_collected_results()

    def test_subclass_overrides_are_detected_automatically(self):
        class UpdateWatcher(RoundHook):
            def on_update(self, server, plan, update):
                pass

        class Collector(RoundHook):
            def on_updates_collected(self, server, plan, results):
                pass

        assert UpdateWatcher().wants_update_events()
        assert not UpdateWatcher().wants_collected_results()
        assert Collector().wants_collected_results()
        assert not Collector().wants_update_events()

    def test_callback_hook_wants_follow_the_supplied_callbacks(self):
        # The adapter overrides every method, so the base class's
        # implementation-detection would claim it wants everything; the
        # flags must instead reflect which callbacks were actually given.
        noop = lambda *args: None  # noqa: E731
        assert not CallbackHook().wants_update_events()
        assert not CallbackHook().wants_collected_results()
        assert CallbackHook(on_update=noop).wants_update_events()
        assert not CallbackHook(on_update=noop).wants_collected_results()
        assert CallbackHook(on_updates_collected=noop).wants_collected_results()
        assert not CallbackHook(on_updates_collected=noop).wants_update_events()
        # Round-end-only observers stay fully out of band.
        end_only = CallbackHook(on_round_end=noop)
        assert not end_only.wants_update_events()
        assert not end_only.wants_collected_results()

    def test_pipeline_wants_are_any_over_hooks(self):
        noop = lambda *args: None  # noqa: E731
        pipeline = HookPipeline([CallbackHook(on_round_end=noop)])
        assert not pipeline.wants_update_events()
        pipeline.add(CallbackHook(on_update=noop))
        assert pipeline.wants_update_events()
        assert not pipeline.wants_collected_results()


class TestAbortPlumbing:
    def test_base_aggregator_abort_is_a_noop(self):
        aggregator = MeanAggregator()
        aggregator.abort(state=None)  # must not raise

    def test_secure_aggregator_abort_delegates_to_inner(self):
        calls = []

        class Recorder(MeanAggregator):
            def abort(self, state):
                calls.append(state)

        secure = SecureAggregator(Recorder(), seed=7)
        sentinel = object()
        secure.abort(sentinel)
        assert calls == [sentinel]


def _make_server(federation, factory, num_shards=4):
    config = ServerConfig(
        rounds=3,
        participation="uniform:sample_rate=0.5",
        seed=2,
        num_shards=num_shards,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
    )
    return FederatedServer(federation, factory, FedAvg(), config)


class TestHookExceptionHygiene:
    def test_raising_on_update_aborts_the_sharded_fold(
        self, small_federation, image_model_factory
    ):
        server = _make_server(small_federation, image_model_factory)
        assert isinstance(server.aggregator, ShardedAggregator)

        def boom(server_, plan, update):
            raise RuntimeError("observer failed")

        hook = server.hooks.add(CallbackHook(on_update=boom))
        try:
            with pytest.raises(RuntimeError, match="observer failed"):
                server.run_round()
            # The half-folded round was released: no shard round is still
            # holding its worker threads open.
            assert server.aggregator._live_rounds == []
            assert len(server.history) == 0

            # And the aggregator accepts a fresh round once the broken
            # observer is gone.
            server.hooks.remove(hook)
            record = server.run_round()
            assert record.round_idx == 0
            assert server.aggregator._live_rounds == []
        finally:
            server.close()

    def test_raising_on_update_propagates_on_the_unsharded_path(
        self, small_federation, image_model_factory
    ):
        server = _make_server(small_federation, image_model_factory, num_shards=1)
        assert not isinstance(server.aggregator, ShardedAggregator)
        assert isinstance(server.aggregator, Aggregator)

        server.hooks.add(
            CallbackHook(on_update=lambda *a: (_ for _ in ()).throw(ValueError("x")))
        )
        try:
            with pytest.raises(ValueError):
                server.run_round()
            assert len(server.history) == 0
        finally:
            server.close()
