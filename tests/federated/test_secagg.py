"""Tests for pairwise-masked secure aggregation.

The acceptance bar: per seed, ``secure_aggregation=True`` produces a
``TrainingHistory`` bit-identical to the plaintext run for every server-blind
defense, on every backend — including forced out-of-order completion and a
worker SIGKILLed mid-round — while inspection defenses fail fast with the
structured capability error and nothing outside the sealed aggregator layer
ever observes a plaintext update.
"""

from __future__ import annotations

import os
import signal
from functools import lru_cache

import numpy as np
import pytest

from repro.defenses.base import AggregationContext
from repro.experiments.scenario import Scenario
from repro.federated.engine import CallbackHook
from repro.federated.engine.plan import ClientUpdate
from repro.federated.secagg import (
    MASKED_KEY,
    PlaintextRequiredError,
    SecureAggregator,
    client_round_mask,
    mask_update,
    mask_words,
    pairwise_mask,
    unmask_update,
    unmask_words,
)
from repro.federated.secagg.masking import _WORD_MAX


def base_scenario(**overrides) -> Scenario:
    """Tiny full-participation federation: 8 benign tasks per round."""
    scenario = Scenario(
        dataset="femnist",
        num_clients=8,
        samples_per_client=10,
        num_classes=4,
        image_size=8,
        hidden=(16,),
        rounds=2,
        sample_rate=1.0,
        local={"epochs": 1, "batch_size": 8, "lr": 0.05},
        seed=5,
        attack="none",
        max_test_samples=8,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


@lru_cache(maxsize=None)
def plaintext_history(defense: str = "mean") -> list:
    result = base_scenario(defense=defense).run()
    return result.history.to_dict()["records"]


def secagg_history(hooks=None, **overrides) -> tuple[list, object]:
    result = base_scenario(secure_aggregation=True, **overrides).run(hooks=hooks)
    return result.history.to_dict()["records"], result.extras["server"]


class TestMasking:
    def test_pair_mask_is_deterministic_and_symmetric(self):
        a = pairwise_mask(7, 3, 1, 5, dim=64)
        b = pairwise_mask(7, 3, 5, 1, dim=64)
        assert a.dtype == np.uint64
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, pairwise_mask(7, 3, 1, 5, dim=64))

    def test_pair_mask_varies_with_round_seed_and_pair(self):
        base = pairwise_mask(7, 3, 1, 5, dim=64)
        assert not np.array_equal(base, pairwise_mask(7, 4, 1, 5, dim=64))
        assert not np.array_equal(base, pairwise_mask(8, 3, 1, 5, dim=64))
        assert not np.array_equal(base, pairwise_mask(7, 3, 1, 6, dim=64))

    def test_no_self_pair(self):
        with pytest.raises(ValueError, match="itself"):
            pairwise_mask(7, 3, 2, 2, dim=4)

    def test_round_masks_cancel_over_participants(self):
        participants = (0, 2, 5, 9, 11)
        total = np.zeros(128, dtype=np.uint64)
        for client in participants:
            total += client_round_mask(3, 1, client, participants, dim=128)
        # Sum of all aggregate masks is identically 0 mod 2**64.
        assert not total.any()

    def test_round_masks_cover_full_word_range_statistically(self):
        mask = pairwise_mask(0, 0, 0, 1, dim=4096)
        # Top bit set in about half the words: the mask really draws from the
        # full 64-bit range, not a sign-limited subset.
        top = int(np.count_nonzero(mask >> np.uint64(63)))
        assert 1500 < top < 2600

    def test_mask_words_roundtrip_preserves_every_bit_pattern(self):
        update = np.array(
            [0.0, -0.0, 1.5, -1.5e300, np.inf, -np.inf, np.nan, 5e-324]
        )
        mask = pairwise_mask(11, 2, 0, 1, dim=update.shape[0])
        masked = mask_words(update, mask)
        recovered = unmask_words(masked, mask)
        np.testing.assert_array_equal(
            update.view(np.uint64), recovered.view(np.uint64)
        )

    def test_mask_update_roundtrip_is_exact(self):
        rng = np.random.default_rng(0)
        update = rng.normal(size=513)
        participants = (0, 1, 2, 3, 4)
        masked = mask_update(update, 9, 4, 2, participants)
        assert not np.array_equal(
            masked.view(np.uint64), update.view(np.uint64)
        )
        recovered = unmask_update(masked, 9, 4, 2, participants)
        np.testing.assert_array_equal(
            update.view(np.uint64), recovered.view(np.uint64)
        )

    def test_masked_sum_of_all_participants_is_plaintext_sum_in_words(self):
        # The protocol-level identity this module simulates: adding every
        # participant's masked words recovers the sum of the plaintext words.
        rng = np.random.default_rng(1)
        participants = (0, 1, 2, 3)
        updates = {c: rng.normal(size=32) for c in participants}
        word_sum = np.zeros(32, dtype=np.uint64)
        masked_sum = np.zeros(32, dtype=np.uint64)
        for c in participants:
            word_sum += updates[c].view(np.uint64)
            masked_sum += mask_update(updates[c], 5, 0, c, participants).view(
                np.uint64
            )
        np.testing.assert_array_equal(word_sum, masked_sum)

    def test_word_max_is_full_range(self):
        assert _WORD_MAX == (1 << 64) - 1


class TestSecureAggregator:
    def _update(self, slot, vec, masked=True, client_id=None):
        return ClientUpdate(
            client_id=slot if client_id is None else client_id,
            slot=slot,
            update=vec,
            metadata={MASKED_KEY: True} if masked else {},
        )

    def test_rejects_plaintext_required_defense(self):
        from repro.defenses.registry import make_defense

        krum = make_defense("krum")
        with pytest.raises(PlaintextRequiredError) as excinfo:
            SecureAggregator(krum, seed=0)
        assert excinfo.value.defense == "krum"
        assert excinfo.value.capability == "requires_plaintext_updates"
        assert "server-blind" in str(excinfo.value)

    def test_has_no_matrix_path(self):
        from repro.defenses.base import MeanAggregator

        secagg = SecureAggregator(MeanAggregator(), seed=0)
        ctx = AggregationContext(rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="no matrix path"):
            secagg.aggregate(np.zeros((2, 4)), np.zeros(4), ctx)

    def test_rejects_unmasked_update(self):
        from repro.defenses.base import MeanAggregator

        secagg = SecureAggregator(MeanAggregator(), seed=0)
        ctx = AggregationContext(
            rng=np.random.default_rng(0), round_idx=0, sampled_clients=(0, 1)
        )
        state = secagg.begin_round(ctx)
        with pytest.raises(ValueError, match="unmasked"):
            secagg.accumulate(state, self._update(0, np.zeros(4), masked=False))

    def test_unmasks_and_folds_exactly_like_plaintext(self):
        from repro.defenses.base import MeanAggregator

        rng = np.random.default_rng(2)
        participants = (3, 7, 9)
        updates = {c: rng.normal(size=65) for c in participants}
        ctx = AggregationContext(
            rng=np.random.default_rng(0), round_idx=5, sampled_clients=participants
        )
        secagg = SecureAggregator(MeanAggregator(), seed=17)
        state = secagg.begin_round(ctx)
        for slot, client in enumerate(participants):
            masked = mask_update(updates[client], 17, 5, client, participants)
            secagg.accumulate(state, self._update(slot, masked, client_id=client))
        folded = secagg.finalize(state, np.zeros(65), ctx)

        # Reference: the same streaming fold fed the plaintext directly.
        plain = MeanAggregator()
        ref_state = plain.begin_round(ctx)
        for slot, client in enumerate(participants):
            plain.accumulate(
                ref_state,
                self._update(slot, updates[client], masked=False, client_id=client),
            )
        expected = plain.finalize(ref_state, np.zeros(65), ctx)
        np.testing.assert_array_equal(folded, expected)

    def test_name_wraps_inner(self):
        from repro.defenses.base import MeanAggregator

        assert SecureAggregator(MeanAggregator(), seed=0).name == "secagg(mean)"


class TestCapabilityFlags:
    def test_issue_defenses_require_plaintext(self):
        from repro.registry import DEFENSES

        requires = {
            name
            for name in DEFENSES.names()
            if getattr(DEFENSES.get(name), "requires_plaintext_updates", False)
        }
        # Pinned: exactly the cross-client inspection defenses.  A defense
        # whose math is a per-update-local transform plus a sum must NOT
        # appear here — flipping one of these is an API-visible change.
        assert requires == {"krum", "median", "trimmed_mean", "rlr",
                           "detector", "flare"}

    def test_scenario_rejects_inspection_defense_under_secagg(self):
        with pytest.raises(PlaintextRequiredError, match="krum"):
            base_scenario(defense="krum", secure_aggregation=True)

    def test_scenario_rejects_streaming_off_under_secagg(self):
        with pytest.raises(ValueError, match="matrix path"):
            base_scenario(streaming="off", secure_aggregation=True)

    def test_update_consuming_algorithm_rejected(self):
        scenario = base_scenario(algorithm="feddc", secure_aggregation=True)
        with pytest.raises(ValueError, match="post_aggregate"):
            scenario.run()

    def test_scenario_json_roundtrip_keeps_secagg(self):
        scenario = base_scenario(secure_aggregation=True)
        clone = Scenario.from_json(scenario.to_json())
        assert clone.secure_aggregation is True
        assert clone == scenario


class TestDistributedConstruction:
    def test_float32_wire_format_rejected_with_secagg(self):
        from repro.federated.engine.backends import make_backend

        with pytest.raises(ValueError, match="float64"):
            make_backend(
                "distributed", wire_dtype="float32", secure_aggregation=True
            )

    def test_float32_scenario_with_secagg_fails_at_backend_build(self):
        from repro.experiments.runner import build_backend

        scenario = base_scenario(
            backend="distributed",
            backend_kwargs={"wire_dtype": "float32"},
            secure_aggregation=True,
        )
        with pytest.raises(ValueError, match="float64"):
            build_backend(scenario)

    def test_float64_with_secagg_constructs(self):
        from repro.federated.engine.backends import make_backend

        backend = make_backend("distributed", secure_aggregation=True)
        assert backend.secure_aggregation is True


class TestBitIdentity:
    @pytest.mark.parametrize("defense", ["mean", "weighted_mean"])
    def test_serial_secagg_equals_plaintext(self, defense):
        records, _server = secagg_history(defense=defense)
        assert records == plaintext_history(defense)

    @pytest.mark.parametrize("defense", ["mean", "weighted_mean"])
    def test_thread_secagg_equals_plaintext(self, defense):
        records, _server = secagg_history(
            defense=defense, backend="thread", backend_workers=3
        )
        assert records == plaintext_history(defense)

    def test_hooks_only_see_masked_updates(self):
        # The observability boundary: every update event outside the sealed
        # aggregator carries masked words, flagged as such.
        seen: list[ClientUpdate] = []
        hook = CallbackHook(on_update=lambda s, p, u: seen.append(u))
        records, _server = secagg_history(hooks=[hook])
        assert records == plaintext_history("mean")
        assert seen
        assert all(u.metadata.get(MASKED_KEY) for u in seen)

    def test_server_blind_defense_stack_under_sharding(self):
        records, _server = secagg_history(defense="norm_bound", num_shards=2)
        plain = base_scenario(defense="norm_bound", num_shards=2).run()
        assert records == plain.history.to_dict()["records"]


class TestDistributedBitIdentity:
    def test_distributed_secagg_equals_plaintext(self):
        records, server = secagg_history(backend="distributed", backend_workers=2)
        assert records == plaintext_history("mean")
        assert server.backend.redispatch_count == 0

    def test_reordered_completion(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_TEST_DELAY", "0.4")
        arrivals: list[int] = []
        hook = CallbackHook(on_update=lambda s, p, u: arrivals.append(u.slot))
        records, _server = secagg_history(
            hooks=[hook], backend="distributed", backend_workers=2
        )
        assert records == plaintext_history("mean")
        per_round = len(arrivals) // 2
        first_round = arrivals[:per_round]
        assert first_round != sorted(first_round), "delays failed to reorder arrivals"

    def test_worker_kill_mid_round_recovers_masks(self, monkeypatch):
        """Masks re-derive deterministically on the surviving worker."""
        monkeypatch.setenv("REPRO_WORKER_TEST_DELAY", "0.3")
        killed: list[int] = []

        def kill_one(server, plan, update):
            if killed:
                return
            backend = server.backend
            victims = [link for link in backend.workers if link.outstanding]
            if victims:
                os.kill(victims[-1].pid, signal.SIGKILL)
                killed.append(victims[-1].pid)

        hook = CallbackHook(on_update=kill_one)
        records, server = secagg_history(
            hooks=[hook], backend="distributed", backend_workers=2
        )
        assert records == plaintext_history("mean")
        assert killed, "test never killed a worker"
        assert server.backend.redispatch_count > 0
