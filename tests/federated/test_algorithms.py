"""Unit tests for FedAvg, FedDC and MetaFed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.algorithms.metafed import MetaFed
from repro.federated.client import LocalTrainingConfig
from repro.nn.serialization import flatten_params


@pytest.fixture()
def config():
    return LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05)


class TestFedAvg:
    def test_personalized_params_is_global(self, image_model_factory, small_federation, config, rng):
        algo = FedAvg()
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        algo.init_state(small_federation.num_clients, global_params.size)
        personal = algo.personalized_params(
            0, global_params, model, small_federation.client(0).train, config, rng
        )
        np.testing.assert_allclose(personal, global_params)

    def test_benign_update_nonzero(self, image_model_factory, small_federation, config, rng):
        algo = FedAvg()
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update, loss = algo.benign_update(
            0, model, global_params, small_federation.client(0).train, config, rng
        )
        assert np.abs(update).sum() > 0 and np.isfinite(loss)


class TestFedDC:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            FedDC(drift_lr=0.0)
        with pytest.raises(ValueError):
            FedDC(proximal_mu=-1.0)
        with pytest.raises(ValueError):
            FedDC(drift_clip=0.0)

    def test_drift_requires_init(self):
        algo = FedDC()
        with pytest.raises(RuntimeError):
            _ = algo.drift

    def test_post_aggregate_updates_drift(self, image_model_factory, small_federation, config, rng):
        algo = FedDC(drift_lr=1.0)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        algo.init_state(small_federation.num_clients, global_params.size)
        update, _ = algo.benign_update(
            0, model, global_params, small_federation.client(0).train, config, rng
        )
        algo.post_aggregate(global_params, {0: update})
        np.testing.assert_allclose(algo.drift[0], update)
        assert np.abs(algo.drift[1]).sum() == 0.0

    def test_drift_is_clipped(self, small_federation):
        algo = FedDC(drift_lr=1.0, drift_clip=0.5)
        algo.init_state(small_federation.num_clients, 10)
        huge = np.full(10, 100.0)
        algo.post_aggregate(np.zeros(10), {0: huge})
        assert np.linalg.norm(algo.drift[0]) <= 0.5 + 1e-9

    def test_personalized_params_adds_drift(self, image_model_factory, small_federation, config, rng):
        algo = FedDC()
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        algo.init_state(small_federation.num_clients, global_params.size)
        algo.drift[2] = np.ones_like(global_params) * 0.01
        personal = algo.personalized_params(
            2, global_params, model, small_federation.client(2).train, config, rng
        )
        np.testing.assert_allclose(personal, global_params + 0.01)


class TestMetaFed:
    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MetaFed(num_neighbors=0)
        with pytest.raises(ValueError):
            MetaFed(distill_weight=1.5)
        with pytest.raises(ValueError):
            MetaFed(finetune_epochs=0)

    def test_neighbors_require_label_distributions(self):
        algo = MetaFed()
        algo.init_state(4, 10)
        assert algo.neighbors(0).size == 0

    def test_neighbors_prefer_similar_label_distributions(self):
        algo = MetaFed(num_neighbors=1, similarity_threshold=0.0)
        algo.init_state(3, 10)
        counts = np.array([[10, 0, 0], [9, 1, 0], [0, 0, 10]])
        algo.set_label_distributions(counts)
        assert algo.neighbors(0).tolist() == [1]

    def test_similarity_threshold_prunes_dissimilar_neighbors(self):
        algo = MetaFed(num_neighbors=2, similarity_threshold=0.99)
        algo.init_state(3, 10)
        counts = np.array([[10, 0], [0, 10], [5, 5]])
        algo.set_label_distributions(counts)
        assert algo.neighbors(0).size == 0

    def test_personalized_blends_neighbor_knowledge(
        self, image_model_factory, small_federation, config, rng
    ):
        # Force client 1 to be client 0's (only similar) neighbour so the
        # distillation term demonstrably pulls client 0 toward client 1's
        # personal model.
        forced_counts = np.zeros((small_federation.num_clients, 5))
        forced_counts[0] = [10, 1, 0, 0, 0]
        forced_counts[1] = [9, 2, 0, 0, 0]
        forced_counts[2:] = [0, 0, 5, 5, 5]

        def build(distill_weight):
            algo = MetaFed(num_neighbors=1, distill_weight=distill_weight,
                           similarity_threshold=0.5)
            algo.init_state(small_federation.num_clients, global_params.size)
            algo.set_label_distributions(forced_counts)
            algo.post_aggregate(global_params, {1: np.ones_like(global_params)})
            return algo

        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        personal_with = build(0.5).personalized_params(
            0, global_params, model, small_federation.client(0).train, config,
            np.random.default_rng(0),
        )
        personal_without = build(0.0).personalized_params(
            0, global_params, model, small_federation.client(0).train, config,
            np.random.default_rng(0),
        )
        assert not np.allclose(personal_with, personal_without)

    def test_requires_init_state(self, image_model_factory, small_federation, config, rng):
        algo = MetaFed()
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        with pytest.raises(RuntimeError):
            algo.personalized_params(
                0, global_params, model, small_federation.client(0).train, config, rng
            )
