"""Tests for the distributed execution subsystem.

The acceptance bar: per seed, ``backend="distributed"`` produces a
``TrainingHistory`` bit-identical to ``backend="serial"`` — for a streaming
defense (``mean``) and a buffering one (``krum``), for the stateful-benign
FedDC algorithm (drift ships with each task), under forced out-of-order
worker completion, and across a worker killed mid-round (its unfinished
tasks are re-dispatched to the survivor).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
from functools import lru_cache

import numpy as np
import pytest

from repro.experiments.scenario import Scenario
from repro.federated.engine import CallbackHook
from repro.federated.engine.backends import make_backend
from repro.federated.engine.distributed import protocol
from repro.federated.engine.distributed.coordinator import (
    DistributedBackend,
    _parse_addresses,
)
from repro.nn.serialization import vector_from_bytes, vector_to_bytes


def base_scenario(**overrides) -> Scenario:
    """Tiny full-participation federation: 8 benign tasks per round."""
    scenario = Scenario(
        dataset="femnist",
        num_clients=8,
        samples_per_client=10,
        num_classes=4,
        image_size=8,
        hidden=(16,),
        rounds=2,
        sample_rate=1.0,
        local={"epochs": 1, "batch_size": 8, "lr": 0.05},
        seed=5,
        attack="none",
        max_test_samples=8,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


@lru_cache(maxsize=None)
def serial_history(defense: str = "mean", algorithm: str = "fedavg") -> list:
    """Serial-backend reference history for one (defense, algorithm) cell."""
    result = base_scenario(defense=defense, algorithm=algorithm).run()
    return result.history.to_dict()["records"]


def distributed_history(hooks=None, **overrides) -> tuple[list, object]:
    overrides = {"backend": "distributed", "backend_workers": 2, **overrides}
    result = base_scenario(**overrides).run(hooks=hooks)
    return result.history.to_dict()["records"], result.extras["server"]


class TestProtocol:
    def test_message_roundtrip_is_bitexact(self):
        rng = np.random.default_rng(0)
        arrays = {"params": rng.normal(size=257), "state": rng.normal(size=31)}
        fields = {"order": 3, "loss": 0.25, "label": "x"}
        decoded_fields, decoded = protocol.decode_message(
            protocol.encode_message(fields, arrays)
        )
        assert decoded_fields == fields
        for name, original in arrays.items():
            assert decoded[name].tobytes() == original.tobytes()

    def test_vector_codec_rejects_matrices_and_misalignment(self):
        with pytest.raises(ValueError, match="flat vector"):
            vector_to_bytes(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="aligned"):
            vector_from_bytes(b"\x00" * 7)

    def test_frame_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            update = np.arange(5, dtype=np.float64) / 3.0
            protocol.send_message(
                left, protocol.MessageType.UPDATE, {"order": 1}, {"update": update}
            )
            msg, fields, arrays = protocol.recv_message(right)
            assert msg is protocol.MessageType.UPDATE
            assert fields == {"order": 1}
            assert arrays["update"].tobytes() == update.tobytes()
        finally:
            left.close()
            right.close()

    def test_recv_rejects_bad_magic_and_version(self):
        for header in (b"XX\x01\x06", bytes((82, 87, 99, 6))):  # magic / version
            left, right = socket.socketpair()
            try:
                left.sendall(header + b"\x00\x00\x00\x00")
                with pytest.raises(protocol.ProtocolError):
                    protocol.recv_message(right)
            finally:
                left.close()
                right.close()

    def test_recv_raises_connection_closed_mid_frame(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"RW")  # partial header, then EOF
            left.close()
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_context_payload_projects_and_fingerprints(self):
        scenario = base_scenario()
        payload = protocol.context_payload(scenario.to_dict())
        assert set(payload) == set(protocol.CONTEXT_FIELDS)
        fingerprint = protocol.context_fingerprint(payload)
        # Defense/round-count changes do not invalidate a worker's cache ...
        other = scenario.with_overrides(defense="krum", rounds=7)
        assert protocol.context_fingerprint(
            protocol.context_payload(other.to_dict())
        ) == fingerprint
        # ... but context-relevant changes do.
        reseeded = scenario.with_overrides(seed=6)
        assert protocol.context_fingerprint(
            protocol.context_payload(reseeded.to_dict())
        ) != fingerprint


class TestWireDtype:
    """fp32 wire format: protocol plumbing plus the end-to-end opt-in."""

    def test_float32_message_roundtrip_halves_bytes(self):
        rng = np.random.default_rng(1)
        vector = rng.normal(size=257)
        full = protocol.encode_message({"k": 1}, {"v": vector})
        half = protocol.encode_message({"k": 1}, {"v": vector}, dtype="float32")
        # Same header modulo the _dtype tag; the array section halves.
        assert len(full) - len(half) == 257 * 4
        fields, arrays = protocol.decode_message(half)
        assert fields == {"k": 1}
        np.testing.assert_array_equal(
            arrays["v"], vector.astype(np.float32).astype(np.float64)
        )
        assert arrays["v"].dtype == np.float64  # always rehydrated to f64

    def test_dtype_header_only_present_with_arrays(self):
        fields, _arrays = protocol.decode_message(
            protocol.encode_message({"k": 1}, None, dtype="float32")
        )
        assert fields == {"k": 1}  # no arrays -> no _dtype leaks through

    def test_unknown_dtype_rejected_on_encode_and_decode(self):
        with pytest.raises(ValueError, match="unknown wire dtype"):
            protocol.encode_message({}, {"v": np.zeros(3)}, dtype="float16")
        # A peer declaring an unknown dtype is a protocol violation.
        payload = bytearray(
            protocol.encode_message({}, {"v": np.zeros(3)}, dtype="float32")
        )
        corrupt = bytes(payload).replace(b'"_dtype":"float32"', b'"_dtype":"flort32"')
        with pytest.raises(protocol.ProtocolError, match="unknown wire dtype"):
            protocol.decode_message(corrupt)

    def test_reserved_header_fields_rejected(self):
        for reserved in ("_arrays", "_dtype"):
            with pytest.raises(ValueError, match="reserved"):
                protocol.encode_message({reserved: 1})

    def test_backend_validates_wire_dtype_at_construction(self):
        with pytest.raises(ValueError, match="unknown wire dtype"):
            DistributedBackend(max_workers=1, wire_dtype="float16")
        backend = DistributedBackend(max_workers=1, wire_dtype="float32")
        assert backend.wire_dtype == "float32"
        backend.close()

    def test_float32_run_tracks_serial_within_tolerance(self):
        """The lossy opt-in: not bit-identical, but numerically close."""
        records, _server = distributed_history(
            backend_kwargs={"wire_dtype": "float32"}
        )
        reference = serial_history("mean")
        assert [r["round_idx"] for r in records] == [
            r["round_idx"] for r in reference
        ]
        # Sampling draws on the driver, so client choice is unaffected; only
        # the shipped float payloads are quantised.
        assert [r["sampled_clients"] for r in records] == [
            r["sampled_clients"] for r in reference
        ]
        for got, want in zip(records, reference, strict=True):
            np.testing.assert_allclose(
                got["mean_benign_loss"], want["mean_benign_loss"], rtol=1e-4
            )
            np.testing.assert_allclose(
                got["update_norm"], want["update_norm"], rtol=1e-4
            )
        # fp32 really was lossy somewhere (guards against silently running f64).
        assert any(
            got["update_norm"] != want["update_norm"]
            for got, want in zip(records, reference, strict=True)
        )

    def test_scenario_spec_routes_wire_dtype(self):
        scenario = base_scenario(backend="distributed:wire_dtype='float32'")
        assert scenario.backend == "distributed"
        assert scenario.backend_kwargs == {"wire_dtype": "float32"}


class TestCoordinatorConfig:
    def test_registered_and_constructible(self):
        backend = make_backend("distributed", max_workers=2)
        assert isinstance(backend, DistributedBackend)
        assert backend.max_workers == 2
        backend.close()
        backend.close()  # idempotent

    def test_parse_addresses(self):
        assert _parse_addresses(None) == ()
        assert _parse_addresses("h1:1, h2:2") == (("h1", 1), ("h2", 2))
        assert _parse_addresses(["h1:1", "h2:2"]) == (("h1", 1), ("h2", 2))
        with pytest.raises(ValueError, match="host:port"):
            _parse_addresses(["nocolon"])
        with pytest.raises(ValueError, match="host:port"):
            _parse_addresses(["h:notaport"])

    def test_parse_listen_address(self):
        from repro.federated.engine.distributed.worker import parse_listen_address

        assert parse_listen_address("127.0.0.1:7011") == ("127.0.0.1", 7011)
        assert parse_listen_address(":0") == ("", 0)  # all interfaces, ephemeral
        assert parse_listen_address("8080") == ("127.0.0.1", 8080)  # bare port
        with pytest.raises(ValueError, match="host:port"):
            parse_listen_address("127.0.0.1:notaport")

    def test_backend_is_reusable_after_close(self):
        """Matching the pool backends: close() releases, next round respawns."""
        from repro.experiments.runner import (
            build_algorithm,
            build_backend,
            build_dataset,
            build_model_factory,
        )
        from repro.federated.server import FederatedServer, ServerConfig

        scenario = base_scenario(backend="distributed", backend_workers=1)
        dataset, generator = build_dataset(scenario)
        server = FederatedServer(
            dataset,
            build_model_factory(scenario, generator),
            build_algorithm(scenario),
            ServerConfig(rounds=2, participation="uniform:sample_rate=1.0", seed=5, local=scenario.local),
            backend=build_backend(scenario),
        )
        with server:
            server.run_round()
        assert server.backend.workers == []     # context exit shut them down
        server.run_round()                      # respawns workers lazily
        server.close()
        assert server.history.to_dict()["records"] == serial_history("mean")

    def test_scenario_spec_routes_backend_kwargs(self):
        scenario = base_scenario(backend="distributed:max_workers=3")
        assert scenario.backend == "distributed"
        assert scenario.backend_workers == 3
        spec = base_scenario(
            backend="distributed:connect='127.0.0.1:5555'"
        )
        assert spec.backend_kwargs == {"connect": "127.0.0.1:5555"}
        # Lossless JSON round-trip, including backend_kwargs.
        assert Scenario.from_dict(json.loads(spec.to_json())) == spec

    def test_scenario_rejects_unknown_backend_kwargs(self):
        with pytest.raises(ValueError, match="does not accept"):
            base_scenario(backend="thread:frobnicate=1")

    def test_unconfigured_backend_raises_helpfully(self, small_federation, image_model_factory):
        from repro.federated.algorithms.fedavg import FedAvg
        from repro.federated.client import LocalTrainingConfig
        from repro.federated.server import FederatedServer, ServerConfig

        config = ServerConfig(rounds=1, participation="uniform:sample_rate=0.5", seed=2,
                              local=LocalTrainingConfig(epochs=1, batch_size=8))
        with FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            backend="distributed",
        ) as server:
            with pytest.raises(RuntimeError, match="configure_scenario"):
                server.run_round()


class TestBitIdentity:
    @pytest.mark.parametrize("defense", ["mean", "krum"])
    def test_distributed_equals_serial(self, defense):
        records, server = distributed_history(defense=defense)
        assert records == serial_history(defense)
        # The workers really were separate interpreters.
        assert server.backend.redispatch_count == 0

    def test_feddc_state_ships_with_tasks(self):
        records, _server = distributed_history(algorithm="feddc")
        assert records == serial_history("mean", "feddc")

    def test_reordered_completion(self, monkeypatch):
        """Forced out-of-order arrival must not change the history."""
        # Worker-side test knob: lower slots sleep longest after computing,
        # so updates reach the coordinator out of slot order.
        monkeypatch.setenv("REPRO_WORKER_TEST_DELAY", "0.4")
        arrivals: list[int] = []
        hook = CallbackHook(on_update=lambda s, p, u: arrivals.append(u.slot))
        records, _server = distributed_history(hooks=[hook])
        assert records == serial_history("mean")
        per_round = len(arrivals) // 2
        first_round = arrivals[:per_round]
        assert first_round != sorted(first_round), "delays failed to reorder arrivals"

    def test_worker_kill_redispatches_and_matches_serial(self, monkeypatch):
        """SIGKILLing a worker mid-round re-runs its tasks on the survivor."""
        monkeypatch.setenv("REPRO_WORKER_TEST_DELAY", "0.3")
        killed: list[int] = []

        def kill_one(server, plan, update):
            if killed:
                return
            backend = server.backend
            victims = [link for link in backend.workers if link.outstanding]
            if victims:
                os.kill(victims[-1].pid, signal.SIGKILL)
                killed.append(victims[-1].pid)

        hook = CallbackHook(on_update=kill_one)
        records, server = distributed_history(hooks=[hook])
        assert records == serial_history("mean")
        assert killed, "test never killed a worker"
        assert server.backend.redispatch_count > 0
        assert killed[0] not in server.backend.worker_pids


class TestStandaloneWorker:
    def test_attach_to_externally_started_worker(self):
        """`python -m repro worker` + backend_kwargs connect= end to end."""
        env = os.environ.copy()
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = proc.stdout.readline().split()
            assert line[:2] == ["REPRO-WORKER", "LISTENING"]
            address = f"{line[2]}:{line[3]}"
            records, _server = distributed_history(
                backend_workers=None, backend_kwargs={"connect": address}
            )
            assert records == serial_history("mean")
        finally:
            proc.terminate()
            proc.wait(timeout=10)
            proc.stdout.close()


class TestWorkerErrorPropagation:
    def test_task_failure_reaches_the_driver(self):
        """A worker-side exception surfaces as a driver-side RuntimeError."""
        # An out-of-range client id makes the worker's dataset lookup fail.
        scenario = base_scenario(backend="distributed", backend_workers=1)
        from repro.experiments.runner import build_backend, build_dataset, build_model_factory

        backend = build_backend(scenario)
        try:
            dataset, generator = build_dataset(scenario)
            from repro.experiments.runner import build_algorithm
            from repro.federated.engine.backends import EngineContext
            from repro.federated.engine.plan import build_round_plan
            from repro.nn.serialization import flatten_params

            factory = build_model_factory(scenario, generator)
            backend.bind(EngineContext(
                dataset=dataset, model_factory=factory,
                algorithm=build_algorithm(scenario),
                local_config=scenario.local,
            ))
            params = flatten_params(factory())
            bogus = build_round_plan(0, [dataset.num_clients + 3], set(), seed=5,
                                     attack_active=False)
            with pytest.raises(RuntimeError, match="worker task failed"):
                list(backend.iter_updates(bogus, params))
        finally:
            backend.close()
