"""Unit tests for the federated server round loop."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.defenses.base import MeanAggregator
from repro.defenses.median import CoordinateMedian
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.server import FederatedServer, ServerConfig
from repro.nn.serialization import flatten_params


def _make_server(small_federation, image_model_factory, rounds=3, **kwargs):
    config = ServerConfig(
        rounds=rounds,
        participation="uniform:sample_rate=0.5",
        seed=2,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        **kwargs,
    )
    return FederatedServer(
        small_federation, image_model_factory, FedAvg(), config,
        aggregator=MeanAggregator(),
    )


class TestServerConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"rounds": 0}, {"sample_rate": 0.0}, {"server_lr": 0.0}]
    )
    def test_invalid_config(self, kwargs):
        with warnings.catch_warnings():
            # The sample_rate=0.0 case warns (deprecated scalar) before it
            # raises; the range error is what's under test here.
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                ServerConfig(**kwargs)

    def test_scalar_sample_rate_warns_and_maps_to_uniform(self):
        with pytest.warns(DeprecationWarning, match="participation"):
            config = ServerConfig(sample_rate=0.3, min_sampled_clients=2)
        assert config.participation_spec() == (
            "uniform", {"sample_rate": 0.3, "min_clients": 2}
        )

    def test_default_config_maps_to_bare_uniform(self):
        # No scalars, no spec: the uniform model's own defaults apply,
        # which is the pre-participation-API behaviour.
        assert ServerConfig().participation_spec() == ("uniform", {})

    def test_scalars_and_participation_spec_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            ServerConfig(sample_rate=0.3, participation="uniform")

    @pytest.mark.parametrize(
        "mode", ["warp", "sync:buffer_size=2", "buffered_async:bogus=1",
                 "buffered_async:buffer_size=0",
                 "buffered_async:staleness_discount=0.0"]
    )
    def test_invalid_aggregation_mode(self, mode):
        with pytest.raises(ValueError):
            ServerConfig(aggregation_mode=mode)


class TestFederatedServer:
    def test_run_produces_history(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory, rounds=3)
        history = server.run()
        assert len(history) == 3
        assert history.records[0].sampled_clients

    def test_global_params_change_each_round(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory, rounds=1)
        before = server.global_params.copy()
        server.run_round()
        assert not np.allclose(server.global_params, before)

    def test_training_reduces_mean_loss(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory, rounds=12)
        history = server.run()
        first = np.mean([r.mean_benign_loss for r in history.records[:3]])
        last = np.mean([r.mean_benign_loss for r in history.records[-3:]])
        assert last < first

    def test_run_is_deterministic_given_seed(self, small_federation, image_model_factory):
        a = _make_server(small_federation, image_model_factory, rounds=3)
        b = _make_server(small_federation, image_model_factory, rounds=3)
        a.run()
        b.run()
        np.testing.assert_allclose(a.global_params, b.global_params)

    def test_attack_requires_compromised_clients(self, small_federation, image_model_factory):
        config = ServerConfig(rounds=1, participation="uniform:sample_rate=0.5")
        with pytest.raises(ValueError):
            FederatedServer(
                small_federation, image_model_factory, FedAvg(), config,
                attack=object(), compromised_ids=[],
            )

    def test_custom_aggregator_is_used(self, small_federation, image_model_factory):
        class RecordingAggregator(CoordinateMedian):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def aggregate(self, updates, global_params, rng):
                self.calls += 1
                return super().aggregate(updates, global_params, rng)

        aggregator = RecordingAggregator()
        config = ServerConfig(rounds=2, participation="uniform:sample_rate=0.5", seed=0,
                              local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05))
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config, aggregator=aggregator
        )
        server.run()
        assert aggregator.calls == 2

    def test_eval_fn_populates_history(self, small_federation, image_model_factory):
        config = ServerConfig(
            rounds=2, participation="uniform:sample_rate=0.5", seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
            eval_every=1,
        )
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            aggregator=MeanAggregator(),
            eval_fn=lambda params, round_idx: {
                "benign_accuracy": 0.5, "attack_success_rate": 0.25,
            },
        )
        history = server.run()
        assert history.records[-1].benign_accuracy == 0.5
        assert history.records[-1].attack_success_rate == 0.25

    def test_personalized_params_matches_global_for_fedavg(
        self, small_federation, image_model_factory
    ):
        server = _make_server(small_federation, image_model_factory, rounds=1)
        server.run()
        np.testing.assert_allclose(server.personalized_params(0), server.global_params)

    def test_initial_params_match_model_factory(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory)
        np.testing.assert_allclose(server.global_params, flatten_params(image_model_factory()))


class TestServerLifecycle:
    """FederatedServer is a context manager; close() is idempotent."""

    def test_context_manager_closes_backend(self, small_federation, image_model_factory):
        from repro.federated.engine import ThreadPoolBackend

        backend = ThreadPoolBackend(max_workers=2)
        config = ServerConfig(
            rounds=1, participation="uniform:sample_rate=0.5", seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        )
        with FederatedServer(
            small_federation, image_model_factory, FedAvg(), config, backend=backend
        ) as server:
            server.run()
            assert backend._executor is not None
        assert backend._executor is None  # __exit__ released the pool

    def test_close_is_idempotent_but_rearms_after_new_rounds(
        self, small_federation, image_model_factory
    ):
        closes = []

        class ClosingAggregator(MeanAggregator):
            def close(self):
                closes.append(True)

        config = ServerConfig(
            rounds=1, participation="uniform:sample_rate=0.5", seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        )
        server = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config,
            aggregator=ClosingAggregator(),
        )
        server.run()
        server.close()
        server.close()  # idempotent: second close releases nothing twice
        assert closes == [True]
        server.run_round()  # more work re-acquires resources ...
        server.close()      # ... so close must actually run again
        assert closes == [True, True]

    def test_context_manager_closes_on_exception(self, small_federation, image_model_factory):
        server = _make_server(small_federation, image_model_factory, rounds=1)
        with pytest.raises(RuntimeError, match="sentinel"):
            with server:
                raise RuntimeError("sentinel")
        assert server._closed
