"""Buffered-async (FedBuff-style) aggregation: carry, staleness, attribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.base import MeanAggregator
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine import CallbackHook, ClientUpdate
from repro.federated.engine.ledger import CommunicationLedger, LedgerHook
from repro.federated.server import FederatedServer, ServerConfig

TIERED = "tiered:sample_rate=0.6,min_clients=2,jitter=0.5"


def _server(federation, factory, backend="serial", rounds=3, hooks=None,
            aggregation_mode="buffered_async:buffer_size=3",
            participation=TIERED, **kwargs):
    config = ServerConfig(
        rounds=rounds,
        seed=2,
        participation=participation,
        aggregation_mode=aggregation_mode,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        **kwargs,
    )
    return FederatedServer(
        federation, factory, FedAvg(), config,
        aggregator=MeanAggregator(), backend=backend, hooks=hooks,
    )


class TestDiscountStale:
    def test_zero_staleness_is_identity(self):
        update = ClientUpdate(client_id=1, slot=0, update=np.ones(4))
        assert MeanAggregator().discount_stale(update, 0, 0.5) is update

    def test_discount_compounds_per_round(self):
        update = ClientUpdate(client_id=1, slot=0, update=np.full(4, 8.0))
        out = MeanAggregator().discount_stale(update, 3, 0.5)
        np.testing.assert_allclose(out.update, np.ones(4))  # 8 · 0.5³
        assert out.metadata["staleness"] == 3
        np.testing.assert_allclose(update.update, np.full(4, 8.0))  # untouched


class TestConfigValidation:
    def test_secure_aggregation_is_rejected(self):
        with pytest.raises(ValueError, match="secure aggregation"):
            ServerConfig(
                aggregation_mode="buffered_async", secure_aggregation=True
            )

    def test_streaming_off_is_rejected(self):
        with pytest.raises(ValueError, match="streaming"):
            ServerConfig(aggregation_mode="buffered_async", streaming="off")


class TestCarrySemantics:
    def test_round_counts_are_conserved(self, small_federation, image_model_factory):
        server = _server(small_federation, image_model_factory, rounds=4)
        with server:
            history = server.run()
        carried_out_prev = 0
        for record in history.records:
            stats = record.extras["buffered_async"]
            # Everything folded this round is either carried in or on time,
            # and last round's stragglers all arrive this round.
            assert stats["carried_in"] == carried_out_prev
            on_time = stats["folded"] - stats["carried_in"]
            assert 0 <= on_time <= 3  # buffer_size
            assert on_time + stats["carried_out"] == len(record.sampled_clients)
            carried_out_prev = stats["carried_out"]

    def test_no_latency_model_degenerates_to_slot_order(
        self, small_federation, image_model_factory
    ):
        # Uniform participation has no latency draws and the buffer admits
        # the whole cohort: buffered_async must equal the sync fold exactly.
        buffered = _server(
            small_federation, image_model_factory,
            participation="uniform:sample_rate=0.5",
            aggregation_mode="buffered_async",
        )
        sync = _server(
            small_federation, image_model_factory,
            participation="uniform:sample_rate=0.5",
            aggregation_mode="sync",
        )
        with buffered, sync:
            buffered.run()
            sync.run()
        np.testing.assert_array_equal(buffered.global_params, sync.global_params)

    def test_carried_updates_keep_their_origin_round(
        self, small_federation, image_model_factory
    ):
        seen: list[tuple[int, int, int]] = []  # (arrival_round, cid, origin)
        probe = CallbackHook(
            on_update=lambda s, plan, u: seen.append(
                (plan.round_idx, u.client_id, u.metadata.get("origin_round", plan.round_idx))
            )
        )
        server = _server(small_federation, image_model_factory, rounds=4, hooks=[probe])
        with server:
            server.run()
        carried = [(r, cid, o) for r, cid, o in seen if o != r]
        assert carried, "tiered stragglers should produce carried updates"
        # Every carried update arrives exactly one round after its origin
        # (the buffer opens next round) and is stale by that one round.
        assert all(r == o + 1 for r, _cid, o in carried)

    def test_staleness_discount_shrinks_carried_contribution(
        self, small_federation, image_model_factory
    ):
        # discount=1.0 keeps carried updates whole; a small discount shrinks
        # them — the two runs must diverge, and only through carried folds.
        whole = _server(
            small_federation, image_model_factory,
            aggregation_mode="buffered_async:buffer_size=3,staleness_discount=1.0",
        )
        damped = _server(
            small_federation, image_model_factory,
            aggregation_mode="buffered_async:buffer_size=3,staleness_discount=0.1",
        )
        with whole, damped:
            whole.run()
            damped.run()
        assert not np.array_equal(whole.global_params, damped.global_params)


class TestBackendBitIdentity:
    @pytest.mark.parametrize("backend", ["thread"])
    def test_matches_serial_reference(
        self, small_federation, image_model_factory, backend
    ):
        reference = _server(small_federation, image_model_factory, "serial")
        other = _server(small_federation, image_model_factory, backend)
        with reference, other:
            ref_history = reference.run()
            other_history = other.run()
        for a, b in zip(ref_history.records, other_history.records):
            assert a.sampled_clients == b.sampled_clients
            assert a.extras == b.extras
        np.testing.assert_array_equal(reference.global_params, other.global_params)


class TestLedgerAttribution:
    def test_update_bytes_attributed_to_arrival_round(
        self, small_federation, image_model_factory
    ):
        ledger = CommunicationLedger()
        server = _server(
            small_federation, image_model_factory, rounds=4,
            hooks=[LedgerHook(ledger)],
        )
        with server:
            history = server.run()
        up_frames = {r: 0 for r in range(4)}
        for entry in ledger.to_dict()["entries"]:
            if entry["direction"] == "up":
                up_frames[entry["round"]] += entry["frames"]
        for record in history.records:
            # One up frame per folded update — carried arrivals included in
            # their arrival round, stragglers excluded until they land.
            assert up_frames[record.round_idx] == (
                record.extras["buffered_async"]["folded"]
            )
