"""Lazy client populations: determinism, laziness, LRU cache behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.population import ClientPopulation, SyntheticPopulation
from repro.registry import POPULATIONS


def _pop(**kwargs):
    defaults = dict(
        dataset="femnist",
        num_clients=200,
        samples_per_client=16,
        alpha=0.4,
        seed=9,
        cache_size=4,
        eval_clients=8,
    )
    defaults.update(kwargs)
    return SyntheticPopulation(**defaults)


def _assert_same_client(a, b):
    np.testing.assert_array_equal(a.class_counts, b.class_counts)
    for split in ("train", "test", "val"):
        np.testing.assert_array_equal(getattr(a, split).x, getattr(b, split).x)
        np.testing.assert_array_equal(getattr(a, split).y, getattr(b, split).y)


class TestLaziness:
    def test_construction_materializes_nothing(self):
        pop = _pop()
        assert pop.materializations == 0
        assert pop.cache_info()["size"] == 0

    def test_label_distributions_is_metadata_only(self):
        pop = _pop()
        dist = pop.label_distributions()
        assert dist.shape == (200, pop.num_classes)
        assert pop.materializations == 0  # class_counts never builds arrays
        assert (dist.sum(axis=1) >= 8).all()  # min_samples floor

    def test_only_touched_clients_materialize(self):
        pop = _pop()
        for cid in (3, 7, 3, 7):
            pop.client(cid)
        assert pop.materializations == 2

    def test_out_of_range_cid_raises(self):
        pop = _pop()
        with pytest.raises(IndexError):
            pop.client(200)
        with pytest.raises(IndexError):
            pop.client(-1)


class TestDeterminism:
    def test_client_is_pure_in_seed_and_cid(self):
        a, b = _pop(), _pop()
        _assert_same_client(a.client(17), b.client(17))

    def test_different_seeds_differ(self):
        a, b = _pop(seed=9), _pop(seed=10)
        assert not np.array_equal(a.client(0).train.x, b.client(0).train.x)

    def test_class_counts_match_materialized_client(self):
        pop = _pop()
        np.testing.assert_array_equal(pop.class_counts(5), pop.client(5).class_counts)

    def test_eval_client_ids_deterministic_and_capped(self):
        a, b = _pop(), _pop()
        ids = a.eval_client_ids()
        assert ids == b.eval_client_ids()
        assert len(ids) == 8 and ids == sorted(ids)
        assert all(0 <= c < 200 for c in ids)

    def test_eval_cap_above_population_returns_everyone(self):
        pop = _pop(num_clients=6, eval_clients=32)
        assert pop.eval_client_ids() == list(range(6))


class TestLRUCache:
    def test_eviction_caps_cache_size(self):
        pop = _pop(cache_size=4)
        for cid in range(10):
            pop.client(cid)
        assert pop.cache_info()["size"] == 4
        assert pop.materializations == 10

    def test_eviction_then_rematerialization_is_bit_identical(self):
        # The load-bearing guarantee: an evicted client rebuilt later is the
        # same client, so cache pressure can never change results.
        small = _pop(cache_size=2)
        never_evicted = _pop(cache_size=64)
        reference = {cid: never_evicted.client(cid) for cid in range(8)}
        for cid in range(8):  # fills and churns the 2-slot cache
            small.client(cid)
        for cid in range(8):  # every hit below re-materialises
            _assert_same_client(small.client(cid), reference[cid])
        assert small.materializations > 8

    def test_recently_used_survives_eviction(self):
        pop = _pop(cache_size=2)
        pop.client(0)
        pop.client(1)
        pop.client(0)  # refresh 0: LRU order is now [1, 0]
        pop.client(2)  # evicts 1
        before = pop.materializations
        pop.client(0)
        assert pop.materializations == before  # still cached


class TestRegistryIntegration:
    def test_population_family_is_registered(self):
        assert "synthetic" in POPULATIONS.names()
        pop = POPULATIONS.create("synthetic:num_clients=10,cache_size=2")
        assert isinstance(pop, ClientPopulation)
        assert pop.num_clients == 10

    def test_generator_instance_is_accepted(self, femnist_generator):
        pop = SyntheticPopulation(dataset=femnist_generator, num_clients=10)
        assert pop.generator is femnist_generator
        assert pop.num_classes == femnist_generator.num_classes

    def test_duck_types_federated_dataset_surface(self):
        pop = _pop(num_clients=12)
        aux = pop.auxiliary_dataset([1, 2], source="val")
        assert len(aux) > 0
        counts = pop.auxiliary_class_counts([1, 2])
        assert counts.shape == (pop.num_classes,)
        assert pop.input_shape[-1] == pop.generator.image_size
