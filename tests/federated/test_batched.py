"""Federated-level pinned tests for the cross-client batched backend.

The kernel-level ground truth lives in ``tests/nn/test_batched_kernels.py``; these
tests pin the acceptance bar one level up: a seeded ``backend="batched"`` run
produces the **bit-identical** :class:`TrainingHistory` of the serial backend
— for the plain mean defense, for krum, and for FedDC including its per-client
drift state — and every fallback path (unbatchable model, singleton groups,
empty client data) degrades to the serial task path rather than diverging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger
from repro.core.collapois import CollaPoisAttack
from repro.defenses.base import MeanAggregator
from repro.defenses.krum import Krum
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine import SerialBackend, make_backend
from repro.federated.engine.batched import BatchedBackend
from repro.federated.server import FederatedServer, ServerConfig
from repro.nn.layers import Flatten
from repro.nn.model import Sequential, make_mlp


def _make_server(
    federation,
    factory,
    backend,
    algorithm=None,
    aggregator=None,
    attack=False,
    rounds=4,
    sample_rate=0.5,
):
    config = ServerConfig(
        rounds=rounds,
        participation=("uniform", {"sample_rate": sample_rate}),
        seed=2,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
    )
    attack_obj = None
    compromised = None
    if attack:
        attack_obj = CollaPoisAttack(trojan_epochs=2)
        compromised = [0, 3]
        attack_obj.setup(
            federation, compromised, factory, PixelPatchTrigger(12, patch_size=3), 0, seed=2
        )
    return FederatedServer(
        federation,
        factory,
        (algorithm or FedAvg)(),
        config,
        aggregator=aggregator,
        attack=attack_obj,
        compromised_ids=compromised,
        backend=backend,
    )


def _history_fingerprint(history):
    return [
        (
            r.round_idx,
            tuple(r.sampled_clients),
            tuple(r.compromised_sampled),
            r.mean_benign_loss,
            r.update_norm,
        )
        for r in history.records
    ]


def _assert_identical_runs(reference, other):
    reference.run()
    other.run()
    other.close()
    np.testing.assert_array_equal(reference.global_params, other.global_params)
    assert _history_fingerprint(reference.history) == _history_fingerprint(other.history)


class TestBatchedBitIdentity:
    """``backend="batched"`` must reproduce serial histories byte-for-byte."""

    def test_mean_defense_matches_serial(self, small_federation, image_model_factory):
        reference = _make_server(
            small_federation, image_model_factory, "serial",
            aggregator=MeanAggregator(), rounds=6, sample_rate=1.0,
        )
        other = _make_server(
            small_federation, image_model_factory, "batched",
            aggregator=MeanAggregator(), rounds=6, sample_rate=1.0,
        )
        _assert_identical_runs(reference, other)

    def test_krum_defense_matches_serial(self, small_federation, image_model_factory):
        reference = _make_server(
            small_federation, image_model_factory, "serial",
            aggregator=Krum(num_malicious=2), rounds=6,
        )
        other = _make_server(
            small_federation, image_model_factory, "batched",
            aggregator=Krum(num_malicious=2), rounds=6,
        )
        _assert_identical_runs(reference, other)

    def test_feddc_matches_serial_including_drift(
        self, small_federation, image_model_factory
    ):
        # FedDC's per-client drift both feeds the batched proximal term and
        # is written back from batched updates — state must round-trip too.
        reference = _make_server(
            small_federation, image_model_factory, "serial", algorithm=FedDC, rounds=6
        )
        other = _make_server(
            small_federation, image_model_factory, "batched", algorithm=FedDC, rounds=6
        )
        _assert_identical_runs(reference, other)
        np.testing.assert_array_equal(
            reference.algorithm.drift, other.algorithm.drift
        )

    def test_attacked_run_matches_serial(self, small_federation, image_model_factory):
        # Malicious tasks stay on the driver model; only benign work stacks.
        reference = _make_server(small_federation, image_model_factory, "serial", attack=True)
        other = _make_server(small_federation, image_model_factory, "batched", attack=True)
        _assert_identical_runs(reference, other)
        recorded = sum(len(r.compromised_sampled) for r in other.history.records)
        assert len(other.attack.psi_history) == recorded

    def test_max_group_chunking_matches_serial(
        self, small_federation, image_model_factory
    ):
        reference = _make_server(
            small_federation, image_model_factory, "serial", rounds=3, sample_rate=1.0
        )
        other = _make_server(
            small_federation, image_model_factory, BatchedBackend(max_group=3),
            rounds=3, sample_rate=1.0,
        )
        _assert_identical_runs(reference, other)

    def test_serial_batch_clients_knob_matches_plain_serial(
        self, small_federation, image_model_factory
    ):
        reference = _make_server(small_federation, image_model_factory, "serial", rounds=3)
        other = _make_server(
            small_federation, image_model_factory, SerialBackend(batch_clients=4), rounds=3
        )
        _assert_identical_runs(reference, other)

    def test_streaming_iter_updates_matches_barrier_execute(
        self, small_federation, image_model_factory
    ):
        # The server picks iter_updates for streaming-capable aggregators;
        # force both paths and compare.
        reference = _make_server(
            small_federation, image_model_factory, "batched", rounds=3
        )
        config = ServerConfig(
            rounds=3, participation="uniform:sample_rate=0.5", seed=2,
            local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
            streaming="off",
        )
        other = FederatedServer(
            small_federation, image_model_factory, FedAvg(), config, backend="batched"
        )
        _assert_identical_runs(reference, other)


class TestBatchedFallbacks:
    def test_dropout_model_falls_back_to_serial_path(
        self, small_federation, femnist_generator
    ):
        # Dropout has no batched counterpart, so the whole model is
        # unbatchable; the runner must serve every task serially and still
        # match the serial backend exactly.
        size = femnist_generator.image_size

        def factory():
            mlp = make_mlp(
                size * size, (24,), femnist_generator.num_classes, seed=5, dropout=0.2
            )
            return Sequential([Flatten(), *mlp.layers])

        reference = _make_server(small_federation, factory, "serial", rounds=2)
        other = _make_server(small_federation, factory, "batched", rounds=2)
        _assert_identical_runs(reference, other)
        assert other.backend._get_runner().batched_task_count == 0

    def test_singleton_groups_take_plain_task_path(
        self, small_federation, image_model_factory
    ):
        server = _make_server(
            small_federation, image_model_factory, BatchedBackend(max_group=1),
            rounds=2, sample_rate=1.0,
        )
        server.run()
        assert server.backend._get_runner().batched_task_count == 0

    def test_batched_task_count_counts_stacked_clients(
        self, small_federation, image_model_factory
    ):
        server = _make_server(
            small_federation, image_model_factory, "batched", rounds=2, sample_rate=1.0
        )
        server.run()
        counted = server.backend._get_runner().batched_task_count
        sampled = sum(len(r.sampled_clients) for r in server.history.records)
        assert counted == sampled > 0

    def test_empty_client_data_yields_zero_update(self, femnist_generator):
        from repro.data.federated_data import ClientData, FederatedDataset

        pool = femnist_generator.sample_iid(48, seed=0)
        empty = pool.subset(np.arange(0))
        clients = []
        for i in range(4):
            train = (
                empty if i == 1 else pool.subset(np.arange(i * 8, (i + 1) * 8))
            )
            test = pool.subset(np.arange(40, 48))
            clients.append(
                ClientData(
                    client_id=i,
                    train=train,
                    test=test,
                    val=test,
                    class_counts=train.class_counts(femnist_generator.num_classes),
                )
            )
        federation = FederatedDataset(
            clients=clients,
            num_classes=femnist_generator.num_classes,
            alpha=0.5,
            input_shape=pool.x.shape[1:],
        )
        size = femnist_generator.image_size

        def factory():
            mlp = make_mlp(size * size, (16,), femnist_generator.num_classes, seed=5)
            return Sequential([Flatten(), *mlp.layers])

        reference = _make_server(federation, factory, "serial", rounds=2, sample_rate=1.0)
        other = _make_server(federation, factory, "batched", rounds=2, sample_rate=1.0)
        _assert_identical_runs(reference, other)


class TestBatchedConstruction:
    def test_registry_constructs_batched(self):
        assert isinstance(make_backend("batched"), BatchedBackend)
        assert isinstance(make_backend("batched", max_group=4), BatchedBackend)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_max_group(self, bad):
        with pytest.raises(ValueError, match="max_group"):
            BatchedBackend(max_group=bad)
        with pytest.raises(ValueError, match="batch_clients"):
            SerialBackend(batch_clients=bad)

    def test_capability_flags(self):
        backend = BatchedBackend()
        assert backend.streaming_updates
        assert backend.batched_execution
