"""Tests for sharded streaming aggregation.

The acceptance bar: for the same seed, ``num_shards=N`` produces
*bit-identical* global parameters and ``TrainingHistory`` to
``num_shards=1`` on the serial and thread backends — including under forced
out-of-order completion — for shard-capable defenses, while non-shardable
defenses (krum) fall back cleanly to the single-fold path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.defenses  # noqa: F401 - populate the defense registry
from repro.defenses.base import AggregationContext, MeanAggregator
from repro.defenses.krum import Krum
from repro.defenses.registry import make_defense
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine import backends as backends_mod
from repro.federated.engine.plan import ClientUpdate
from repro.federated.engine.sharding import ShardedAggregator, maybe_shard, plan_shards
from repro.federated.server import FederatedServer, ServerConfig


class TestPlanShards:
    def test_covers_dim_contiguously(self):
        slices = plan_shards(103, 4)
        assert slices[0].start == 0
        assert slices[-1].stop == 103
        for prev, nxt in zip(slices, slices[1:], strict=False):
            assert prev.stop == nxt.start

    def test_sizes_differ_by_at_most_one(self):
        sizes = [s.stop - s.start for s in plan_shards(103, 4)]
        assert len(sizes) == 4
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 103

    def test_never_more_shards_than_params(self):
        assert len(plan_shards(3, 8)) == 3

    def test_single_shard_is_whole_vector(self):
        assert plan_shards(10, 1) == (slice(0, 10),)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(0, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 0)


def _stream(aggregator, updates, global_params, order=None, weights=None):
    ctx = AggregationContext(rng=np.random.default_rng(9))
    state = aggregator.begin_round(ctx)
    for slot in order if order is not None else range(updates.shape[0]):
        aggregator.accumulate(
            state,
            ClientUpdate(
                client_id=100 + slot,
                slot=slot,
                update=updates[slot],
                num_examples=weights[slot] if weights is not None else 0,
            ),
        )
    return aggregator.finalize(state, global_params, ctx)


SHARDABLE = ["mean", "weighted_mean", "norm_bound", "dp", "signsgd"]


class TestShardedAggregator:
    @pytest.mark.parametrize("name", SHARDABLE)
    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_bit_identical_to_single_fold(self, name, num_shards, rng):
        updates = rng.normal(size=(6, 53)) * rng.uniform(0.1, 30.0, size=(6, 1))
        global_params = rng.normal(size=53)
        weights = [3, 1, 4, 1, 5, 9]
        plain = _stream(make_defense(name), updates, global_params, weights=weights)
        sharded = ShardedAggregator(make_defense(name), num_shards)
        try:
            out = _stream(sharded, updates, global_params, weights=weights)
        finally:
            sharded.close()
        np.testing.assert_array_equal(out, plain)

    @pytest.mark.parametrize("name", SHARDABLE)
    def test_out_of_order_accumulation_is_reordered(self, name, rng):
        updates = rng.normal(size=(6, 40))
        global_params = rng.normal(size=40)
        sharded = ShardedAggregator(make_defense(name), 3)
        try:
            shuffled = _stream(
                sharded, updates, global_params, order=[5, 2, 0, 4, 1, 3]
            )
        finally:
            sharded.close()
        plain = _stream(make_defense(name), updates, global_params)
        np.testing.assert_array_equal(shuffled, plain)

    def test_more_shards_than_params_still_exact(self, rng):
        updates = rng.normal(size=(4, 3))
        sharded = ShardedAggregator(MeanAggregator(), 16)
        try:
            out = _stream(sharded, updates, np.zeros(3))
        finally:
            sharded.close()
        np.testing.assert_array_equal(out, _stream(MeanAggregator(), updates, np.zeros(3)))

    def test_consecutive_rounds_on_one_aggregator(self, rng):
        updates = rng.normal(size=(5, 24))
        sharded = ShardedAggregator(MeanAggregator(), 4)
        try:
            first = _stream(sharded, updates, np.zeros(24))
            second = _stream(sharded, updates, np.zeros(24))
        finally:
            sharded.close()
        np.testing.assert_array_equal(first, second)

    def test_concurrent_rounds_do_not_interfere(self, rng):
        # Round state lives on the AggregationState (like every aggregator),
        # so two in-flight rounds on one instance must both finalize exactly.
        updates_a = rng.normal(size=(4, 24))
        updates_b = rng.normal(size=(4, 24))
        sharded = ShardedAggregator(MeanAggregator(), 3)
        try:
            ctx_a = AggregationContext(rng=np.random.default_rng(1))
            ctx_b = AggregationContext(rng=np.random.default_rng(2))
            state_a = sharded.begin_round(ctx_a)
            state_b = sharded.begin_round(ctx_b)
            for slot in range(4):
                sharded.accumulate(
                    state_a,
                    ClientUpdate(client_id=slot, slot=slot, update=updates_a[slot]),
                )
                sharded.accumulate(
                    state_b,
                    ClientUpdate(client_id=slot, slot=slot, update=updates_b[slot]),
                )
            out_b = sharded.finalize(state_b, np.zeros(24), ctx_b)
            out_a = sharded.finalize(state_a, np.zeros(24), ctx_a)
        finally:
            sharded.close()
        np.testing.assert_array_equal(out_a, _stream(MeanAggregator(), updates_a, np.zeros(24)))
        np.testing.assert_array_equal(out_b, _stream(MeanAggregator(), updates_b, np.zeros(24)))

    def test_matrix_protocol_delegates_to_inner(self, rng):
        updates = rng.normal(size=(5, 12))
        sharded = ShardedAggregator(MeanAggregator(), 2)
        ctx = AggregationContext(rng=np.random.default_rng(0))
        out = sharded(updates, np.zeros(12), ctx)
        np.testing.assert_array_equal(out, updates.mean(axis=0))
        sharded.close()

    def test_fold_error_surfaces_at_finalize_without_deadlock(self, rng):
        # Shard queues are bounded (backpressure); a worker whose fold raises
        # must keep draining to its sentinel so the coordinator never blocks,
        # and the error must surface at finalize.
        class Exploding(MeanAggregator):
            def fold_slice(self, acc, segment, aux):
                raise RuntimeError("boom")

        sharded = ShardedAggregator(Exploding(), 2)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                _stream(sharded, rng.normal(size=(8, 16)), np.zeros(16))
        finally:
            sharded.close()

    def test_close_releases_abandoned_round(self, rng):
        # A round that errors out of the server loop is never finalized;
        # close() must still stop its workers promptly.
        sharded = ShardedAggregator(MeanAggregator(), 2)
        state = sharded.begin_round(AggregationContext(rng=np.random.default_rng(0)))
        sharded.accumulate(
            state, ClientUpdate(client_id=0, slot=0, update=rng.normal(size=8))
        )
        assert state.data is not None and state.data.threads
        sharded.close()
        for thread in state.data.threads:
            assert not thread.is_alive()

    def test_close_is_idempotent(self):
        sharded = ShardedAggregator(MeanAggregator(), 2)
        sharded.close()
        sharded.close()

    def test_rejects_non_shardable_defense(self):
        with pytest.raises(ValueError, match="not shardable"):
            ShardedAggregator(Krum(), 4)

    def test_rejects_double_wrap(self):
        with pytest.raises(ValueError, match="already-sharded"):
            ShardedAggregator(ShardedAggregator(MeanAggregator(), 2), 2)

    def test_maybe_shard_wraps_only_when_useful(self):
        mean = MeanAggregator()
        krum = Krum()
        assert maybe_shard(mean, 1) is mean
        assert maybe_shard(krum, 4) is krum  # single-fold fallback
        wrapped = maybe_shard(mean, 4)
        assert isinstance(wrapped, ShardedAggregator)
        assert maybe_shard(wrapped, 4) is wrapped
        wrapped.close()


def _make_server(
    federation,
    factory,
    backend,
    num_shards=1,
    aggregator=None,
    rounds=3,
):
    config = ServerConfig(
        rounds=rounds,
        participation="uniform:sample_rate=0.5",
        seed=2,
        num_shards=num_shards,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
    )
    return FederatedServer(
        federation,
        factory,
        FedAvg(),
        config,
        aggregator=aggregator,
        backend=backend,
    )


def _fingerprint(history):
    return [
        (
            r.round_idx,
            tuple(r.sampled_clients),
            tuple(r.compromised_sampled),
            r.mean_benign_loss,
            r.update_norm,
        )
        for r in history.records
    ]


class TestServerSharding:
    def test_config_rejects_non_positive_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            ServerConfig(num_shards=0)

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_streaming_only_defense_fails_fast_with_streaming_off(
        self, small_federation, image_model_factory, num_shards
    ):
        # weighted_mean has no matrix path; streaming="off" must fail at
        # server construction (sharded or not), not mid-round.
        config = ServerConfig(
            rounds=1, participation="uniform:sample_rate=0.5", seed=2,
            streaming="off", num_shards=num_shards,
        )
        with pytest.raises(ValueError, match="only supports the streaming"):
            FederatedServer(
                small_federation,
                image_model_factory,
                FedAvg(),
                config,
                aggregator=make_defense("weighted_mean"),
            )

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize(
        "make_aggregator",
        [MeanAggregator, lambda: make_defense("weighted_mean")],
        ids=["mean", "weighted_mean"],
    )
    def test_shards_match_unsharded(
        self, small_federation, image_model_factory, backend, make_aggregator
    ):
        sharded = _make_server(
            small_federation, image_model_factory, backend,
            num_shards=4, aggregator=make_aggregator(),
        )
        plain = _make_server(
            small_federation, image_model_factory, backend,
            num_shards=1, aggregator=make_aggregator(),
        )
        assert isinstance(sharded.aggregator, ShardedAggregator)
        sharded.run()
        plain.run()
        sharded.close()
        plain.close()
        np.testing.assert_array_equal(sharded.global_params, plain.global_params)
        assert _fingerprint(sharded.history) == _fingerprint(plain.history)

    def test_non_shardable_defense_falls_back_cleanly(
        self, small_federation, image_model_factory
    ):
        krum = Krum(num_malicious=1)
        sharded = _make_server(
            small_federation, image_model_factory, "serial",
            num_shards=4, aggregator=krum,
        )
        # The config asks for shards, but krum buffers: no wrapper installed.
        assert sharded.aggregator is krum
        plain = _make_server(
            small_federation, image_model_factory, "serial",
            num_shards=1, aggregator=Krum(num_malicious=1),
        )
        sharded.run()
        plain.run()
        np.testing.assert_array_equal(sharded.global_params, plain.global_params)
        assert _fingerprint(sharded.history) == _fingerprint(plain.history)


class TestShardedOutOfOrderCompletion:
    """Reversed thread-backend completion order must not change sharded results."""

    @pytest.fixture()
    def reversed_completion(self, monkeypatch):
        """Delay benign tasks so higher sampled slots finish first."""
        real = backends_mod.run_benign_task
        completion_order: list[int] = []

        def delayed(ctx, task, global_params, model):
            result = real(ctx, task, global_params, model)
            # Later slots get shorter sleeps: slot 0 finishes last.
            time.sleep(0.06 * (4 - min(task.order, 3)))
            completion_order.append(task.order)
            return result

        monkeypatch.setattr(backends_mod, "run_benign_task", delayed)
        return completion_order

    def test_thread_sharded_matches_serial_unsharded(
        self, small_federation, image_model_factory, reversed_completion
    ):
        threaded = _make_server(
            small_federation, image_model_factory, "thread",
            num_shards=4, rounds=2,
        )
        # Enough workers that every benign task runs concurrently and the
        # injected delays fully control completion order.
        threaded.backend.max_workers = 8
        threaded.run()
        threaded.close()

        serial = _make_server(
            small_federation, image_model_factory, "serial",
            num_shards=1, rounds=2,
        )
        serial.run()

        # The injected delays really did reverse at least one round's
        # completion order — otherwise this test is vacuous.
        assert reversed_completion != sorted(reversed_completion)
        np.testing.assert_array_equal(threaded.global_params, serial.global_params)
        assert _fingerprint(threaded.history) == _fingerprint(serial.history)
