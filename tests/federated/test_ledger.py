"""Tests for the communication ledger.

Two layers: the :class:`CommunicationLedger` counter container itself
(recording, queries, serialisation), and the end-to-end accounting — every
run carries a model-channel ledger that is identical across backends, the
distributed backend meters its real wire frames into the same ledger, and
the ledger survives the results JSON round trip and renders via
``repro ledger``.
"""

from __future__ import annotations

import json
from functools import lru_cache

import pytest

from repro.experiments.results import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.federated.engine.ledger import SETUP_ROUND, CommunicationLedger


def base_scenario(**overrides) -> Scenario:
    scenario = Scenario(
        dataset="femnist",
        num_clients=8,
        samples_per_client=10,
        num_classes=4,
        image_size=8,
        hidden=(16,),
        rounds=2,
        sample_rate=1.0,
        local={"epochs": 1, "batch_size": 8, "lr": 0.05},
        seed=5,
        attack="none",
        max_test_samples=8,
    )
    return scenario.with_overrides(**overrides) if overrides else scenario


@lru_cache(maxsize=None)
def run_result(**overrides) -> ExperimentResult:
    return base_scenario(**dict(overrides)).run()


class TestCommunicationLedger:
    def _sample(self) -> CommunicationLedger:
        ledger = CommunicationLedger()
        ledger.record(
            round_idx=0, channel="model", link="client:1", direction="down",
            header_bytes=10, payload_bytes=100, dtype="float64",
        )
        ledger.record(
            round_idx=0, channel="model", link="client:1", direction="up",
            header_bytes=12, payload_bytes=100,
        )
        ledger.record(
            round_idx=SETUP_ROUND, channel="wire", link="worker:42",
            direction="up", header_bytes=5, dtype="float32",
        )
        return ledger

    def test_record_aggregates_per_key(self):
        ledger = CommunicationLedger()
        for _ in range(3):
            ledger.record(
                round_idx=1, channel="model", link="client:0",
                direction="down", header_bytes=2, payload_bytes=8,
            )
        assert len(ledger) == 1
        assert ledger.totals() == {
            "frames": 3, "header_bytes": 6, "payload_bytes": 24, "bytes": 30,
        }

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            CommunicationLedger().record(
                round_idx=0, channel="model", link="client:0", direction="sideways"
            )

    def test_queries(self):
        ledger = self._sample()
        assert len(ledger) == 3
        assert ledger.channels() == ["model", "wire"]
        assert ledger.rounds() == [SETUP_ROUND, 0]
        assert ledger.dtypes == {"model": "float64", "wire": "float32"}
        assert ledger.totals() == {
            "frames": 3, "header_bytes": 27, "payload_bytes": 200, "bytes": 227,
        }

    def test_round_rows_aggregate_links(self):
        ledger = self._sample()
        ledger.record(
            round_idx=0, channel="model", link="client:2", direction="down",
            header_bytes=10, payload_bytes=100,
        )
        rows = ledger.round_rows()
        down = next(
            r for r in rows
            if r["round"] == 0 and r["channel"] == "model" and r["direction"] == "down"
        )
        assert down["links"] == 2
        assert down["frames"] == 2
        assert down["payload_bytes"] == 200
        # Rows come out sorted: setup traffic first.
        assert rows[0]["round"] == SETUP_ROUND

    def test_dict_roundtrip_is_lossless(self):
        ledger = self._sample()
        clone = CommunicationLedger.from_dict(
            json.loads(json.dumps(ledger.to_dict()))
        )
        assert clone.to_dict() == ledger.to_dict()


class TestRunLedger:
    def test_every_run_carries_a_model_ledger(self):
        ledger = run_result().ledger
        assert ledger is not None
        assert ledger.channels() == ["model"]
        assert ledger.rounds() == [0, 1]
        assert ledger.dtypes == {"model": "float64"}
        totals = ledger.totals()
        # 8 clients × 2 rounds × (params down + update up).
        assert totals["frames"] == 32
        assert totals["payload_bytes"] > 0
        down = sum(
            row["frames"] for row in ledger.round_rows() if row["direction"] == "down"
        )
        up = sum(
            row["frames"] for row in ledger.round_rows() if row["direction"] == "up"
        )
        assert down == up == 16

    def test_model_channel_is_backend_independent(self):
        serial = run_result().ledger
        threaded = run_result(backend="thread", backend_workers=3).ledger
        assert threaded.to_dict() == serial.to_dict()

    def test_distributed_run_meters_wire_frames(self):
        ledger = run_result(backend="distributed", backend_workers=2).ledger
        assert ledger.channels() == ["model", "wire"]
        # Setup frames (HELLO/CONFIGURE) land outside any round.
        assert SETUP_ROUND in ledger.rounds()
        wire_rows = [r for r in ledger.round_rows() if r["channel"] == "wire"]
        directions = {r["direction"] for r in wire_rows}
        assert directions == {"down", "up"}
        assert ledger.dtypes["wire"] == "float64"
        # The model channel still matches the serial run exactly.
        model_entries = [
            e for e in ledger.to_dict()["entries"] if e["channel"] == "model"
        ]
        assert model_entries == run_result().ledger.to_dict()["entries"]

    def test_fp32_wire_dtype_shows_in_ledger(self):
        # backend_kwargs is a dict (unhashable), so this cell skips the cache.
        ledger = base_scenario(
            backend="distributed",
            backend_workers=2,
            backend_kwargs={"wire_dtype": "float32"},
        ).run().ledger
        assert ledger.dtypes == {"model": "float32", "wire": "float32"}
        fp64_payload = run_result().ledger.totals()["payload_bytes"]
        assert ledger.totals()["payload_bytes"] < fp64_payload

    def test_result_json_roundtrip_keeps_ledger(self):
        result = run_result()
        reloaded = ExperimentResult.from_json(result.to_json())
        assert reloaded.ledger is not None
        assert reloaded.ledger.to_dict() == result.ledger.to_dict()

    def test_result_dict_without_ledger_loads_as_none(self):
        data = json.loads(run_result().to_json())
        data.pop("ledger")
        reloaded = ExperimentResult.from_dict(data)
        assert reloaded.ledger is None


class TestLedgerCli:
    def test_ledger_table_from_results_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "results.json"
        out.write_text(run_result().to_json())
        assert main(["ledger", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "model" in printed
        assert "down" in printed and "up" in printed
        assert "float64" in printed

    def test_ledger_accepts_bare_ledger_dict(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "ledger.json"
        out.write_text(json.dumps(run_result().ledger.to_dict()))
        assert main(["ledger", str(out)]) == 0
        assert "model" in capsys.readouterr().out

    def test_ledger_errors_without_entries(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "empty.json"
        out.write_text(json.dumps({"hello": 1}))
        assert main(["ledger", str(out)]) == 2
        assert "ledger" in capsys.readouterr().err.lower()
