"""Unit tests for the training history container."""

from __future__ import annotations

import pytest

from repro.federated.history import RoundRecord, TrainingHistory


def _record(idx, acc=None):
    return RoundRecord(
        round_idx=idx,
        sampled_clients=[0, 1],
        compromised_sampled=[],
        mean_benign_loss=1.0 / (idx + 1),
        update_norm=0.5,
        benign_accuracy=acc,
    )


class TestTrainingHistory:
    def test_append_and_len(self):
        history = TrainingHistory()
        history.append(_record(0))
        history.append(_record(1))
        assert len(history) == 2

    def test_series_extraction(self):
        history = TrainingHistory()
        for i in range(3):
            history.append(_record(i, acc=0.1 * i))
        assert history.series("benign_accuracy") == [0.0, 0.1, 0.2]
        assert history.series("round_idx") == [0, 1, 2]

    def test_last(self):
        history = TrainingHistory()
        history.append(_record(0))
        history.append(_record(5))
        assert history.last().round_idx == 5

    def test_last_on_empty_raises(self):
        with pytest.raises(IndexError):
            TrainingHistory().last()
