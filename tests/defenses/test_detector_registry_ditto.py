"""Unit tests for the statistical detector, defense registry, and Ditto."""

from __future__ import annotations

import numpy as np
import pytest

from repro.defenses.base import AggregationContext, Aggregator
from repro.defenses.detector import StatisticalDetector
from repro.defenses.ditto import DittoPersonalizer
from repro.defenses.registry import available_defenses, make_defense
from repro.nn.serialization import flatten_params


class TestStatisticalDetector:
    def test_requires_at_least_one_feature(self):
        with pytest.raises(ValueError):
            StatisticalDetector(use_norm=False, use_angle=False)

    def test_flags_obvious_norm_outlier(self, rng):
        benign = rng.normal(0, 0.1, size=(30, 20))
        attacker = rng.normal(0, 0.1, size=20) * 500
        updates = np.vstack([benign, attacker])
        flags = StatisticalDetector().flag_updates(updates)
        assert flags[-1]
        assert flags[:-1].sum() <= 2

    def test_blended_update_is_not_flagged(self, rng):
        benign = rng.normal(0, 0.1, size=(30, 20))
        stealthy = benign.mean(axis=0) + rng.normal(0, 0.1, size=20)
        updates = np.vstack([benign, stealthy])
        flags = StatisticalDetector().flag_updates(updates)
        assert not flags[-1]

    def test_aggregate_drops_flagged_updates(self, rng):
        benign = rng.normal(0, 0.1, size=(20, 10))
        attacker = np.full(10, 100.0)
        updates = np.vstack([benign, attacker])
        out = StatisticalDetector()(updates, np.zeros(10), AggregationContext(rng=rng))
        assert np.linalg.norm(out - benign.mean(axis=0)) < 1.0

    def test_all_flagged_falls_back_to_median(self, rng):
        # Two wildly different updates: flagging logic may flag none or all;
        # the aggregate must still be finite and well-defined.
        updates = np.stack([np.full(5, 1000.0), np.full(5, -1000.0)])
        out = StatisticalDetector()(updates, np.zeros(5), AggregationContext(rng=rng))
        assert np.all(np.isfinite(out))

    def test_detection_report_metrics(self, rng):
        benign = rng.normal(0, 0.1, size=(30, 20))
        attacker = rng.normal(0, 0.1, size=20) * 500
        updates = np.vstack([benign, attacker])
        mask = np.zeros(31, dtype=bool)
        mask[-1] = True
        report = StatisticalDetector().detection_report(updates, mask)
        assert report["recall"] == pytest.approx(1.0)
        assert 0.0 <= report["false_positive_rate"] <= 1.0


class TestRegistry:
    def test_all_known_defenses_available(self):
        names = available_defenses()
        for expected in ("mean", "krum", "median", "trimmed_mean", "norm_bound",
                         "dp", "rlr", "signsgd", "flare", "crfl", "detector"):
            assert expected in names

    def test_make_defense_returns_aggregator(self):
        for name in available_defenses():
            assert isinstance(make_defense(name), Aggregator)

    def test_make_defense_forwards_kwargs(self):
        krum = make_defense("krum", num_malicious=3, multi=2)
        assert krum.num_malicious == 3 and krum.multi == 2

    def test_unknown_defense_raises(self):
        with pytest.raises(ValueError):
            make_defense("does-not-exist")


class TestDitto:
    def test_personalize_moves_toward_local_data(self, image_model_factory, small_federation, rng):
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        ditto = DittoPersonalizer(epochs=2, lr=0.05, proximal_mu=0.1, batch_size=8)
        personal = ditto.personalize(model, global_params, small_federation.client(0).train, rng)
        assert personal.shape == global_params.shape
        assert not np.allclose(personal, global_params)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            DittoPersonalizer(epochs=0)
