"""Unit tests for the robust-aggregation defenses."""

from __future__ import annotations

import numpy as np
import pytest

import repro.defenses  # noqa: F401 - populate the defense registry
from repro.defenses.base import AggregationContext, Aggregator, MeanAggregator, clip_to_norm
from repro.defenses.crfl import CRFL
from repro.defenses.dp import DPAggregator
from repro.defenses.flare import FLARE
from repro.defenses.krum import Krum
from repro.defenses.median import CoordinateMedian
from repro.defenses.norm_bound import NormBound
from repro.defenses.registry import make_defense
from repro.defenses.rlr import RobustLearningRate
from repro.defenses.signsgd import SignSGDAggregator
from repro.defenses.trimmed_mean import TrimmedMean
from repro.defenses.weighted_mean import WeightedMeanAggregator
from repro.federated.engine.plan import ClientUpdate
from repro.registry import DEFENSES


@pytest.fixture()
def benign_updates(rng):
    """A cluster of similar benign updates."""
    base = rng.normal(size=40)
    return np.stack([base + rng.normal(0, 0.1, size=40) for _ in range(6)])


@pytest.fixture()
def outlier_update(rng):
    return rng.normal(size=40) * 50.0


GLOBAL = np.zeros(40)


def _ctx():
    return AggregationContext(rng=np.random.default_rng(0))


class TestMeanAggregator:
    def test_matches_numpy_mean(self, benign_updates):
        out = MeanAggregator()(benign_updates, GLOBAL, _ctx())
        np.testing.assert_allclose(out, benign_updates.mean(axis=0))

    def test_rejects_empty_round(self):
        with pytest.raises(ValueError):
            MeanAggregator()(np.zeros((0, 4)), np.zeros(4), _ctx())

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            MeanAggregator()(np.zeros(4), np.zeros(4), _ctx())


class TestKrum:
    def test_selects_central_update_over_outlier(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        out = Krum(num_malicious=1, multi=1)(updates, GLOBAL, _ctx())
        distances_to_benign = np.linalg.norm(benign_updates - out, axis=1)
        assert distances_to_benign.min() < np.linalg.norm(outlier_update - out)

    def test_multi_krum_averages_selected(self, benign_updates):
        out = Krum(num_malicious=0, multi=len(benign_updates))(benign_updates, GLOBAL, _ctx())
        np.testing.assert_allclose(out, benign_updates.mean(axis=0), atol=1e-12)

    def test_single_update_returned_unchanged(self, rng):
        update = rng.normal(size=(1, 10))
        np.testing.assert_allclose(Krum()(update, np.zeros(10), _ctx()), update[0])

    def test_scores_lower_for_central_points(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        scores = Krum(num_malicious=1).scores(updates)
        assert scores[-1] > scores[:-1].max()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Krum(num_malicious=-1)
        with pytest.raises(ValueError):
            Krum(multi=0)


class TestMedianAndTrimmedMean:
    def test_median_ignores_single_outlier(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        out = CoordinateMedian()(updates, GLOBAL, _ctx())
        assert np.linalg.norm(out - benign_updates.mean(axis=0)) < 1.0

    def test_trimmed_mean_removes_extremes(self):
        updates = np.array([[0.0], [1.0], [2.0], [3.0], [100.0]])
        out = TrimmedMean(trim_fraction=0.2)(updates, np.zeros(1), _ctx())
        assert out[0] == pytest.approx(2.0)

    def test_trimmed_mean_falls_back_to_mean_when_trim_zero(self, benign_updates):
        out = TrimmedMean(trim_fraction=0.0)(benign_updates, GLOBAL, _ctx())
        np.testing.assert_allclose(out, benign_updates.mean(axis=0))

    def test_trimmed_mean_invalid_fraction(self):
        with pytest.raises(ValueError):
            TrimmedMean(trim_fraction=0.5)


class TestNormBoundAndDP:
    def test_norm_bound_clips_large_updates(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        bounded = NormBound(max_norm=1.0)(updates, GLOBAL, _ctx())
        unbounded = MeanAggregator()(updates, GLOBAL, _ctx())
        assert np.linalg.norm(bounded) < np.linalg.norm(unbounded)

    def test_norm_bound_keeps_small_updates_exact(self, rng):
        updates = rng.normal(size=(4, 10)) * 1e-3
        out = NormBound(max_norm=10.0)(updates, np.zeros(10), _ctx())
        np.testing.assert_allclose(out, updates.mean(axis=0))

    def test_dp_adds_noise(self, benign_updates):
        clean = DPAggregator(clip_norm=10.0, noise_multiplier=0.0)(benign_updates, GLOBAL, _ctx())
        noisy = DPAggregator(clip_norm=10.0, noise_multiplier=1.0)(benign_updates, GLOBAL, _ctx())
        assert not np.allclose(clean, noisy)

    def test_dp_clipping_bounds_each_contribution(self, outlier_update):
        updates = np.stack([outlier_update, outlier_update])
        out = DPAggregator(clip_norm=1.0, noise_multiplier=0.0)(updates, GLOBAL, _ctx())
        assert np.linalg.norm(out) <= 1.0 + 1e-9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            NormBound(max_norm=0.0)
        with pytest.raises(ValueError):
            DPAggregator(clip_norm=-1.0)
        with pytest.raises(ValueError):
            DPAggregator(noise_multiplier=-0.1)


class TestRLR:
    def test_flips_coordinates_without_agreement(self):
        # Three clients agree on coordinate 0, disagree on coordinate 1.
        updates = np.array([[1.0, 1.0], [1.0, -1.0], [1.0, 1.0], [1.0, -1.0]])
        out = RobustLearningRate(threshold=3)(updates, np.zeros(2), _ctx())
        mean = updates.mean(axis=0)
        assert out[0] == pytest.approx(mean[0])
        assert out[1] == pytest.approx(-mean[1])

    def test_full_agreement_is_plain_mean(self, benign_updates):
        positive = np.abs(benign_updates)
        out = RobustLearningRate(threshold_fraction=0.9)(positive, GLOBAL, _ctx())
        np.testing.assert_allclose(out, positive.mean(axis=0))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RobustLearningRate(threshold=0)
        with pytest.raises(ValueError):
            RobustLearningRate(threshold_fraction=0.0)


class TestSignSGD:
    def test_output_is_sign_vote_scaled(self):
        updates = np.array([[1.0, -2.0], [3.0, -1.0], [-0.5, -4.0]])
        out = SignSGDAggregator(step_size=0.1)(updates, np.zeros(2), _ctx())
        np.testing.assert_allclose(out, [0.1, -0.1])

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            SignSGDAggregator(step_size=0.0)


class TestWeightedMean:
    def _stream_weighted(self, updates, weights, ctx=None):
        agg = WeightedMeanAggregator()
        state = agg.begin_round(ctx or _ctx())
        for slot, weight in enumerate(weights):
            agg.accumulate(
                state,
                ClientUpdate(
                    client_id=slot, slot=slot, update=updates[slot],
                    num_examples=weight,
                ),
            )
        return agg.finalize(state, GLOBAL, ctx)

    def test_weights_by_example_count(self, benign_updates):
        weights = [3, 1, 4, 1, 5, 9]
        out = self._stream_weighted(benign_updates, weights)
        expected = (
            np.sum([w * u for w, u in zip(weights, benign_updates, strict=True)], axis=0)
            / sum(weights)
        )
        np.testing.assert_allclose(out, expected)

    def test_uniform_weights_match_mean(self, benign_updates):
        out = self._stream_weighted(benign_updates, [7] * len(benign_updates))
        np.testing.assert_allclose(out, benign_updates.mean(axis=0))

    def test_unknown_example_counts_degrade_to_uniform(self, benign_updates):
        # num_examples == 0 means "unknown" and contributes weight 1.0.
        known = self._stream_weighted(benign_updates, [1] * len(benign_updates))
        unknown = self._stream_weighted(benign_updates, [0] * len(benign_updates))
        np.testing.assert_array_equal(unknown, known)

    def test_matrix_path_raises(self, benign_updates):
        with pytest.raises(ValueError, match="streaming"):
            WeightedMeanAggregator()(benign_updates, GLOBAL, _ctx())

    def test_registered_as_streaming_and_shardable(self):
        agg = make_defense("weighted_mean")
        assert isinstance(agg, WeightedMeanAggregator)
        assert agg.streaming and agg.shardable


class TestFLARE:
    def test_trust_scores_sum_to_one(self, benign_updates):
        weights = FLARE().trust_scores(benign_updates)
        assert weights.sum() == pytest.approx(1.0)

    def test_outlier_gets_least_trust(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        weights = FLARE().trust_scores(updates)
        assert weights[-1] == weights.min()

    def test_aggregate_downweights_outlier(self, benign_updates, outlier_update):
        updates = np.vstack([benign_updates, outlier_update])
        flare_out = FLARE()(updates, GLOBAL, _ctx())
        mean_out = MeanAggregator()(updates, GLOBAL, _ctx())
        benign_mean = benign_updates.mean(axis=0)
        assert np.linalg.norm(flare_out - benign_mean) < np.linalg.norm(mean_out - benign_mean)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            FLARE(temperature=0.0)


class TestCRFL:
    def test_clips_resulting_model_norm(self, rng):
        updates = rng.normal(size=(3, 20)) * 100
        global_params = rng.normal(size=20) * 100
        out = CRFL(param_clip=1.0, noise_std=0.0)(updates, global_params, _ctx())
        assert np.linalg.norm(global_params + out) <= 1.0 + 1e-9

    def test_noise_perturbs_model(self, benign_updates):
        a = CRFL(param_clip=100.0, noise_std=0.0)(benign_updates, GLOBAL, _ctx())
        b = CRFL(param_clip=100.0, noise_std=0.1)(benign_updates, GLOBAL, _ctx())
        assert not np.allclose(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CRFL(param_clip=0.0)
        with pytest.raises(ValueError):
            CRFL(noise_std=-1.0)


class TestLegacyGeneratorShim:
    def test_bare_generator_call_is_rejected(self, benign_updates):
        with pytest.raises(TypeError, match="AggregationContext.from_rng"):
            MeanAggregator()(benign_updates, GLOBAL, np.random.default_rng(0))


def _stream(aggregator, updates, global_params, ctx, order=None):
    """Push a matrix through the streaming protocol in the given slot order."""
    state = aggregator.begin_round(ctx)
    for slot in order if order is not None else range(updates.shape[0]):
        aggregator.accumulate(
            state,
            ClientUpdate(client_id=100 + slot, slot=slot, update=updates[slot]),
        )
    return aggregator.finalize(state, global_params, ctx)


class TestStreamingProtocol:
    """Every registered defense must round-trip the streaming protocol
    bit-identically to its matrix ``aggregate`` — with no per-defense code
    beyond the opt-in streaming implementations."""

    STREAMING = {"mean", "weighted_mean", "norm_bound", "dp", "signsgd"}

    def test_streaming_flags(self):
        flagged = {
            name for name in DEFENSES.names() if make_defense(name).streaming
        }
        assert flagged == self.STREAMING

    def test_every_streaming_defense_is_shardable(self):
        # The streaming folds are all elementwise given their prepare_update
        # precompute, so each one also supports the sharded worker-pool fold.
        shardable = {
            name for name in DEFENSES.names() if make_defense(name).shardable
        }
        assert shardable == self.STREAMING

    # weighted_mean has no matrix path (example counts only travel on
    # ClientUpdate); its streaming equivalences are pinned separately below.
    @pytest.mark.parametrize(
        "name", sorted(set(DEFENSES.names()) - {"weighted_mean"})
    )
    def test_matches_matrix_path_bitwise(self, name, rng):
        updates = rng.normal(size=(7, 24))
        global_params = rng.normal(size=24)
        matrix = make_defense(name)(updates, global_params, _ctx())
        streamed = _stream(make_defense(name), updates, global_params, _ctx())
        np.testing.assert_array_equal(streamed, matrix)

    @pytest.mark.parametrize("name", sorted(DEFENSES.names()))
    def test_out_of_order_accumulation_is_reordered(self, name, rng):
        updates = rng.normal(size=(6, 16))
        global_params = rng.normal(size=16)
        in_order = _stream(make_defense(name), updates, global_params, _ctx())
        shuffled = _stream(
            make_defense(name), updates, global_params, _ctx(),
            order=[5, 2, 0, 4, 1, 3],
        )
        np.testing.assert_array_equal(shuffled, in_order)

    def test_streaming_defenses_keep_o_param_dim_state(self, rng):
        # In-order accumulation must fold immediately: nothing pending, and
        # the running state is one vector, not a growing buffer.
        updates = rng.normal(size=(5, 8))
        agg = MeanAggregator()
        state = agg.begin_round(_ctx())
        for slot in range(5):
            agg.accumulate(state, ClientUpdate(client_id=slot, slot=slot, update=updates[slot]))
            assert not state.pending
            assert isinstance(state.data, np.ndarray) and state.data.shape == (8,)
        assert state.count == 5

    def test_duplicate_slot_rejected(self, rng):
        agg = MeanAggregator()
        state = agg.begin_round(_ctx())
        agg.accumulate(state, ClientUpdate(client_id=0, slot=0, update=np.ones(4)))
        with pytest.raises(ValueError, match="duplicate"):
            agg.accumulate(state, ClientUpdate(client_id=1, slot=0, update=np.ones(4)))

    def test_finalize_with_missing_slot_rejected(self):
        agg = MeanAggregator()
        state = agg.begin_round(_ctx())
        agg.accumulate(state, ClientUpdate(client_id=2, slot=2, update=np.ones(4)))
        with pytest.raises(ValueError, match="never arrived"):
            agg.finalize(state, np.zeros(4))

    def test_finalize_error_lists_every_gap(self):
        agg = MeanAggregator()
        state = agg.begin_round(_ctx())
        for slot in (1, 3):
            agg.accumulate(state, ClientUpdate(client_id=slot, slot=slot, update=np.ones(4)))
        with pytest.raises(ValueError, match=r"\[0, 2\] never arrived"):
            agg.finalize(state, np.zeros(4))

    def test_finalize_with_missing_trailing_slots_rejected(self):
        # A dropped highest slot leaves nothing pending; the check needs the
        # round size, which the server's context always carries.
        ctx = AggregationContext(
            rng=np.random.default_rng(0), round_idx=0, sampled_clients=(10, 11, 12)
        )
        agg = MeanAggregator()
        state = agg.begin_round(ctx)
        for slot in (0, 1):
            agg.accumulate(state, ClientUpdate(client_id=10 + slot, slot=slot, update=np.ones(4)))
        with pytest.raises(ValueError, match="only 2 updates"):
            agg.finalize(state, np.zeros(4))

    def test_finalize_empty_round_rejected(self):
        agg = MeanAggregator()
        with pytest.raises(ValueError, match="empty round"):
            agg.finalize(agg.begin_round(_ctx()), np.zeros(4))

    def test_noise_consumption_matches_matrix_path(self, benign_updates):
        # Defenses drawing rng noise must consume the stream identically in
        # both protocols, or seeded runs would diverge by path.
        for factory in (
            lambda: NormBound(max_norm=0.5, noise_std=0.3),
            lambda: DPAggregator(clip_norm=0.5, noise_multiplier=0.7),
        ):
            matrix = factory()(benign_updates, GLOBAL, _ctx())
            streamed = _stream(factory(), benign_updates, GLOBAL, _ctx())
            np.testing.assert_array_equal(streamed, matrix)

    def test_subclass_overriding_aggregate_loses_streaming_flag(self):
        class Doubled(MeanAggregator):
            def aggregate(self, updates, global_params, ctx):
                return 2.0 * updates.mean(axis=0)

        assert Doubled.streaming is False
        # ... but the buffering fallback routes streaming calls through the
        # subclass's own matrix math.
        updates = np.arange(8, dtype=np.float64).reshape(2, 4)
        streamed = _stream(Doubled(), updates, np.zeros(4), _ctx())
        np.testing.assert_array_equal(streamed, 2.0 * updates.mean(axis=0))

    def test_subclass_redeclaring_streaming_keeps_it(self):
        class StillStreaming(MeanAggregator):
            streaming = True

            def aggregate(self, updates, global_params, ctx):
                return updates.mean(axis=0)

        assert StillStreaming.streaming is True


class TestClipToNorm:
    def test_matches_matrix_clipping_bitwise(self, rng):
        updates = rng.normal(size=(9, 33)) * rng.uniform(0.1, 40.0, size=(9, 1))
        max_norm = 2.5
        norms = np.linalg.norm(updates, axis=1, keepdims=True)
        matrix = updates * np.minimum(1.0, max_norm / np.clip(norms, 1e-12, None))
        for i in range(updates.shape[0]):
            np.testing.assert_array_equal(clip_to_norm(updates[i], max_norm), matrix[i])

    def test_zero_vector_is_safe(self):
        np.testing.assert_array_equal(clip_to_norm(np.zeros(5), 1.0), np.zeros(5))

    def test_small_updates_unchanged_in_value(self, rng):
        v = rng.normal(size=12) * 1e-3
        np.testing.assert_array_equal(clip_to_norm(v, 10.0), v * np.minimum(1.0, 10.0 / np.linalg.norm(v[None, :], axis=1)))


class TestBaseAggregator:
    def test_matrix_protocol_requires_implementation(self):
        with pytest.raises(NotImplementedError):
            Aggregator()(np.ones((2, 3)), np.zeros(3), _ctx())
