"""Unit and round-trip tests for the declarative Scenario spec."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import Scenario
from repro.federated.client import LocalTrainingConfig
from repro.federated.history import TrainingHistory


def tiny_scenario(**overrides) -> Scenario:
    base = dict(
        num_clients=8,
        samples_per_client=12,
        num_classes=4,
        image_size=12,
        alpha=0.3,
        rounds=2,
        sample_rate=0.5,
        attack="collapois",
        compromised_fraction=0.2,
        trojan_epochs=2,
        seed=3,
        max_test_samples=12,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCompatibilityAlias:
    def test_experiment_config_is_scenario(self):
        assert ExperimentConfig is Scenario
        assert isinstance(ExperimentConfig(), Scenario)


class TestComponentSpecs:
    def test_spec_string_splits_into_name_and_kwargs(self):
        scenario = Scenario(defense="krum:num_malicious=2,multi=3")
        assert scenario.defense == "krum"
        assert scenario.defense_kwargs == {"num_malicious": 2, "multi": 3}

    def test_tuple_spec(self):
        scenario = Scenario(defense=("dp", {"clip_norm": 2.0}))
        assert scenario.defense == "dp"
        assert scenario.defense_kwargs == {"clip_norm": 2.0}

    def test_spec_kwargs_merge_over_existing_kwargs(self):
        scenario = Scenario(
            defense="krum:multi=3", defense_kwargs={"num_malicious": 2, "multi": 1}
        )
        assert scenario.defense_kwargs == {"num_malicious": 2, "multi": 3}

    def test_attack_and_algorithm_specs(self):
        scenario = Scenario(
            attack="collapois:poison_fraction=0.25",
            algorithm="feddc:drift_lr=0.4",
            compromised_fraction=0.1,
        )
        assert scenario.attack == "collapois"
        assert scenario.attack_kwargs == {"poison_fraction": 0.25}
        assert scenario.algorithm == "feddc"
        assert scenario.algorithm_kwargs == {"drift_lr": 0.4}

    def test_backend_spec_maps_max_workers(self):
        scenario = Scenario(backend="thread:max_workers=4")
        assert scenario.backend == "thread"
        assert scenario.backend_workers == 4

    def test_backend_spec_rejects_unknown_kwargs(self):
        # Backend specs may carry constructor kwargs (backend_kwargs) now;
        # unknown ones are still rejected at scenario construction.
        with pytest.raises(ValueError, match="does not accept"):
            Scenario(backend="thread:frobnicate=1")

    def test_backend_spec_routes_extra_kwargs_to_backend_kwargs(self):
        scenario = Scenario(backend="distributed:connect='127.0.0.1:7001'")
        assert scenario.backend == "distributed"
        assert scenario.backend_kwargs == {"connect": "127.0.0.1:7001"}
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_local_dict_coerced_to_config(self):
        scenario = Scenario(local={"epochs": 2, "batch_size": 4})
        assert scenario.local == LocalTrainingConfig(epochs=2, batch_size=4)

    def test_local_dict_unknown_key(self):
        with pytest.raises(ValueError, match="unknown local-training key"):
            Scenario(local={"epohcs": 2})

    def test_override_to_new_component_resets_stale_kwargs(self):
        scenario = Scenario(defense="dp:clip_norm=2.0,noise_multiplier=0.002")
        switched = scenario.with_overrides(defense="median")
        assert switched.defense_kwargs == {}
        respecced = scenario.with_overrides(defense="krum:multi=3")
        assert respecced.defense_kwargs == {"multi": 3}

    def test_override_keeps_explicit_kwargs(self):
        scenario = Scenario(defense="dp:clip_norm=2.0")
        kept = scenario.with_overrides(defense="krum", defense_kwargs={"multi": 2})
        assert kept.defense_kwargs == {"multi": 2}

    def test_sentiment_model_replacement_drops_image_model_kwargs(self):
        scenario = Scenario(dataset="sentiment", model="lenet:fc_width=32")
        assert scenario.model == "text"
        assert scenario.model_kwargs == {}

    def test_compound_literal_in_spec_string_is_json_canonical(self):
        # kwargs are canonicalised to their JSON form (tuples -> lists) so a
        # scenario equals its own JSON round-trip.
        scenario = Scenario(model="mlp:hidden=(32,16)")
        assert scenario.model_kwargs == {"hidden": [32, 16]}
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_text_model_requires_text_dataset(self):
        with pytest.raises(ValueError, match="requires\\s+a text dataset"):
            Scenario(dataset="femnist", model="text")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "cifar"},
            {"algorithm": "fedprox"},
            {"attack": "badnets"},
            {"defense": "magic"},
            {"trigger": "sticker"},
            {"backend": "gpu"},
            {"model": "resnet"},
        ],
    )
    def test_unknown_components_fail_with_available_list(self, kwargs):
        with pytest.raises(ValueError, match="available:"):
            Scenario(**kwargs)

    def test_unknown_component_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'collapois'"):
            Scenario(attack="collapois2", compromised_fraction=0.1)

    def test_streaming_only_defense_rejects_streaming_off(self):
        # Fail at configuration time, not after a round of client training.
        with pytest.raises(ValueError, match="only supports the streaming"):
            Scenario(defense="weighted_mean", streaming="off")
        assert Scenario(defense="weighted_mean", streaming="auto").defense == "weighted_mean"

    def test_num_shards_must_be_positive_int(self):
        with pytest.raises(ValueError, match="num_shards"):
            Scenario(num_shards=0)
        with pytest.raises(ValueError, match="num_shards"):
            Scenario(num_shards=2.5)

    def test_num_shards_round_trips(self):
        scenario = Scenario(num_shards=4)
        assert Scenario.from_dict(scenario.to_dict()).num_shards == 4

    def test_participation_spec_normalizes_and_validates(self):
        scenario = Scenario(participation="churn:availability=0.7")
        assert scenario.participation == "churn"
        assert scenario.participation_kwargs == {"availability": 0.7}
        with pytest.raises(ValueError, match="available:"):
            Scenario(participation="poisson")

    def test_population_spec_normalizes_and_validates(self):
        scenario = Scenario(population="synthetic:cache_size=16")
        assert scenario.population == "synthetic"
        assert scenario.population_kwargs == {"cache_size": 16}
        with pytest.raises(ValueError, match="available:"):
            Scenario(population="trace")

    def test_aggregation_mode_validation(self):
        assert Scenario(aggregation_mode="buffered_async:buffer_size=4").rounds
        with pytest.raises(ValueError, match="aggregation_mode"):
            Scenario(aggregation_mode="warp")
        with pytest.raises(ValueError, match="buffered_async"):
            Scenario(aggregation_mode="buffered_async:bogus=1")
        with pytest.raises(ValueError, match="secure aggregation"):
            Scenario(aggregation_mode="buffered_async", secure_aggregation=True)
        with pytest.raises(ValueError, match="streaming"):
            Scenario(aggregation_mode="buffered_async", streaming="off")

    def test_population_changes_data_signature(self):
        eager = Scenario()
        lazy = Scenario(population="synthetic")
        assert eager.data_signature() != lazy.data_signature()

    def test_sentiment_normalization_is_explicit_and_identical(self):
        scenario = Scenario(dataset="sentiment", num_classes=10)
        assert scenario.num_classes == 2
        assert scenario.model in {"text", "mlp"}
        assert Scenario(dataset="sentiment", model="lenet").model == "text"
        # the normalised form round-trips without re-normalisation surprises
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestJsonRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        scenario = tiny_scenario(
            defense="krum:num_malicious=1",
            local=LocalTrainingConfig(epochs=2, batch_size=4),
            eval_every=1,
            clip_bound=1.5,
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_json_round_trip_is_lossless(self):
        scenario = tiny_scenario(hidden=(32, 16))
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.hidden == (32, 16)

    def test_save_load(self, tmp_path):
        scenario = tiny_scenario()
        path = tmp_path / "scenario.json"
        scenario.save(path)
        assert Scenario.load(path) == scenario

    def test_unknown_key_rejected_with_suggestion(self):
        data = tiny_scenario().to_dict()
        data["allpha"] = 0.4
        del data["alpha"]
        with pytest.raises(ValueError, match=r"allpha \(did you mean 'alpha'\?\)"):
            Scenario.from_dict(data)

    def test_rerun_of_loaded_scenario_is_bit_identical(self):
        scenario = tiny_scenario(eval_every=1, defense="norm_bound:max_norm=2.0")
        first = run_experiment(scenario)
        restored = Scenario.from_json(scenario.to_json())
        second = run_experiment(restored)
        assert first.history.records == second.history.records
        assert first.history.to_dict() == second.history.to_dict()
        assert first.evaluation.as_dict() == second.evaluation.as_dict()

    def test_participation_fields_round_trip(self):
        scenario = tiny_scenario(
            attack="none",
            population="synthetic:cache_size=16,eval_clients=4",
            participation="tiered:sample_rate=0.5,jitter=0.1",
            aggregation_mode="buffered_async:buffer_size=2",
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.population_kwargs == {"cache_size": 16, "eval_clients": 4}
        assert restored.participation_kwargs == {"sample_rate": 0.5, "jitter": 0.1}
        assert restored.aggregation_mode == "buffered_async:buffer_size=2"

    def test_legacy_sample_rate_form_round_trips(self):
        # Scenarios without the new fields (pre-participation-API JSON) load
        # and re-serialise unchanged; sample_rate remains the uniform sugar.
        data = tiny_scenario(sample_rate=0.4).to_dict()
        assert data["participation"] is None
        restored = Scenario.from_dict(data)
        assert restored.sample_rate == 0.4
        assert restored.to_dict() == data

    def test_history_serialization_round_trip(self):
        history = run_experiment(tiny_scenario(eval_every=2)).history
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored.records == history.records

    def test_history_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown round-record key"):
            TrainingHistory.from_dict({"records": [{"bogus": 1}]})


class TestRun:
    def test_scenario_run_matches_run_experiment(self):
        scenario = tiny_scenario()
        assert (
            scenario.run().history.records
            == run_experiment(scenario).history.records
        )

    def test_population_scenario_runs_end_to_end(self):
        # A lazy population with churn + stragglers under buffered-async
        # aggregation: the full runner path (attack included) must work
        # without ever materialising more clients than the cache holds.
        scenario = tiny_scenario(
            num_clients=64,
            population="synthetic:cache_size=8,eval_clients=4",
            participation="tiered:sample_rate=0.1,min_clients=3",
            aggregation_mode="buffered_async:buffer_size=2",
        )
        result = run_experiment(scenario)
        dataset = result.extras["dataset"]
        assert dataset.num_clients == 64
        assert dataset.cache_info()["size"] <= 8
        assert len(result.history) == 2
        assert all(
            "buffered_async" in r.extras for r in result.history.records
        )

    def test_population_uniform_run_is_deterministic(self):
        scenario = tiny_scenario(
            attack="none",
            num_clients=32,
            population="synthetic:cache_size=8,eval_clients=4",
        )
        a = run_experiment(scenario)
        b = run_experiment(scenario)
        assert a.history.records == b.history.records
        assert a.evaluation.as_dict() == b.evaluation.as_dict()
