"""Smoke tests for the per-figure experiment drivers (tiny configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.attack_comparison import attack_comparison_sweep, baseline_sensitivity_sweep
from repro.experiments.client_level import client_cluster_analysis, label_similarity_analysis
from repro.experiments.defense_evaluation import compromised_fraction_sweep, defense_sweep
from repro.experiments.gradient_geometry import gradient_angle_analysis, stealth_angle_analysis
from repro.experiments.longevity import longevity_analysis
from repro.experiments.theory_figs import (
    alpha_to_bound,
    bound_approximation_error_sweep,
    bound_surface,
)


@pytest.fixture()
def sweep_config(tiny_config):
    return tiny_config.with_overrides(rounds=4, compromised_fraction=0.2, trojan_epochs=4)


class TestAttackComparison:
    def test_sweep_produces_row_per_combination(self, sweep_config):
        rows = attack_comparison_sweep(sweep_config, alphas=[0.3], attacks=["collapois", "dpois"])
        assert len(rows) == 2
        assert {row["attack"] for row in rows} == {"collapois", "dpois"}
        for row in rows:
            assert 0.0 <= row["benign_accuracy"] <= 1.0
            assert 0.0 <= row["attack_success_rate"] <= 1.0

    def test_baseline_sensitivity_rows(self, sweep_config):
        rows = baseline_sensitivity_sweep(
            sweep_config, alphas=[0.3], fractions=[0.2], attacks=["dpois"]
        )
        assert len(rows) == 1
        assert rows[0]["compromised_fraction"] == 0.2


class TestDefenseEvaluation:
    def test_defense_sweep_skips_inapplicable_for_metafed(self, sweep_config):
        config = sweep_config.with_overrides(algorithm="metafed", attack="collapois")
        rows = defense_sweep(config, alphas=[0.3], defenses={"mean": {}, "krum": {}})
        assert {row["defense"] for row in rows} == {"mean"}

    def test_compromised_fraction_sweep_topk(self, sweep_config):
        config = sweep_config.with_overrides(attack="collapois")
        rows = compromised_fraction_sweep(config, fractions=[0.2], top_k_percents=[25.0, 100.0],
                                          defense="mean")
        assert len(rows) == 2
        top25 = next(r for r in rows if r["top_k_percent"] == 25.0)
        overall = next(r for r in rows if r["top_k_percent"] == 100.0)
        assert top25["attack_success_rate"] >= overall["attack_success_rate"] - 1e-9


class TestGradientGeometry:
    def test_angle_analysis_columns(self, sweep_config):
        rows = gradient_angle_analysis(sweep_config, alphas=[0.3], attack="collapois")
        assert len(rows) == 1
        row = rows[0]
        assert row["collapois_malicious_angle_mean"] <= row["dpois_malicious_angle_mean"] + 1e-9
        assert row["beta_mean"] >= 0.0

    def test_stealth_analysis(self, sweep_config):
        rows = stealth_angle_analysis(sweep_config, psi_ranges=[(0.9, 1.0)])
        assert len(rows) == 1
        assert "malicious_angle_mean" in rows[0]


class TestTheoryFigures:
    def test_bound_surface_shapes(self):
        surface = bound_surface(resolution=5)
        assert surface["surface"].shape == (5, 5)
        assert np.all(surface["surface"] <= 1.0)

    def test_alpha_to_bound_monotone(self):
        rows = alpha_to_bound([0.01, 1.0, 100.0])
        fractions = [row["fraction"] for row in rows]
        assert fractions[0] <= fractions[1] <= fractions[2]

    def test_bound_approximation_error(self, sweep_config):
        rows = bound_approximation_error_sweep(sweep_config, alphas=[0.3])
        assert rows[0]["relative_error"] >= 0.0
        assert rows[0]["approximate_bound"] <= sweep_config.num_clients


class TestClientLevelAndLongevity:
    def test_client_cluster_analysis(self, sweep_config):
        config = sweep_config.with_overrides(attack="collapois")
        analysis = client_cluster_analysis(config)
        total = sum(members.size for members in analysis["clusters"].values())
        assert total == len(analysis["per_client_benign_accuracy"])

    def test_label_similarity_rows(self, sweep_config):
        config = sweep_config.with_overrides(attack="collapois")
        rows = label_similarity_analysis(config)
        assert {row["cluster"] for row in rows} >= {"top1%", "bottom"}
        for row in rows:
            assert 0.0 <= row["cosine_similarity"] <= 1.0 + 1e-9

    def test_longevity_series(self, sweep_config):
        series = longevity_analysis(sweep_config.with_overrides(rounds=4),
                                    attacks=["collapois"], eval_every=2)
        assert len(series["collapois"]) == 2
        assert all("attack_success_rate" in row for row in series["collapois"])
