"""Tests for Suite sweep grids: ordering, reuse, equivalence, round-trip."""

from __future__ import annotations

import pytest

from repro.experiments.attack_comparison import attack_comparison_sweep
from repro.experiments.longevity import RoundSeriesHook, longevity_analysis
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite


def tiny_scenario(**overrides) -> Scenario:
    base = dict(
        num_clients=8,
        samples_per_client=12,
        num_classes=4,
        image_size=12,
        alpha=0.3,
        rounds=2,
        sample_rate=0.5,
        attack="collapois",
        compromised_fraction=0.2,
        trojan_epochs=2,
        seed=3,
        max_test_samples=12,
    )
    base.update(overrides)
    return Scenario(**base)


class TestGrid:
    def test_grid_expands_in_axis_order(self):
        suite = Suite.grid(tiny_scenario(), attack=["dpois", "mrepl"], alpha=[0.1, 0.5])
        cells = suite.cells
        assert cells == [
            {"attack": "dpois", "alpha": 0.1},
            {"attack": "dpois", "alpha": 0.5},
            {"attack": "mrepl", "alpha": 0.1},
            {"attack": "mrepl", "alpha": 0.5},
        ]
        assert len(suite) == 4

    def test_grid_needs_axes(self):
        with pytest.raises(ValueError, match="at least one axis"):
            Suite.grid(tiny_scenario())

    def test_scenarios_resolve_overrides(self):
        suite = Suite.grid(tiny_scenario(), defense=["mean", "krum:num_malicious=1"])
        scenarios = suite.scenarios()
        assert [s.defense for s in scenarios] == ["mean", "krum"]
        assert scenarios[1].defense_kwargs == {"num_malicious": 1}

    def test_filter_drops_cells(self):
        suite = Suite.grid(
            tiny_scenario(), defense=["mean", "krum"], alpha=[0.1, 0.5]
        ).filter(lambda s: s.defense != "krum")
        assert len(suite) == 2
        assert all(s.defense == "mean" for s in suite)

    def test_filter_dropping_everything_leaves_zero_cells(self):
        suite = Suite.grid(tiny_scenario(), defense=["krum", "rlr"]).filter(
            lambda _s: False
        )
        assert len(suite) == 0
        assert suite.run() == []
        assert suite.rows("defense") == []

    def test_empty_grid_axis_means_zero_cells(self):
        assert len(Suite.grid(tiny_scenario(), alpha=[])) == 0
        assert len(Suite(tiny_scenario(), cells=[])) == 0
        # omitting cells entirely still means "run the base once"
        assert len(Suite(tiny_scenario())) == 1

    def test_iteration_yields_scenarios(self):
        suite = Suite.grid(tiny_scenario(), seed=range(3))
        assert [s.seed for s in suite] == [0, 1, 2]


class TestRun:
    def test_results_in_grid_order_with_shared_dataset(self):
        suite = Suite.grid(tiny_scenario(), attack=["none", "dpois"])
        results = suite.run()
        assert [cr.scenario.attack for cr in results] == ["none", "dpois"]
        # one dataset signature -> the same federation object is shared
        d0 = results[0].result.extras["dataset"]
        d1 = results[1].result.extras["dataset"]
        assert d0 is d1

    def test_shared_dataset_results_identical_to_rebuilt(self):
        suite = Suite.grid(tiny_scenario(), attack=["dpois", "mrepl"])
        shared = suite.run(reuse_datasets=True)
        rebuilt = suite.run(reuse_datasets=False)
        for a, b in zip(shared, rebuilt, strict=True):
            assert a.result.history.records == b.result.history.records
        assert rebuilt[0].result.extras["dataset"] is not rebuilt[1].result.extras["dataset"]

    def test_cell_workers_preserve_order_and_results(self):
        suite = Suite.grid(tiny_scenario(), attack=["none", "dpois", "mrepl"])
        serial = suite.run()
        threaded = suite.run(cell_workers=3)
        assert [cr.scenario.attack for cr in threaded] == ["none", "dpois", "mrepl"]
        for a, b in zip(serial, threaded, strict=True):
            assert a.result.history.records == b.result.history.records

    def test_backend_fanout_override(self):
        suite = Suite.grid(tiny_scenario(), alpha=[0.3])
        (cell,) = suite.run(backend="thread", backend_workers=2)
        assert cell.scenario.backend == "thread"
        assert cell.scenario.backend_workers == 2

    def test_hooks_factory_builds_per_cell_hooks(self):
        suite = Suite.grid(tiny_scenario(eval_every=1), attack=["collapois", "mrepl"])
        results = suite.run(hooks_factory=lambda _s: [RoundSeriesHook()])
        hooks = [cr.hooks[0] for cr in results]
        assert hooks[0] is not hooks[1]
        assert all(len(h.rows) == 2 for h in hooks)

    def test_rows_orders_fields_then_metrics(self):
        suite = Suite.grid(tiny_scenario(), attack=["dpois"])
        (row,) = suite.rows("attack", "alpha")
        assert list(row) == ["attack", "alpha", "benign_accuracy", "attack_success_rate"]

    def test_rejects_nonpositive_cell_workers(self):
        with pytest.raises(ValueError, match="cell_workers"):
            Suite.grid(tiny_scenario(), alpha=[0.3]).run(cell_workers=0)


class TestSweepEquivalence:
    def test_attack_comparison_matches_hand_rolled_loop(self):
        base = tiny_scenario()
        rows = attack_comparison_sweep(base, alphas=[0.3, 1.0], attacks=["dpois"])
        expected = []
        for attack in ["dpois"]:
            for alpha in [0.3, 1.0]:
                config = base.with_overrides(attack=attack, alpha=alpha)
                result = run_experiment(config)
                expected.append(
                    {
                        "attack": attack,
                        "alpha": alpha,
                        "algorithm": config.algorithm,
                        "benign_accuracy": result.benign_accuracy,
                        "attack_success_rate": result.attack_success_rate,
                    }
                )
        assert rows == expected

    def test_longevity_series_keyed_by_attack(self):
        series = longevity_analysis(
            tiny_scenario(), attacks=["collapois"], eval_every=1
        )
        assert set(series) == {"collapois"}
        assert [row["round"] for row in series["collapois"]] == [0, 1]


class TestSerialization:
    def test_grid_round_trip(self):
        suite = Suite.grid(
            tiny_scenario(),
            name="landscape",
            defense=["mean", ("krum", {"num_malicious": 1})],
            alpha=[0.3],
        )
        restored = Suite.from_json(suite.to_json())
        assert restored.name == "landscape"
        assert restored.base == suite.base
        assert [s.defense for s in restored] == [s.defense for s in suite]
        assert [s.defense_kwargs for s in restored] == [
            s.defense_kwargs for s in suite
        ]

    def test_explicit_cells_round_trip(self):
        suite = Suite(tiny_scenario(), cells=[{"alpha": 0.2}, {"alpha": 0.7}])
        restored = Suite.from_dict(suite.to_dict())
        assert restored.cells == suite.cells

    def test_save_load(self, tmp_path):
        suite = Suite.grid(tiny_scenario(), alpha=[0.2, 0.7])
        path = tmp_path / "suite.json"
        suite.save(path)
        assert Suite.load(path).cells == suite.cells

    def test_unknown_suite_key_rejected(self):
        with pytest.raises(ValueError, match="unknown suite key"):
            Suite.from_dict({"base": {}, "grdi": {}})

    def test_suite_requires_base(self):
        with pytest.raises(ValueError, match="'base'"):
            Suite.from_dict({"grid": {"alpha": [0.1]}})

    def test_cells_and_grid_mutually_exclusive(self):
        with pytest.raises(ValueError, match="either cells or grid"):
            Suite(tiny_scenario(), cells=[{}], grid={"alpha": [0.1]})
