"""Unit tests for experiment configuration and result formatting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, format_table
from repro.federated.history import RoundRecord, TrainingHistory
from repro.metrics.accuracy import ClientEvaluation


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.dataset == "femnist"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "cifar"},
            {"algorithm": "fedprox"},
            {"attack": "badnets"},
            {"compromised_fraction": -0.1},
            {"alpha": 0.0},
            {"attack": "collapois", "compromised_fraction": 0.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_sentiment_forces_binary_classes(self):
        config = ExperimentConfig(dataset="sentiment", num_classes=10)
        assert config.num_classes == 2
        assert config.model in {"text", "mlp"}
        lenet_config = ExperimentConfig(dataset="sentiment", model="lenet")
        assert lenet_config.model == "text"

    def test_with_overrides_creates_copy(self):
        base = ExperimentConfig(alpha=0.5)
        derived = base.with_overrides(alpha=5.0, attack="collapois")
        assert base.alpha == 0.5 and base.attack == "none"
        assert derived.alpha == 5.0 and derived.attack == "collapois"


class TestExperimentResult:
    def _result(self):
        evaluation = ClientEvaluation(np.array([0.9, 0.7]), np.array([0.8, 0.2]), [0, 1])
        history = TrainingHistory()
        history.append(
            RoundRecord(
                round_idx=0,
                sampled_clients=[0, 1],
                compromised_sampled=[],
                # Deliberately awkward floats: the JSON round-trip must be
                # bit-exact, not approximately equal.
                mean_benign_loss=0.1 + 0.2,
                update_norm=1.0 / 3.0,
                benign_accuracy=0.625,
            )
        )
        return ExperimentResult(
            config=ExperimentConfig(), evaluation=evaluation,
            history=history, compromised_ids=[5],
            extras={"server": object()},
        )

    def test_summary_fields(self):
        summary = self._result().summary()
        assert summary["benign_accuracy"] == pytest.approx(0.8)
        assert summary["attack_success_rate"] == pytest.approx(0.5)
        assert summary["num_compromised"] == 1.0

    def test_json_round_trip_is_lossless(self):
        result = self._result()
        reloaded = ExperimentResult.from_json(result.to_json())
        assert reloaded.to_dict() == result.to_dict()
        assert reloaded.config == result.config
        assert reloaded.summary() == result.summary()
        np.testing.assert_array_equal(
            reloaded.evaluation.benign_accuracy, result.evaluation.benign_accuracy
        )
        assert reloaded.history.records[0] == result.history.records[0]
        assert reloaded.compromised_ids == [5]
        assert reloaded.extras == {}  # live objects are not serialised

    def test_save_load_file_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        result.save(path)
        reloaded = ExperimentResult.load(path)
        assert reloaded.to_dict() == result.to_dict()
        # The payload is plain JSON with the documented top-level shape.
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "scenario", "summary", "evaluation", "compromised_ids", "history",
        }

    def test_from_dict_rejects_unknown_keys(self):
        data = self._result().to_dict()
        data["histori"] = data.pop("history")
        with pytest.raises(ValueError, match="histori"):
            ExperimentResult.from_dict(data)

    def test_from_dict_requires_scenario(self):
        data = self._result().to_dict()
        del data["scenario"]
        with pytest.raises(ValueError, match="scenario"):
            ExperimentResult.from_dict(data)

    def test_evaluation_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="benign_acuracy"):
            ClientEvaluation.from_dict({"benign_acuracy": [0.1]})


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_alignment_and_content(self):
        rows = [
            {"attack": "collapois", "asr": 0.912},
            {"attack": "dpois", "asr": 0.1},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4
        assert "collapois" in lines[2]
        assert "0.912" in table and "0.100" in table

    def test_column_selection(self):
        rows = [{"a": 1.0, "b": 2.0}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_explicit_column_absent_from_all_rows(self):
        # A requested column no row carries renders as empty cells padded to
        # the header width instead of crashing the width computation.
        rows = [{"a": 1.0}, {"a": 2.0}]
        table = format_table(rows, columns=["a", "missing_metric"])
        header, separator, *body = table.splitlines()
        assert "missing_metric" in header
        assert len({len(line) for line in (header, separator, *body)}) == 1
        for line in body:
            assert line.endswith(" " * len("missing_metric"))

    def test_all_columns_absent(self):
        table = format_table([{"a": 1}], columns=["x", "y"])
        header, _separator, body = table.splitlines()
        assert header.split(" | ") == ["x", "y"]
        assert body.replace("|", "").strip() == ""

    def test_explicit_empty_columns_list(self):
        # An explicitly empty selection is honoured (historically it silently
        # fell back to the row keys).
        table = format_table([{"a": 1}], columns=[])
        assert "a" not in table
