"""Unit tests for experiment configuration and result formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult, format_table
from repro.federated.history import TrainingHistory
from repro.metrics.accuracy import ClientEvaluation


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.dataset == "femnist"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "cifar"},
            {"algorithm": "fedprox"},
            {"attack": "badnets"},
            {"compromised_fraction": -0.1},
            {"alpha": 0.0},
            {"attack": "collapois", "compromised_fraction": 0.0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_sentiment_forces_binary_classes(self):
        config = ExperimentConfig(dataset="sentiment", num_classes=10)
        assert config.num_classes == 2
        assert config.model in {"text", "mlp"}
        lenet_config = ExperimentConfig(dataset="sentiment", model="lenet")
        assert lenet_config.model == "text"

    def test_with_overrides_creates_copy(self):
        base = ExperimentConfig(alpha=0.5)
        derived = base.with_overrides(alpha=5.0, attack="collapois")
        assert base.alpha == 0.5 and base.attack == "none"
        assert derived.alpha == 5.0 and derived.attack == "collapois"


class TestExperimentResult:
    def _result(self):
        evaluation = ClientEvaluation(np.array([0.9, 0.7]), np.array([0.8, 0.2]), [0, 1])
        return ExperimentResult(
            config=ExperimentConfig(), evaluation=evaluation,
            history=TrainingHistory(), compromised_ids=[5],
        )

    def test_summary_fields(self):
        summary = self._result().summary()
        assert summary["benign_accuracy"] == pytest.approx(0.8)
        assert summary["attack_success_rate"] == pytest.approx(0.5)
        assert summary["num_compromised"] == 1.0


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_alignment_and_content(self):
        rows = [
            {"attack": "collapois", "asr": 0.912},
            {"attack": "dpois", "asr": 0.1},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4
        assert "collapois" in lines[2]
        assert "0.912" in table and "0.100" in table

    def test_column_selection(self):
        rows = [{"a": 1.0, "b": 2.0}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]
