"""Smoke tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.results import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite


@pytest.fixture()
def tiny_scenario_path(tmp_path):
    Scenario(
        name="cli-smoke",
        num_clients=8,
        samples_per_client=12,
        num_classes=4,
        image_size=12,
        alpha=0.3,
        rounds=2,
        sample_rate=0.5,
        attack="collapois",
        compromised_fraction=0.2,
        trojan_epochs=2,
        seed=3,
        max_test_samples=12,
    ).save(tmp_path / "scenario.json")
    return tmp_path / "scenario.json"


class TestList:
    def test_list_families(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "defense" in out and "attack" in out and "backend" in out

    def test_list_family_members_with_params(self, capsys):
        assert main(["list", "defenses"]) == 0
        out = capsys.readouterr().out
        assert "krum" in out and "num_malicious=1" in out

    def test_unknown_family_fails_cleanly(self, capsys):
        assert main(["list", "gizmos"]) == 2
        assert "unknown component family" in capsys.readouterr().err


class TestRun:
    def test_run_prints_summary(self, tiny_scenario_path, capsys):
        assert main(["run", str(tiny_scenario_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-smoke" in out and "benign_accuracy" in out

    def test_run_with_overrides_and_out(self, tiny_scenario_path, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(
            [
                "run",
                str(tiny_scenario_path),
                "--set",
                "defense=norm_bound:max_norm=2.0",
                "--set",
                "rounds=1",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenario"]["defense"] == "norm_bound"
        assert payload["scenario"]["defense_kwargs"] == {"max_norm": 2.0}
        assert payload["scenario"]["rounds"] == 1
        assert len(payload["history"]["records"]) == 1
        assert "benign_accuracy" in payload["summary"]

    def test_out_file_reloads_as_experiment_result(
        self, tiny_scenario_path, tmp_path, capsys
    ):
        out_path = tmp_path / "results.json"
        assert main(["run", str(tiny_scenario_path), "--out", str(out_path)]) == 0
        result = ExperimentResult.load(out_path)
        assert isinstance(result.config, Scenario)
        assert result.config.name == "cli-smoke"
        assert len(result.history) == 2
        # Lossless: serialising the reloaded result reproduces the file.
        assert result.to_dict() == json.loads(out_path.read_text())

    def test_streaming_flag_is_applied(self, tiny_scenario_path, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(
            ["run", str(tiny_scenario_path), "--streaming", "off", "--out", str(out_path)]
        )
        assert rc == 0
        assert json.loads(out_path.read_text())["scenario"]["streaming"] == "off"

    def test_shards_flag_is_applied(self, tiny_scenario_path, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(
            ["run", str(tiny_scenario_path), "--shards", "4", "--out", str(out_path)]
        )
        assert rc == 0
        assert json.loads(out_path.read_text())["scenario"]["num_shards"] == 4

    def test_shards_flag_rejects_non_positive(self, tiny_scenario_path, capsys):
        assert main(["run", str(tiny_scenario_path), "--shards", "0"]) == 2
        assert "num_shards" in capsys.readouterr().err

    def test_list_defenses_shows_capabilities(self, capsys):
        assert main(["list", "defenses"]) == 0
        out = capsys.readouterr().out
        assert "caps" in out and "shardable" in out and "buffered" in out

    def test_list_defenses_shows_server_blind_capability(self, capsys):
        assert main(["list", "defenses"]) == 0
        lines = {
            line.split()[0]: line
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        }
        # Sum-folding defenses advertise secagg compatibility; inspection
        # defenses (requires_plaintext_updates) must not.
        for blind in ("mean", "weighted_mean", "norm_bound", "dp", "signsgd", "crfl"):
            assert "server-blind" in lines[blind], blind
        for sighted in ("krum", "median", "trimmed_mean", "rlr", "detector", "flare"):
            assert "server-blind" not in lines[sighted], sighted

    def test_secagg_flag_is_applied(self, tiny_scenario_path, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        rc = main(
            ["run", str(tiny_scenario_path), "--secagg", "--out", str(out_path)]
        )
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenario"]["secure_aggregation"] is True
        assert payload["ledger"]["totals"]["payload_bytes"] > 0

    def test_secagg_flag_rejects_inspection_defense(self, tiny_scenario_path, capsys):
        rc = main(["run", str(tiny_scenario_path), "--secagg", "--set", "defense=krum"])
        assert rc == 2
        assert "server-blind" in capsys.readouterr().err

    def test_run_rejects_unknown_scenario_key(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"allpha": 0.1}')
        assert main(["run", str(bad)]) == 2
        assert "did you mean 'alpha'" in capsys.readouterr().err

    def test_run_missing_file(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2


class TestSweep:
    def test_sweep_prints_rows(self, tmp_path, capsys):
        base = Scenario(
            num_clients=8,
            samples_per_client=12,
            num_classes=4,
            image_size=12,
            alpha=0.3,
            rounds=1,
            sample_rate=0.5,
            attack="collapois",
            compromised_fraction=0.2,
            trojan_epochs=2,
            seed=3,
            max_test_samples=12,
        )
        suite_path = tmp_path / "suite.json"
        Suite.grid(base, name="cli-sweep", defense=["mean", "median"]).save(suite_path)
        assert main(["sweep", str(suite_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-sweep" in out and "median" in out and "benign_accuracy" in out

    def test_sweep_out_results_reload_losslessly(self, tmp_path, capsys):
        base = Scenario(
            num_clients=8,
            samples_per_client=12,
            num_classes=4,
            image_size=12,
            alpha=0.3,
            rounds=1,
            sample_rate=0.5,
            seed=3,
            max_test_samples=12,
        )
        suite_path = tmp_path / "suite.json"
        out_path = tmp_path / "sweep_results.json"
        Suite.grid(base, name="cli-sweep", defense=["mean", "median"]).save(suite_path)
        assert main(["sweep", str(suite_path), "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert len(payload["results"]) == 2
        reloaded = [ExperimentResult.from_dict(r) for r in payload["results"]]
        assert [r.config.defense for r in reloaded] == ["mean", "median"]
        for result, raw in zip(reloaded, payload["results"], strict=True):
            assert result.to_dict() == raw
            assert result.summary()["rounds"] == 1.0


class TestListBackendCaps:
    def test_backends_show_capabilities_column(self, capsys):
        assert main(["list", "backends"]) == 0
        out = capsys.readouterr().out
        lines = {line.split()[0]: line for line in out.splitlines() if line.strip()}
        assert "caps" in lines["backend"]
        assert "streaming" in lines["serial"] and "processes" not in lines["serial"]
        assert "streaming" in lines["thread"]
        # The per-round-forked pool is the documented barrier path.
        assert "barrier" in lines["process"] and "processes" in lines["process"]
        assert "streaming" in lines["distributed"]
        assert "processes" in lines["distributed"]
        assert "multi-host" in lines["distributed"]
        # Cross-client stacked execution advertises itself as a capability.
        assert "batched" in lines["batched"]
        assert "streaming" in lines["batched"]
        assert "batched" not in lines["serial"]


class TestWorkerSubcommand:
    def test_worker_rejects_malformed_listen_address(self, capsys):
        assert main(["worker", "--listen", "127.0.0.1:notaport"]) == 2
        assert "host:port" in capsys.readouterr().err


class TestTrace:
    def test_telemetry_flag_records_and_trace_renders(
        self, tiny_scenario_path, tmp_path, capsys
    ):
        out_path = tmp_path / "results.json"
        rc = main(
            ["run", str(tiny_scenario_path), "--telemetry", "on", "--out", str(out_path)]
        )
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["scenario"]["telemetry"] is True
        assert payload["telemetry"]["version"] == 1
        assert payload["telemetry"]["spans"]
        capsys.readouterr()

        assert main(["trace", str(out_path)]) == 0
        report = capsys.readouterr().out
        assert "Per-round phase breakdown:" in report
        assert "client_train" in report
        assert "Metrics:" in report

        # A bare RunTelemetry dict (extracted by other tooling) renders too.
        bare = tmp_path / "telemetry.json"
        bare.write_text(json.dumps(payload["telemetry"]))
        assert main(["trace", str(bare), "--top", "1"]) == 0
        assert "Slowest 1 client-training task(s):" in capsys.readouterr().out

    def test_trace_without_telemetry_fails_cleanly(
        self, tiny_scenario_path, tmp_path, capsys
    ):
        out_path = tmp_path / "results.json"
        assert main(["run", str(tiny_scenario_path), "--out", str(out_path)]) == 0
        assert "telemetry" not in json.loads(out_path.read_text())
        capsys.readouterr()
        assert main(["trace", str(out_path)]) == 2
        assert "carries no telemetry" in capsys.readouterr().err

    def test_telemetry_off_is_the_default_and_explicit_off_wins(
        self, tiny_scenario_path, tmp_path, capsys
    ):
        out_path = tmp_path / "results.json"
        rc = main(
            ["run", str(tiny_scenario_path), "--telemetry", "off", "--out", str(out_path)]
        )
        assert rc == 0
        assert json.loads(out_path.read_text())["scenario"]["telemetry"] is False


class TestLedgerNotes:
    def test_absent_wire_channel_is_noted(self, tiny_scenario_path, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert main(["run", str(tiny_scenario_path), "--out", str(out_path)]) == 0
        capsys.readouterr()
        # A serial run meters only the logical model channel; the report
        # must say why 'wire' is missing rather than imply zero traffic.
        assert main(["ledger", str(out_path)]) == 0
        report = capsys.readouterr().out
        assert "model" in report
        assert "(channel 'wire' absent — recorded only by backend='distributed')" in report
        assert "channel 'model' absent" not in report
