"""Unit tests for the experiment runner building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.dba import DBAAttack
from repro.attacks.dpois import DPoisAttack
from repro.attacks.mrepl import MReplAttack
from repro.attacks.triggers import TokenTrigger, WarpingTrigger
from repro.core.collapois import CollaPoisAttack
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_attack,
    build_dataset,
    build_model_factory,
    build_trigger,
    run_experiment,
    select_compromised_clients,
)


class TestBuilders:
    def test_build_dataset_femnist(self, tiny_config):
        dataset, generator = build_dataset(tiny_config)
        assert dataset.num_clients == tiny_config.num_clients
        assert dataset.num_classes == tiny_config.num_classes

    def test_build_dataset_sentiment(self):
        config = ExperimentConfig(dataset="sentiment", num_clients=6, samples_per_client=20)
        dataset, generator = build_dataset(config)
        assert dataset.num_classes == 2
        assert dataset.input_shape == (generator.embedding_dim,)

    def test_model_factory_produces_identical_models(self, tiny_config):
        _, generator = build_dataset(tiny_config)
        factory = build_model_factory(tiny_config, generator)
        from repro.nn.serialization import flatten_params

        np.testing.assert_allclose(flatten_params(factory()), flatten_params(factory()))

    def test_model_factory_matches_input_shape(self, tiny_config):
        dataset, generator = build_dataset(tiny_config)
        model = build_model_factory(tiny_config, generator)()
        sample = dataset.client(0).train.x[:2]
        assert model.forward(sample).shape == (2, tiny_config.num_classes)

    def test_trigger_matches_modality(self, tiny_config):
        _, generator = build_dataset(tiny_config)
        assert isinstance(build_trigger(tiny_config, generator), WarpingTrigger)
        sentiment = ExperimentConfig(dataset="sentiment", num_clients=6, samples_per_client=20)
        _, text_gen = build_dataset(sentiment)
        assert isinstance(build_trigger(sentiment, text_gen), TokenTrigger)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("collapois", CollaPoisAttack),
            ("dpois", DPoisAttack),
            ("mrepl", MReplAttack),
            ("dba", DBAAttack),
        ],
    )
    def test_build_attack_types(self, tiny_config, name, cls):
        config = tiny_config.with_overrides(attack=name)
        assert isinstance(build_attack(config), cls)

    def test_build_attack_none(self, tiny_config):
        assert build_attack(tiny_config) is None


class TestSelectCompromised:
    def test_fraction_zero_gives_empty(self):
        assert select_compromised_clients(100, 0.0) == []

    def test_at_least_one_client(self):
        assert len(select_compromised_clients(100, 0.001)) == 1

    def test_count_matches_fraction(self):
        assert len(select_compromised_clients(100, 0.1, seed=3)) == 10

    def test_never_compromises_everyone(self):
        chosen = select_compromised_clients(5, 0.99)
        assert len(chosen) < 5

    def test_deterministic_for_seed(self):
        assert select_compromised_clients(50, 0.1, seed=4) == select_compromised_clients(50, 0.1, seed=4)


class TestRunExperiment:
    def test_clean_run_reaches_reasonable_accuracy(self, tiny_config):
        result = run_experiment(tiny_config)
        assert result.benign_accuracy > 0.5
        assert result.attack_success_rate < 0.3
        assert len(result.history) == tiny_config.rounds
        assert result.compromised_ids == []

    def test_attacked_run_excludes_compromised_from_evaluation(self, tiny_config):
        config = tiny_config.with_overrides(attack="collapois", rounds=4)
        result = run_experiment(config)
        assert result.compromised_ids
        assert not set(result.compromised_ids) & set(result.evaluation.client_ids)

    def test_eval_every_populates_history(self, tiny_config):
        config = tiny_config.with_overrides(attack="collapois", rounds=4, eval_every=2)
        result = run_experiment(config)
        evaluated = [r for r in result.history.records if r.benign_accuracy is not None]
        assert len(evaluated) == 2
