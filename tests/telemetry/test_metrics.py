"""Tests for the metrics registry: instrument kinds and thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import MetricsRegistry


class TestCounter:
    def test_increments_and_defaults_to_one(self):
        registry = MetricsRegistry()
        counter = registry.counter("rounds_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.to_dict() == {"type": "counter", "value": 5}

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="gauge"):
            MetricsRegistry().counter("rounds_total").inc(-1)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_keeps_last_written_value(self):
        gauge = MetricsRegistry().gauge("cache_size")
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7)
        assert gauge.to_dict() == {"type": "gauge", "value": 7}


class TestHistogram:
    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("fold_busy_s")
        for value in (2.0, 1.0, 4.0):
            hist.observe(value)
        assert hist.to_dict() == {
            "type": "histogram",
            "count": 3,
            "total": 7.0,
            "min": 1.0,
            "max": 4.0,
            "mean": 7.0 / 3,
        }

    def test_empty_histogram_has_no_mean(self):
        hist = MetricsRegistry().histogram("fold_busy_s")
        assert hist.mean is None
        assert hist.to_dict()["count"] == 0

    def test_concurrent_observations_all_land(self):
        hist = MetricsRegistry().histogram("h")
        threads = [
            threading.Thread(target=lambda: [hist.observe(1.0) for _ in range(200)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 800
        assert hist.total == 800.0


class TestRegistry:
    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("rounds_total")
        with pytest.raises(TypeError, match="rounds_total"):
            registry.gauge("rounds_total")
        with pytest.raises(TypeError, match="Counter"):
            registry.histogram("rounds_total")

    def test_to_dict_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.gauge("zeta").set(1)
        registry.counter("alpha").inc()
        assert list(registry.to_dict()) == ["alpha", "zeta"]
