"""Tests for the span tracer: nesting, thread-safety, wire merging."""

from __future__ import annotations

import contextlib
import threading
import time

import pytest

from repro.telemetry import RunTelemetry, Span, SpanTracer, maybe_span


class TestSpan:
    def test_duration_of_finished_span(self):
        span = Span(span_id=1, name="round", start=1.0, end=3.5)
        assert span.duration == 2.5

    def test_open_span_has_zero_duration(self):
        assert Span(span_id=1, name="round", start=1.0).duration == 0.0

    def test_to_dict_shape(self):
        span = Span(
            span_id=2, name="client_train", start=0.5, end=0.75,
            parent_id=1, attrs={"round": 0, "client": 3},
        )
        assert span.to_dict() == {
            "id": 2,
            "name": "client_train",
            "start": 0.5,
            "end": 0.75,
            "parent": 1,
            "attrs": {"round": 0, "client": 3},
        }


class TestSpanTracer:
    def test_now_is_epoch_relative_and_monotonic(self):
        tracer = SpanTracer()
        first = tracer.now()
        assert first >= 0.0
        assert tracer.now() >= first

    def test_nested_spans_record_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("round", round=0) as outer:
            with tracer.span("client_train", round=0, client=1) as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.spans()
        # Completion order: the inner span finishes (and is appended) first.
        assert [s.name for s in spans] == ["client_train", "round"]
        assert spans[0].parent_id == spans[1].span_id
        assert spans[1].parent_id is None
        assert all(s.end is not None and s.end >= s.start for s in spans)

    def test_span_closes_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("round", round=0):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.end is not None
        # The stack unwound: a fresh span is a root again, not a child of
        # the failed one.
        with tracer.span("round", round=1):
            pass
        assert tracer.spans()[-1].parent_id is None

    def test_nesting_is_per_thread(self):
        tracer = SpanTracer()
        worker_parent = []

        def worker():
            with tracer.span("client_train", client=7) as span:
                worker_parent.append(span.parent_id)

        with tracer.span("round", round=0):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The driver's open round span must not adopt pool-thread spans.
        assert worker_parent == [None]

    def test_concurrent_spans_all_recorded_with_unique_ids(self):
        tracer = SpanTracer()

        def worker(idx):
            for _ in range(25):
                with tracer.span("client_train", client=idx):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == 100
        assert len({s.span_id for s in spans}) == 100

    def test_add_span_records_external_timing_verbatim(self):
        tracer = SpanTracer()
        span = tracer.add_span(
            "client_train", 1.25, 2.5, round=0, client=4, wire=True
        )
        assert span.start == 1.25 and span.end == 2.5
        assert span.attrs == {"round": 0, "client": 4, "wire": True}
        assert tracer.spans() == [span]

    def test_to_dict_round_trips_through_json_types(self):
        tracer = SpanTracer()
        with tracer.span("round", round=0):
            pass
        (data,) = tracer.to_dict()
        assert data["name"] == "round"
        assert data["parent"] is None
        assert isinstance(data["start"], float) and isinstance(data["end"], float)


class TestMaybeSpan:
    def test_none_telemetry_yields_noop_context(self):
        ctx = maybe_span(None, "round", round=0)
        assert isinstance(ctx, contextlib.nullcontext)

    def test_live_telemetry_records_the_span(self):
        telemetry = RunTelemetry()
        with maybe_span(telemetry, "round", round=0):
            pass
        (span,) = telemetry.tracer.spans()
        assert span.name == "round" and span.attrs == {"round": 0}


class TestRunTelemetry:
    def test_clock_offset_keeps_per_link_minimum(self):
        telemetry = RunTelemetry()
        telemetry.record_clock_offset("worker:10", 5.0)
        telemetry.record_clock_offset("worker:10", 3.5)
        telemetry.record_clock_offset("worker:10", 4.0)
        telemetry.record_clock_offset("worker:11", -2.0)
        assert telemetry.clock_offsets == {"worker:10": 3.5, "worker:11": -2.0}

    def test_to_dict_carries_version_spans_metrics_offsets(self):
        telemetry = RunTelemetry()
        with telemetry.tracer.span("round", round=0):
            telemetry.metrics.counter("rounds_total").inc()
        telemetry.record_clock_offset("worker:9", 1.5)
        data = telemetry.to_dict()
        assert data["version"] == 1
        assert [s["name"] for s in data["spans"]] == ["round"]
        assert data["metrics"]["rounds_total"] == {"type": "counter", "value": 1}
        assert data["clock_offsets"] == {"worker:9": 1.5}

    def test_tracing_never_draws_rng(self):
        # Telemetry must be out-of-band: recording spans and metrics cannot
        # touch global RNG state (time.monotonic only).
        import numpy as np

        state_before = np.random.get_state()[1].tolist()
        telemetry = RunTelemetry()
        with telemetry.tracer.span("round", round=0):
            telemetry.metrics.histogram("h").observe(time.monotonic())
        assert np.random.get_state()[1].tolist() == state_before
