"""Tests for trace rendering: the dict-in, text-out ``repro trace`` layer."""

from __future__ import annotations

from repro.telemetry import (
    clock_offset_rows,
    metric_rows,
    phase_rows,
    phase_totals,
    render_trace,
    slowest_task_rows,
)


def _span(name, start, end, *, parent=None, **attrs):
    return {
        "id": 0, "name": name, "start": start, "end": end,
        "parent": parent, "attrs": attrs,
    }


def _sample_telemetry() -> dict:
    return {
        "version": 1,
        "spans": [
            _span("round", 0.0, 1.0, round=0),
            _span("client_train", 0.1, 0.5, round=0, client=2),
            _span("client_train", 0.1, 0.3, round=0, client=5),
            _span(
                "client_train", 0.2, 0.9, round=0, client=1,
                worker=1234, wire=True,
            ),
            _span("client_train", 0.1, 0.2, round=1, clients=8, batched=True),
            _span("client_train", 0.1, 0.45, round=1, tasks=8, processes=2),
            _span("aggregate", 0.9, 1.0, round=0),
            # Still-open spans must be ignored everywhere, never crash.
            _span("round", 1.0, None, round=1),
        ],
        "metrics": {
            "rounds_total": {"type": "counter", "value": 2},
            "shard.fold_busy_s": {
                "type": "histogram", "count": 4, "total": 2.0,
                "min": 0.25, "max": 1.0, "mean": 0.5,
            },
            "population.cache_size": {"type": "gauge", "value": 16},
            "empty_hist": {
                "type": "histogram", "count": 0, "total": 0.0,
                "min": None, "max": None, "mean": None,
            },
        },
        "clock_offsets": {"worker:1234": -13294.123456789},
    }


class TestPhaseRows:
    def test_groups_by_round_and_phase(self):
        rows = phase_rows(_sample_telemetry())
        by_key = {(r["round"], r["phase"]): r for r in rows}
        train0 = by_key[(0, "client_train")]
        assert train0["count"] == 3
        assert train0["total_s"] == round(0.4 + 0.2 + 0.7, 4)
        assert by_key[(0, "round")]["total_s"] == 1.0
        # The open round-1 span contributes nothing.
        assert (1, "round") not in by_key

    def test_within_a_round_phases_sort_by_total_descending(self):
        rows = [r for r in phase_rows(_sample_telemetry()) if r["round"] == 0]
        totals = [r["total_s"] for r in rows]
        assert totals == sorted(totals, reverse=True)


class TestPhaseTotals:
    def test_whole_run_seconds_per_phase(self):
        totals = phase_totals(_sample_telemetry())
        assert totals["round"] == 1.0
        assert totals["aggregate"] == round(0.1, 4)
        assert totals["client_train"] == round(0.4 + 0.2 + 0.7 + 0.1 + 0.35, 4)
        assert list(totals) == sorted(totals)


class TestSlowestTaskRows:
    def test_sorted_by_duration_and_labelled_by_execution_site(self):
        rows = slowest_task_rows(_sample_telemetry(), top=10)
        assert [r["seconds"] for r in rows] == sorted(
            (r["seconds"] for r in rows), reverse=True
        )
        where = {r["where"] for r in rows}
        assert "worker:1234" in where
        assert "driver" in where
        assert "driver (stack of 8)" in where
        assert "driver (2 forked procs)" in where
        stacked = next(r for r in rows if r["where"] == "driver (stack of 8)")
        assert stacked["client"] == "8 stacked"

    def test_top_limits_the_row_count(self):
        assert len(slowest_task_rows(_sample_telemetry(), top=2)) == 2


class TestMetricAndOffsetRows:
    def test_metric_rows_flatten_histograms(self):
        rows = {r["metric"]: r for r in metric_rows(_sample_telemetry())}
        assert rows["rounds_total"]["value"] == "2"
        assert "count=4" in rows["shard.fold_busy_s"]["value"]
        assert "mean=0.5000" in rows["shard.fold_busy_s"]["value"]
        assert rows["empty_hist"]["value"] == "count=0"

    def test_clock_offset_rows(self):
        (row,) = clock_offset_rows(_sample_telemetry())
        assert row["link"] == "worker:1234"
        assert row["offset_s"] == round(-13294.123456789, 6)


class TestRenderTrace:
    def test_report_contains_every_section(self):
        report = render_trace(_sample_telemetry(), top=3)
        assert "Per-round phase breakdown:" in report
        assert "Slowest 3 client-training task(s):" in report
        assert "Metrics:" in report
        assert "Worker clock offsets" in report
        assert "client_train" in report

    def test_sections_without_data_are_omitted(self):
        report = render_trace(
            {"version": 1, "spans": [_span("round", 0.0, 1.0, round=0)],
             "metrics": {}, "clock_offsets": {}}
        )
        assert "Per-round phase breakdown:" in report
        assert "Slowest" not in report
        assert "Metrics:" not in report
        assert "clock offsets" not in report
