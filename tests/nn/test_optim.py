"""Unit tests for the SGD optimiser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import make_mlp
from repro.nn.optim import SGD
from repro.nn.serialization import flatten_params


def _train_steps(model, optimiser, x, y, steps):
    criterion = SoftmaxCrossEntropy()
    losses = []
    for _ in range(steps):
        optimiser.zero_grad()
        logits = model.forward(x, training=True)
        losses.append(criterion.forward(logits, y))
        model.backward(criterion.backward())
        optimiser.step()
    return losses


class TestSGD:
    def test_invalid_hyperparameters(self):
        model = make_mlp(4, (), 2, seed=0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, weight_decay=-0.1)

    def test_loss_decreases_on_separable_data(self, rng):
        model = make_mlp(2, (8,), 2, seed=0)
        x = np.concatenate([rng.normal(-2, 0.5, size=(20, 2)), rng.normal(2, 0.5, size=(20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        losses = _train_steps(model, SGD(model, lr=0.1), x, y, steps=30)
        assert losses[-1] < losses[0] * 0.5

    def test_step_changes_parameters(self, rng):
        model = make_mlp(3, (4,), 2, seed=0)
        before = flatten_params(model).copy()
        x = rng.normal(size=(6, 3))
        y = rng.integers(0, 2, size=6)
        _train_steps(model, SGD(model, lr=0.05), x, y, steps=1)
        assert not np.allclose(flatten_params(model), before)

    def test_momentum_accelerates_descent(self, rng):
        x = np.concatenate([rng.normal(-1, 0.3, size=(20, 2)), rng.normal(1, 0.3, size=(20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        plain = make_mlp(2, (8,), 2, seed=0)
        with_momentum = make_mlp(2, (8,), 2, seed=0)
        plain_losses = _train_steps(plain, SGD(plain, lr=0.05), x, y, steps=25)
        momentum_losses = _train_steps(
            with_momentum, SGD(with_momentum, lr=0.05, momentum=0.9), x, y, steps=25
        )
        assert momentum_losses[-1] < plain_losses[-1]

    def test_weight_decay_shrinks_weights(self, rng):
        model = make_mlp(3, (), 2, seed=0)
        optimiser = SGD(model, lr=0.1, weight_decay=0.5)
        x = np.zeros((4, 3))
        y = np.array([0, 1, 0, 1])
        norm_before = np.linalg.norm(flatten_params(model))
        _train_steps(model, optimiser, x, y, steps=10)
        # With zero inputs the only drive on the weights is the decay term.
        weights_only = [p for n, p in model.named_parameters() if n.endswith(".W")]
        norm_after = np.linalg.norm(np.concatenate([w.ravel() for w in weights_only]))
        assert norm_after < norm_before
