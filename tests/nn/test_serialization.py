"""Unit and property-based tests for parameter (de)serialisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.model import make_lenet, make_mlp
from repro.nn.serialization import (
    flatten_grads,
    flatten_params,
    parameter_count,
    unflatten_params,
    vector_from_bytes,
    vector_to_bytes,
    wire_dtype,
)


class TestFlattenUnflatten:
    def test_roundtrip_identity_mlp(self):
        model = make_mlp(6, (5, 4), 3, seed=2)
        vector = flatten_params(model)
        unflatten_params(model, vector)
        np.testing.assert_allclose(flatten_params(model), vector)

    def test_roundtrip_identity_lenet(self):
        model = make_lenet(image_size=8, num_classes=3, conv_channels=(2, 3), fc_width=8, seed=2)
        vector = flatten_params(model)
        unflatten_params(model, vector)
        np.testing.assert_allclose(flatten_params(model), vector)

    def test_unflatten_writes_values(self):
        model = make_mlp(4, (3,), 2, seed=0)
        target = np.arange(parameter_count(model), dtype=np.float64)
        unflatten_params(model, target)
        np.testing.assert_allclose(flatten_params(model), target)

    def test_length_mismatch_raises(self):
        model = make_mlp(4, (3,), 2, seed=0)
        with pytest.raises(ValueError):
            unflatten_params(model, np.zeros(parameter_count(model) + 1))

    def test_flatten_grads_matches_parameter_count(self, rng):
        model = make_mlp(4, (3,), 2, seed=0)
        x = rng.normal(size=(5, 4))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        grads = flatten_grads(model)
        assert grads.shape == (parameter_count(model),)
        assert np.abs(grads).sum() > 0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_roundtrip_property(self, seed, scale):
        """Writing any vector into a model and reading it back is the identity."""
        model = make_mlp(5, (4,), 3, seed=0)
        rng = np.random.default_rng(seed)
        vector = rng.normal(0.0, scale, size=parameter_count(model))
        unflatten_params(model, vector)
        np.testing.assert_allclose(flatten_params(model), vector)


class TestWireDtypes:
    def test_float64_roundtrip_is_bitwise(self, rng):
        vector = rng.normal(size=257)
        data = vector_to_bytes(vector)
        assert len(data) == 257 * 8
        restored = vector_from_bytes(data)
        assert restored.dtype == np.float64
        np.testing.assert_array_equal(restored, vector)

    def test_float64_is_the_default_tag(self, rng):
        vector = rng.normal(size=16)
        assert vector_to_bytes(vector) == vector_to_bytes(vector, dtype="float64")

    def test_float32_roundtrip_halves_bytes_within_tolerance(self, rng):
        vector = rng.normal(size=257)
        data = vector_to_bytes(vector, dtype="float32")
        assert len(data) == 257 * 4
        restored = vector_from_bytes(data, dtype="float32")
        # The decoder always hands back float64 (the compute dtype)...
        assert restored.dtype == np.float64
        # ...carrying exactly the float32 rounding of the original values.
        np.testing.assert_array_equal(restored, vector.astype(np.float32).astype(np.float64))
        np.testing.assert_allclose(restored, vector, rtol=1e-6, atol=1e-7)

    def test_decoder_accepts_memoryview(self, rng):
        vector = rng.normal(size=32)
        view = memoryview(vector_to_bytes(vector, dtype="float32"))
        np.testing.assert_array_equal(
            vector_from_bytes(view, dtype="float32"),
            vector_from_bytes(bytes(view), dtype="float32"),
        )

    @pytest.mark.parametrize("tag", ["float16", "f8", "int64", ""])
    def test_unknown_dtype_tag_rejected(self, tag, rng):
        vector = rng.normal(size=4)
        with pytest.raises(ValueError, match="unknown wire dtype"):
            vector_to_bytes(vector, dtype=tag)
        with pytest.raises(ValueError, match="unknown wire dtype"):
            vector_from_bytes(vector.tobytes(), dtype=tag)
        with pytest.raises(ValueError, match="unknown wire dtype"):
            wire_dtype(tag)

    def test_misaligned_payload_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            vector_from_bytes(b"\x00" * 12)  # not a multiple of 8
        with pytest.raises(ValueError, match="aligned"):
            vector_from_bytes(b"\x00" * 6, dtype="float32")
