"""Unit tests for model containers and factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.model import Sequential, make_lenet, make_mlp, make_text_head
from repro.nn.serialization import flatten_params, parameter_count


class TestSequential:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_backward_roundtrip(self, rng):
        model = make_mlp(6, (8,), 3, seed=0)
        x = rng.normal(size=(4, 6))
        out = model.forward(x)
        assert out.shape == (4, 3)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_named_parameters_deterministic_order(self):
        model = make_mlp(4, (5,), 2, seed=0)
        names = [name for name, _ in model.named_parameters()]
        assert names == [name for name, _ in model.named_parameters()]
        assert all("." in name for name in names)

    def test_predict_and_predict_proba(self, rng):
        model = make_mlp(4, (), 3, seed=0)
        x = rng.normal(size=(5, 4))
        probs = model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-9)
        assert model.predict(x).shape == (5,)

    def test_clone_is_independent(self, rng):
        model = make_mlp(4, (5,), 2, seed=0)
        clone = model.clone()
        original = flatten_params(model).copy()
        for _, param in clone.named_parameters():
            param += 1.0
        np.testing.assert_allclose(flatten_params(model), original)
        assert not np.allclose(flatten_params(clone), original)


class TestFactories:
    def test_same_seed_gives_identical_models(self):
        a = flatten_params(make_mlp(10, (8,), 4, seed=7))
        b = flatten_params(make_mlp(10, (8,), 4, seed=7))
        np.testing.assert_allclose(a, b)

    def test_different_seed_gives_different_models(self):
        a = flatten_params(make_mlp(10, (8,), 4, seed=7))
        b = flatten_params(make_mlp(10, (8,), 4, seed=8))
        assert not np.allclose(a, b)

    def test_mlp_without_hidden_layers_is_linear(self):
        model = make_mlp(6, (), 3, seed=0)
        assert len([l for l in model.layers if isinstance(l, Linear)]) == 1
        assert not any(isinstance(l, ReLU) for l in model.layers)

    def test_lenet_forward_shape(self, rng):
        model = make_lenet(image_size=16, num_classes=7, seed=0)
        out = model.forward(rng.normal(size=(2, 1, 16, 16)))
        assert out.shape == (2, 7)

    def test_lenet_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            make_lenet(image_size=10)

    def test_text_head_forward_shape(self, rng):
        model = make_text_head(embedding_dim=12, hidden=16, num_classes=2, seed=0)
        out = model.forward(rng.normal(size=(3, 12)))
        assert out.shape == (3, 2)

    def test_parameter_count_positive(self):
        assert parameter_count(make_mlp(4, (5,), 2, seed=0)) == 4 * 5 + 5 + 5 * 2 + 2
