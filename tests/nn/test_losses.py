"""Unit tests for the loss functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import MSELoss, SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)

    def test_numerically_stable_for_large_logits(self):
        probs = softmax(np.array([[1e5, 0.0, -1e5]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_near_zero_loss(self):
        criterion = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0], [0.0, 100.0, 0.0]])
        targets = np.array([0, 1])
        assert criterion.forward(logits, targets) < 1e-6

    def test_uniform_prediction_loss_is_log_k(self):
        criterion = SoftmaxCrossEntropy()
        logits = np.zeros((4, 5))
        targets = np.array([0, 1, 2, 3])
        assert criterion.forward(logits, targets) == pytest.approx(np.log(5), rel=1e-6)

    def test_gradient_matches_numerical(self, rng):
        criterion = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 0, 3])
        criterion.forward(logits, targets)
        analytic = criterion.backward()
        numeric = np.zeros_like(logits)
        eps = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus, minus = logits.copy(), logits.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                numeric[i, j] = (
                    SoftmaxCrossEntropy().forward(plus, targets)
                    - SoftmaxCrossEntropy().forward(minus, targets)
                ) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_rejects_mismatched_shapes(self):
        criterion = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            criterion.forward(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()


class TestMSELoss:
    def test_zero_for_identical_inputs(self, rng):
        x = rng.normal(size=(3, 4))
        assert MSELoss().forward(x, x.copy()) == pytest.approx(0.0)

    def test_value_and_gradient(self):
        loss = MSELoss()
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert loss.forward(pred, target) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.backward(), [[1.0, 2.0]])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))
