"""Bitwise equivalence of the client-stacked kernels against their serial
counterparts.

Every test here asserts ``assert_array_equal`` — not ``allclose``.  The whole
point of the batched execution path is that stacking clients into a leading
array dimension changes *nothing* about each client's arithmetic (see the
batched-kernel notes in :mod:`repro.nn.layers`), and these tests are the
ground truth for that claim at the kernel level; the federated-level pinned
tests in ``tests/federated/test_batched.py`` build on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated.client import (
    LocalTrainingConfig,
    _plan_step_runs,
    local_train,
    local_train_batched,
)
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    batch_layer,
    has_batched_counterpart,
    slice_clients,
)
from repro.nn.losses import BatchedSoftmaxCrossEntropy, SoftmaxCrossEntropy
from repro.nn.model import (
    BatchedSequential,
    Sequential,
    make_lenet,
    make_mlp,
    supports_batching,
)
from repro.nn.optim import SGD, BatchedSGD
from repro.nn.serialization import flatten_params

CLIENTS = 5


class TestBatchedLinear:
    def test_bitwise_equals_serial(self, rng):
        def factory():
            return Linear(7, 4, rng=np.random.default_rng(0))

        batched = batch_layer(factory(), CLIENTS)
        batched.params["W"][...] = rng.normal(size=(CLIENTS, 7, 4))
        batched.params["b"][...] = rng.normal(size=(CLIENTS, 4))
        x = rng.normal(size=(CLIENTS, 6, 7))
        grad = rng.normal(size=(CLIENTS, 6, 4))

        out_b = batched.forward(x, training=True)
        gx_b = batched.backward(grad)
        for c in range(CLIENTS):
            layer = factory()
            layer.params["W"][...] = batched.params["W"][c]
            layer.params["b"][...] = batched.params["b"][c]
            layer.zero_grad()
            np.testing.assert_array_equal(layer.forward(x[c], training=True), out_b[c])
            np.testing.assert_array_equal(layer.backward(grad[c]), gx_b[c])
            np.testing.assert_array_equal(layer.grads["W"], batched.grads["W"][c])
            np.testing.assert_array_equal(layer.grads["b"], batched.grads["b"][c])


class TestBatchedConv2d:
    def test_bitwise_equals_serial(self, rng):
        def factory():
            return Conv2d(2, 3, kernel_size=3, padding=1, rng=np.random.default_rng(0))

        batched = batch_layer(factory(), CLIENTS)
        batched.params["W"][...] = rng.normal(size=batched.params["W"].shape)
        batched.params["b"][...] = rng.normal(size=batched.params["b"].shape)
        x = rng.normal(size=(CLIENTS, 4, 2, 8, 8))
        out_b = batched.forward(x, training=True)
        grad = rng.normal(size=out_b.shape)
        gx_b = batched.backward(grad)
        for c in range(CLIENTS):
            layer = factory()
            layer.params["W"][...] = batched.params["W"][c]
            layer.params["b"][...] = batched.params["b"][c]
            layer.zero_grad()
            np.testing.assert_array_equal(layer.forward(x[c], training=True), out_b[c])
            np.testing.assert_array_equal(layer.backward(grad[c]), gx_b[c])
            np.testing.assert_array_equal(layer.grads["W"], batched.grads["W"][c])
            np.testing.assert_array_equal(layer.grads["b"], batched.grads["b"][c])


class TestBatchedPoolFlattenLoss:
    def test_maxpool_bitwise_equals_serial(self, rng):
        batched = batch_layer(MaxPool2d(2), CLIENTS)
        x = rng.normal(size=(CLIENTS, 3, 2, 7, 5))  # non-divisible dims
        out_b = batched.forward(x, training=True)
        grad = rng.normal(size=out_b.shape)
        gx_b = batched.backward(grad)
        for c in range(CLIENTS):
            pool = MaxPool2d(2)
            np.testing.assert_array_equal(pool.forward(x[c], training=True), out_b[c])
            np.testing.assert_array_equal(pool.backward(grad[c]), gx_b[c])

    def test_flatten_roundtrip(self, rng):
        batched = batch_layer(Flatten(), CLIENTS)
        x = rng.normal(size=(CLIENTS, 3, 2, 4, 4))
        out = batched.forward(x, training=True)
        assert out.shape == (CLIENTS, 3, 32)
        np.testing.assert_array_equal(batched.backward(out), x)

    def test_loss_bitwise_equals_serial(self, rng):
        logits = rng.normal(size=(CLIENTS, 6, 4))
        targets = rng.integers(0, 4, size=(CLIENTS, 6))
        batched = BatchedSoftmaxCrossEntropy()
        losses = batched.forward(logits, targets)
        grads = batched.backward()
        for c in range(CLIENTS):
            serial = SoftmaxCrossEntropy()
            assert serial.forward(logits[c], targets[c]) == losses[c]
            np.testing.assert_array_equal(serial.backward(), grads[c])


class TestBatchedSGD:
    @pytest.mark.parametrize("momentum,weight_decay", [(0.0, 0.0), (0.9, 0.0), (0.5, 0.01)])
    def test_step_bitwise_equals_serial(self, rng, momentum, weight_decay):
        template = make_mlp(5, (4,), 3, seed=1)
        batched = BatchedSequential.from_template(template, CLIENTS)
        for _, plane in batched.named_parameters():
            plane[...] = rng.normal(size=plane.shape)
        serial_models = []
        for c in range(CLIENTS):
            model = make_mlp(5, (4,), 3, seed=1)
            for (_, param), (_, plane) in zip(
                model.named_parameters(), batched.named_parameters(), strict=True
            ):
                param[...] = plane[c]
            serial_models.append(model)

        opt_b = BatchedSGD(batched, lr=0.1, momentum=momentum, weight_decay=weight_decay)
        opts = [
            SGD(m, lr=0.1, momentum=momentum, weight_decay=weight_decay)
            for m in serial_models
        ]
        x = rng.normal(size=(CLIENTS, 6, 5))
        y = rng.integers(0, 3, size=(CLIENTS, 6))
        criterion_b = BatchedSoftmaxCrossEntropy()
        for _step in range(3):
            logits = batched.forward(x, training=True)
            criterion_b.forward(logits, y)
            batched.backward(criterion_b.backward())
            opt_b.step()
            for c, model in enumerate(serial_models):
                opts[c].zero_grad()
                criterion = SoftmaxCrossEntropy()
                criterion.forward(model.forward(x[c], training=True), y[c])
                model.backward(criterion.backward())
                opts[c].step()
        for c, model in enumerate(serial_models):
            for (_, param), (_, plane) in zip(
                model.named_parameters(), batched.named_parameters(), strict=True
            ):
                np.testing.assert_array_equal(param, plane[c])

    def test_requires_batched_model(self):
        with pytest.raises(ValueError, match="client-stacked"):
            BatchedSGD(make_mlp(4, (3,), 2, seed=0), lr=0.1)


class TestBatchingSupport:
    def test_dropout_has_no_batched_counterpart(self):
        assert not has_batched_counterpart(Dropout(0.5, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError, match="no batched counterpart"):
            batch_layer(Dropout(0.5, rng=np.random.default_rng(0)), CLIENTS)

    def test_supports_batching(self):
        assert supports_batching(make_mlp(4, (3,), 2, seed=0))
        assert supports_batching(make_lenet(image_size=8, num_classes=3, seed=0))
        assert not supports_batching(make_mlp(4, (3,), 2, seed=0, dropout=0.5))


class TestSliceClients:
    def test_views_share_storage(self, rng):
        batched = batch_layer(Linear(4, 3, rng=np.random.default_rng(0)), CLIENTS)
        batched.params["W"][...] = rng.normal(size=batched.params["W"].shape)
        view = slice_clients(batched, 1, 4)
        assert view.num_clients == 3
        np.testing.assert_array_equal(view.params["W"], batched.params["W"][1:4])
        view.params["W"] += 1.0  # in-place math lands in the parent planes
        np.testing.assert_array_equal(view.params["W"], batched.params["W"][1:4])

    def test_model_view_trains_parent_rows_only(self, rng):
        template = make_mlp(5, (4,), 3, seed=1)
        batched = BatchedSequential.from_template(template, CLIENTS)
        batched.load_global(flatten_params(template))
        before = batched.flatten_per_client()
        sub = batched.view(1, 3)
        opt = BatchedSGD(batched, lr=0.1)
        criterion = BatchedSoftmaxCrossEntropy()
        x = rng.normal(size=(2, 6, 5))
        y = rng.integers(0, 3, size=(2, 6))
        criterion.forward(sub.forward(x, training=True), y)
        sub.backward(criterion.backward())
        opt.step_slice(1, 3)
        after = batched.flatten_per_client()
        assert not np.array_equal(after[1:3], before[1:3])
        np.testing.assert_array_equal(after[0], before[0])
        np.testing.assert_array_equal(after[3:], before[3:])
        # views are cached per range
        assert batched.view(1, 3) is sub
        assert batched.view(0, CLIENTS) is batched

    def test_invalid_ranges_rejected(self):
        batched = batch_layer(Linear(4, 3, rng=np.random.default_rng(0)), CLIENTS)
        for a, b in [(-1, 2), (2, 2), (0, CLIENTS + 1)]:
            with pytest.raises(ValueError):
                slice_clients(batched, a, b)


class TestPlanStepRuns:
    def test_uniform_sizes_one_run_per_step(self):
        runs = _plan_step_runs([10, 10, 10], batch_size=4)
        assert runs == [
            (0, [(0, 3, 4)]),
            (4, [(0, 3, 4)]),
            (8, [(0, 3, 2)]),
        ]

    def test_ragged_sizes_split_into_runs(self):
        runs = _plan_step_runs([10, 7, 7, 3], batch_size=4)
        assert runs == [
            (0, [(0, 3, 4), (3, 4, 3)]),
            (4, [(0, 1, 4), (1, 3, 3)]),
            (8, [(0, 1, 2)]),
        ]

    def test_covers_every_sample_exactly_once(self):
        sizes = [17, 13, 8, 8, 5, 1]
        runs = _plan_step_runs(sizes, batch_size=4)
        seen = [0] * len(sizes)
        for _start, step_runs in runs:
            for a, b, size in step_runs:
                for c in range(a, b):
                    seen[c] += size
        assert seen == sizes


class TestLocalTrainBatched:
    def _datasets(self, rng, sizes, dim=6, classes=3):
        from repro.data.dataset import Dataset

        return [
            Dataset(
                x=rng.normal(size=(n, dim)),
                y=rng.integers(0, classes, size=n),
            )
            for n in sizes
        ]

    def test_bitwise_equals_serial_ragged(self, rng):
        template = make_mlp(6, (5,), 3, seed=2)
        global_params = flatten_params(template)
        sizes = [11, 8, 8, 3]
        datasets = self._datasets(rng, sizes)
        config = LocalTrainingConfig(epochs=2, batch_size=4, lr=0.05, momentum=0.9)
        batched = BatchedSequential.from_template(template, len(sizes))
        updates, losses = local_train_batched(
            batched, global_params, datasets, config,
            [np.random.default_rng(100 + c) for c in range(len(sizes))],
        )
        for c, data in enumerate(datasets):
            update, loss = local_train(
                make_mlp(6, (5,), 3, seed=2), global_params, data, config,
                np.random.default_rng(100 + c),
            )
            np.testing.assert_array_equal(updates[c], update)
            assert losses[c] == loss

    def test_proximal_and_drift_bitwise_equals_serial(self, rng):
        template = make_mlp(6, (5,), 3, seed=2)
        global_params = flatten_params(template)
        sizes = [9, 6]
        datasets = self._datasets(rng, sizes)
        config = LocalTrainingConfig(epochs=1, batch_size=4, lr=0.05, proximal_mu=0.1)
        drift = rng.normal(size=(len(sizes), global_params.shape[0]))
        batched = BatchedSequential.from_template(template, len(sizes))
        updates, _ = local_train_batched(
            batched, global_params, datasets, config,
            [np.random.default_rng(7 + c) for c in range(len(sizes))],
            drift_corrections=drift,
        )
        for c, data in enumerate(datasets):
            update, _ = local_train(
                make_mlp(6, (5,), 3, seed=2), global_params, data, config,
                np.random.default_rng(7 + c), drift_correction=drift[c],
            )
            np.testing.assert_array_equal(updates[c], update)

    def test_rejects_bad_inputs(self, rng):
        template = make_mlp(6, (5,), 3, seed=2)
        global_params = flatten_params(template)
        batched = BatchedSequential.from_template(template, 2)
        data = self._datasets(rng, [4, 8])  # increasing size: wrong order
        config = LocalTrainingConfig(batch_size=4)
        rngs = [np.random.default_rng(c) for c in range(2)]
        with pytest.raises(ValueError, match="non-increasing"):
            local_train_batched(batched, global_params, data, config, rngs)
        empty = self._datasets(rng, [4, 0])
        with pytest.raises(ValueError, match="non-empty"):
            local_train_batched(batched, global_params, empty, config, rngs)
        with pytest.raises(ValueError, match="sized for"):
            local_train_batched(
                batched, global_params, self._datasets(rng, [4]), config, rngs[:1]
            )
