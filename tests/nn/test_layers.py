"""Unit tests for the numpy layers, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = fn()
        x[idx] = original - eps
        minus = fn()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        expected = x @ layer.params["W"] + layer.params["b"]
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_bad_input_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_backward_input_gradient_matches_numerical(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(3, 4))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        layer.forward(x)
        grad_out = 2.0 * layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_backward_weight_gradient_matches_numerical(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, layer.params["W"])
        np.testing.assert_allclose(layer.grads["W"], numeric, atol=1e-5)

    def test_backward_before_forward_raises(self, rng):
        layer = Linear(3, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_zero_grad_resets(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        assert np.abs(layer.grads["W"]).sum() > 0
        layer.zero_grad()
        assert np.abs(layer.grads["W"]).sum() == 0


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks_negative(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]])
        layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0, 1.0]])

    def test_tanh_gradient_matches_numerical(self, rng):
        layer = Tanh()
        x = rng.normal(size=(2, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        analytic = layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sigmoid_range_and_gradient(self, rng):
        layer = Sigmoid()
        x = rng.normal(size=(2, 3)) * 5
        out = layer.forward(x)
        assert np.all(out > 0) and np.all(out < 1)

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        analytic = layer.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sigmoid_saturation_is_finite(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[1e4, -1e4]]))
        assert np.all(np.isfinite(out))

    def test_backward_before_forward_raises(self):
        for layer in (ReLU(), Tanh(), Sigmoid()):
            with pytest.raises(RuntimeError):
                layer.backward(np.ones((1, 1)))


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_dropout_training_zeroes_some_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1, 1000))
        out = layer.forward(x, training=True)
        zero_fraction = float((out == 0).mean())
        assert 0.35 < zero_fraction < 0.65
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConv2d:
    def test_forward_shape_valid_and_padded(self, rng):
        x = rng.normal(size=(2, 1, 8, 8))
        conv = Conv2d(1, 3, kernel_size=3, rng=rng)
        assert conv.forward(x).shape == (2, 3, 6, 6)
        conv_padded = Conv2d(1, 3, kernel_size=3, padding=1, rng=rng)
        assert conv_padded.forward(x).shape == (2, 3, 8, 8)

    def test_forward_matches_naive_convolution(self, rng):
        conv = Conv2d(2, 1, kernel_size=2, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        out = conv.forward(x)
        w, b = conv.params["W"], conv.params["b"]
        expected = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                patch = x[0, :, i : i + 2, j : j + 2]
                expected[0, 0, i, j] = np.sum(patch * w[0]) + b[0]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_backward_input_gradient_matches_numerical(self, rng):
        conv = Conv2d(1, 2, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))

        def loss():
            return float(np.sum(conv.forward(x) ** 2))

        out = conv.forward(x)
        analytic = conv.backward(2.0 * out)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_backward_weight_gradient_matches_numerical(self, rng):
        conv = Conv2d(1, 2, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))

        def loss():
            return float(np.sum(conv.forward(x) ** 2))

        conv.zero_grad()
        out = conv.forward(x)
        conv.backward(2.0 * out)
        numeric = numerical_gradient(loss, conv.params["W"])
        np.testing.assert_allclose(conv.grads["W"], numeric, atol=1e-4)

    def test_rejects_wrong_channel_count(self, rng):
        conv = Conv2d(3, 2, kernel_size=3, rng=rng)
        with pytest.raises(ValueError):
            conv.forward(rng.normal(size=(1, 1, 8, 8)))


class TestMaxPool2d:
    def test_forward_picks_maximum(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_gradient_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0 and grad[0, 0, 3, 3] == 1.0
        assert grad[0, 0, 0, 0] == 0.0

    def test_floors_nondivisible_dims(self, rng):
        # 7x5 input under a 3-window floors to 2x1; the remainder rows and
        # columns are cropped, exactly as if the input had been pre-cropped.
        pool = MaxPool2d(3)
        x = rng.normal(size=(2, 3, 7, 5))
        out = pool.forward(x)
        assert out.shape == (2, 3, 2, 1)
        np.testing.assert_array_equal(out, MaxPool2d(3).forward(x[:, :, :6, :3]))

    def test_backward_zeroes_cropped_region(self, rng):
        pool = MaxPool2d(3)
        x = rng.normal(size=(2, 3, 7, 5))
        out = pool.forward(x)
        grad_out = rng.normal(size=out.shape)
        grad = pool.backward(grad_out)
        assert grad.shape == x.shape
        assert np.all(grad[:, :, 6:, :] == 0.0)
        assert np.all(grad[:, :, :, 3:] == 0.0)
        # Each window routes its whole incoming gradient to one argmax cell.
        np.testing.assert_allclose(grad.sum(), grad_out.sum())

    def test_rejects_input_smaller_than_window(self, rng):
        pool = MaxPool2d(3)
        with pytest.raises(ValueError):
            pool.forward(rng.normal(size=(1, 1, 2, 4)))


class TestDeterministicConstruction:
    """Layer construction must never draw OS entropy (rng-discipline RNG001)."""

    def test_default_construction_is_deterministic(self):
        a, b = Linear(4, 3), Linear(4, 3)
        np.testing.assert_array_equal(a.params["W"], b.params["W"])
        c, d = Conv2d(2, 3, 3), Conv2d(2, 3, 3)
        np.testing.assert_array_equal(c.params["W"], d.params["W"])

    def test_integer_seed_matches_explicit_generator(self):
        # Seed 0 is a valid seed, not a missing one (the old ``rng or
        # default_rng()`` fallback treated it as falsy).
        np.testing.assert_array_equal(
            Linear(4, 3, rng=0).params["W"],
            Linear(4, 3, rng=np.random.default_rng(0)).params["W"],
        )
        np.testing.assert_array_equal(
            Conv2d(2, 3, 3, rng=7).params["W"],
            Conv2d(2, 3, 3, rng=np.random.default_rng(7)).params["W"],
        )

    def test_distinct_seeds_differ(self):
        a = Linear(4, 3, rng=1)
        b = Linear(4, 3, rng=2)
        assert not np.array_equal(a.params["W"], b.params["W"])

    def test_dropout_default_rng_is_deterministic(self):
        x = np.ones((4, 5))
        first = Dropout(0.5).forward(x, training=True)
        second = Dropout(0.5).forward(x, training=True)
        np.testing.assert_array_equal(first, second)

    def test_passed_generator_still_honoured(self, rng):
        state = rng.bit_generator.state
        a = Linear(4, 3, rng=rng)
        rng.bit_generator.state = state
        b = Linear(4, 3, rng=rng)
        np.testing.assert_array_equal(a.params["W"], b.params["W"])
