"""Integration tests: the paper's headline claims on tiny federations.

These tests run complete federated-training experiments (a few rounds, a few
dozen clients) and assert the *qualitative* results of the paper: CollaPois
transfers the backdoor where baselines do not, converges the global model
toward the Trojaned model, stays stealthy against statistical detection, and
hurts clients whose data resembles the attacker's auxiliary data the most.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import gradient_indistinguishability
from repro.core.stealth import blend_statistics
from repro.experiments.config import ExperimentConfig
from repro.experiments.gradient_geometry import _collect_round_updates
from repro.experiments.runner import run_experiment
from repro.federated.client import LocalTrainingConfig
from repro.metrics.client_level import top_k_metrics
from repro.metrics.gradients import angle_summary


@pytest.fixture(scope="module")
def attack_config():
    return ExperimentConfig(
        dataset="femnist",
        num_clients=16,
        samples_per_client=30,
        num_classes=8,
        image_size=16,
        alpha=0.3,
        rounds=12,
        sample_rate=0.4,
        attack="collapois",
        compromised_fraction=0.15,
        trojan_epochs=10,
        local=LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05),
        max_test_samples=20,
        seed=3,
    )


@pytest.fixture(scope="module")
def collapois_result(attack_config):
    return run_experiment(attack_config)


@pytest.fixture(scope="module")
def dpois_result(attack_config):
    return run_experiment(attack_config.with_overrides(attack="dpois"))


@pytest.fixture(scope="module")
def clean_result(attack_config):
    return run_experiment(attack_config.with_overrides(attack="none"))


class TestHeadlineClaims:
    def test_collapois_transfers_backdoor(self, collapois_result):
        assert collapois_result.attack_success_rate > 0.5

    def test_collapois_beats_dpois(self, collapois_result, dpois_result):
        assert collapois_result.attack_success_rate > dpois_result.attack_success_rate + 0.2

    def test_clean_training_has_no_backdoor(self, clean_result):
        assert clean_result.attack_success_rate < 0.25

    def test_collapois_preserves_benign_accuracy(self, collapois_result, clean_result):
        assert collapois_result.benign_accuracy > clean_result.benign_accuracy - 0.2

    def test_global_model_converges_toward_trojan(self, collapois_result):
        attack = collapois_result.extras["attack"]
        server = collapois_result.extras["server"]
        initial_model = server.model_factory()
        from repro.nn.serialization import flatten_params

        initial_distance = attack.distance_to_trojan(flatten_params(initial_model))
        final_distance = attack.distance_to_trojan(server.global_params)
        assert final_distance < initial_distance

    def test_top25_clients_hit_harder_than_average(self, collapois_result):
        overall = collapois_result.attack_success_rate
        top25 = top_k_metrics(collapois_result.evaluation, 25.0)["attack_success_rate"]
        assert top25 >= overall


class TestDefensesIntegration:
    def test_krum_suppresses_attack_but_costs_accuracy(self, attack_config, collapois_result):
        defended = run_experiment(
            attack_config.with_overrides(defense="krum", defense_kwargs={"multi": 2})
        )
        assert defended.attack_success_rate < collapois_result.attack_success_rate
        assert defended.benign_accuracy <= collapois_result.benign_accuracy + 0.05

    def test_norm_bound_leaves_attack_effective(self, attack_config):
        # Norm bounding only slows the pull toward X; given enough rounds the
        # backdoor still transfers (the paper's Fig. 9/16 finding).
        defended = run_experiment(
            attack_config.with_overrides(
                rounds=30, defense="norm_bound", defense_kwargs={"max_norm": 2.0}
            )
        )
        assert defended.attack_success_rate > 0.4


class TestPersonalizedAlgorithms:
    def test_feddc_mitigates_dpois_more_than_collapois(self, attack_config):
        feddc_collapois = run_experiment(attack_config.with_overrides(algorithm="feddc"))
        feddc_dpois = run_experiment(
            attack_config.with_overrides(algorithm="feddc", attack="dpois")
        )
        assert feddc_collapois.attack_success_rate > feddc_dpois.attack_success_rate

    def test_metafed_still_vulnerable_to_collapois(self, attack_config):
        result = run_experiment(attack_config.with_overrides(algorithm="metafed", rounds=8))
        assert result.attack_success_rate > 0.3


class TestGradientGeometryIntegration:
    def test_malicious_gradients_more_aligned_than_benign(self, attack_config):
        collected = _collect_round_updates(attack_config.with_overrides(rounds=1), "collapois")
        benign_spread = angle_summary(collected["benign"])["mean"]
        malicious_spread = angle_summary(collected["malicious"])["mean"]
        assert malicious_spread < benign_spread

    def test_benign_gradients_scatter_more_when_non_iid(self, attack_config):
        diverse = _collect_round_updates(attack_config.with_overrides(alpha=0.05), "collapois")
        uniform = _collect_round_updates(attack_config.with_overrides(alpha=50.0), "collapois")
        assert angle_summary(diverse["benign"])["mean"] > angle_summary(uniform["benign"])["mean"]

    def test_statistical_indistinguishability_of_norms(self, attack_config):
        config = attack_config.with_overrides(
            clip_bound=0.5, psi_low=0.95, psi_high=0.99
        )
        collected = _collect_round_updates(config, "collapois")
        stats = blend_statistics(collected["malicious"], collected["benign"])
        # With clipping on, malicious norms stay within the benign range.
        assert stats["malicious_norm_mean"] <= 2.5 * stats["benign_norm_mean"] + 1e-9
        norm_report = gradient_indistinguishability(
            np.linalg.norm(collected["malicious"], axis=1),
            np.linalg.norm(collected["benign"], axis=1),
        )
        assert norm_report["three_sigma_outlier_fraction"] < 0.5
