"""Fixture: every fold-determinism rule fires in this file."""

import numpy as np


class BadAggregator:
    def fold_slice(self, acc, update):
        weight = np.linalg.norm(update)  # FOLD001: flattened 1-D BLAS norm
        acc += update * weight
        return acc

    def accumulate(self, acc, update):
        total = update.sum()  # FOLD001: method reduction without axis
        overlap = np.dot(update, update)  # FOLD002: BLAS product
        return acc + self._helper(update) + total + overlap

    def _helper(self, update):
        return sum(update.tolist())  # FOLD003: via transitive self call
