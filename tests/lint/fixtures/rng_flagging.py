"""Fixture: every rng-discipline rule fires in this file."""

import os
import random
import time

import numpy as np


def entropy_soup(shape):
    rng = np.random.default_rng()  # RNG001: unseeded
    noise = np.random.normal(size=shape)  # RNG002: global numpy state
    jitter = random.random()  # RNG003: stdlib random
    token = os.urandom(8)  # RNG004: OS entropy
    stamp = time.time()  # RNG005: wall clock
    return rng.normal(size=shape) + noise + jitter + len(token) + stamp
