"""Fixture: every backend-shared-state rule fires in this file."""

import threading

_CACHE = None


def _pool_worker(task):
    global _CACHE
    _CACHE = task  # SHARE002: module-global write from pool.map target
    return task


def run_pool(pool, tasks):
    return list(pool.map(_pool_worker, tasks))


class Backend:
    def __init__(self):
        self.latest = None
        self.counts = {}

    def run(self, executor, tasks):
        return [executor.submit(self._work, task) for task in tasks]

    def _work(self, task):
        self.latest = task  # SHARE001: self write from submitted method
        self.counts[task] = 1  # SHARE001: self container write
        return task


def run_threads(tasks):
    total = 0

    def _tally(task):
        nonlocal total
        total += task  # SHARE003: enclosing-scope write from Thread target

    thread = threading.Thread(target=_tally, args=(tasks[0],))
    thread.start()
    thread.join()
    return total
