"""Fixture: seed-disciplined randomness; no rng-discipline rule fires."""

import time

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def typed_stream(seed):
    return np.random.Generator(np.random.PCG64(seed))


def draw(shape, rng):
    return rng.normal(size=shape)


class Sampler:
    def random(self):
        return 0.5


def same_named_method_is_fine():
    # ``.random()`` on a non-imported object must not trip RNG003.
    return Sampler().random()


def interval_clocks_are_fine():
    start = time.perf_counter()
    return time.monotonic() - start
