"""Fixture: elementwise folds and axis-pinned reductions; nothing fires."""

import numpy as np


class GoodAggregator:
    def fold_slice(self, acc, update):
        acc += np.clip(update, -1.0, 1.0)
        return acc

    def accumulate(self, acc, stacked):
        norms = np.linalg.norm(stacked, axis=1)  # axis-pinned: allowed
        rows = stacked.sum(axis=0)  # axis-pinned method: allowed
        return acc + rows * norms[0]


class NotAnAggregator:
    def score(self, update):
        # Reductions outside the fold path are out of scope.
        return np.dot(update, update) + np.linalg.norm(update)
