"""Fixture: the sanctioned off-driver patterns; no shared-state rule fires."""

import threading


class Backend:
    def run(self, executor, tasks):
        # Driver-side self writes are fine; only dispatched code is checked.
        self.last_count = len(tasks)
        futures = [executor.submit(self._work, task) for task in tasks]
        return [future.result() for future in futures]

    def _work(self, task):
        local_total = 0
        for item in task:
            local_total += item  # local accumulation: allowed
        return local_total


def run_shards(results, tasks):
    def _worker(index, task):
        results[index] = task * 2  # per-slot write into a caller-owned arg

    threads = [
        threading.Thread(target=_worker, args=(i, task))
        for i, task in enumerate(tasks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results
