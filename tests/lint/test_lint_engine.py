"""Engine-level tests: selection, baseline workflow, rendering, fingerprints."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.base import Project, SourceFile
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import (
    SYNTAX_RULE,
    lint_project,
    render_json,
    render_text,
    resolve_checkers,
    run_lint,
)
from repro.lint.findings import Finding, stable_path

FIXTURES = Path(__file__).parent / "fixtures"

ALL_CHECKERS = {
    "backend-shared-state",
    "fold-determinism",
    "registry-completeness",
    "rng-discipline",
    "wire-protocol-versioning",
}


class TestResolveCheckers:
    def test_default_selects_every_checker(self):
        assert {c.name for c in resolve_checkers()} == ALL_CHECKERS

    def test_select_subset(self):
        checkers = resolve_checkers(select=["rng-discipline"])
        assert [c.name for c in checkers] == ["rng-discipline"]

    def test_ignore_removes(self):
        checkers = resolve_checkers(ignore=["rng-discipline"])
        assert {c.name for c in checkers} == ALL_CHECKERS - {"rng-discipline"}

    def test_select_spec_passes_kwargs(self):
        (checker,) = resolve_checkers(
            select=["rng-discipline:allow=('repro/legacy/*',)"]
        )
        assert checker.allow == ("repro/legacy/*",)

    def test_unknown_name_gets_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'rng-discipline'"):
            resolve_checkers(select=["rng-dicipline"])
        with pytest.raises(ValueError, match="unknown checker"):
            resolve_checkers(ignore=["rng-dicipline"])


class TestBaselineWorkflow:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        report = run_lint(
            [FIXTURES / "rng_flagging.py"], select=["rng-discipline"]
        )
        assert report.exit_code == 1 and report.findings
        baseline = tmp_path / "baseline.json"
        count = write_baseline(baseline, report.findings, {})
        assert count == len(report.findings)
        again = run_lint(
            [FIXTURES / "rng_flagging.py"],
            select=["rng-discipline"],
            baseline_path=baseline,
        )
        assert again.exit_code == 0
        assert len(again.suppressed) == count
        assert "suppressed by baseline" in again.summary()

    def test_baseline_survives_unrelated_edits(self):
        # Fingerprints key on the source line, not the line number.
        finding = Finding(
            file="src/repro/demo.py", line=10, rule="RNG001",
            message="m", checker="rng-discipline", context="rng = default_rng()",
        )
        moved = Finding(
            file="/elsewhere/checkout/src/repro/demo.py", line=99, rule="RNG001",
            message="m", checker="rng-discipline", context="rng = default_rng()",
        )
        assert finding.fingerprint == moved.fingerprint

    def test_explicit_missing_baseline_is_an_error(self):
        with pytest.raises(ValueError, match="does not exist"):
            run_lint(
                [FIXTURES / "rng_clean.py"], baseline_path="/no/such/baseline.json"
            )

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 999}', encoding="utf-8")
        with pytest.raises(ValueError, match="version-1"):
            load_baseline(bad)


class TestLintProject:
    def test_syntax_error_reported_once(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n", encoding="utf-8")
        project = Project.collect([broken], root=tmp_path)
        report = lint_project(project, resolve_checkers())
        assert [f.rule for f in report.findings] == [SYNTAX_RULE]

    def test_missing_path_is_an_error(self):
        with pytest.raises(ValueError, match="does not exist"):
            Project.collect(["/no/such/lint/path"])

    def test_findings_sorted_by_location(self):
        report = run_lint([FIXTURES / "rng_flagging.py"], select=["rng-discipline"])
        locations = [(f.file, f.line, f.col) for f in report.findings]
        assert locations == sorted(locations)


class TestRendering:
    def test_text_output_lists_findings_and_summary(self):
        report = run_lint([FIXTURES / "rng_flagging.py"], select=["rng-discipline"])
        text = render_text(report)
        assert "RNG001" in text and "rng_flagging.py" in text
        assert report.summary() in text

    def test_json_output_is_machine_readable(self):
        report = run_lint([FIXTURES / "rng_flagging.py"], select=["rng-discipline"])
        payload = json.loads(render_json(report))
        assert payload["checkers"] == ["rng-discipline"]
        assert payload["files"] == 1
        rules = {entry["rule"] for entry in payload["findings"]}
        assert "RNG001" in rules
        assert all("fingerprint" in entry for entry in payload["findings"])


class TestStablePaths:
    def test_checkout_independent(self):
        assert stable_path("src/repro/nn/layers.py") == "repro/nn/layers.py"
        assert (
            stable_path("/ci/build/src/repro/nn/layers.py") == "repro/nn/layers.py"
        )

    def test_outside_package_falls_back_to_basename(self):
        assert stable_path("/tmp/fixtures/rng_clean.py") == "rng_clean.py"

    def test_source_file_from_source_for_fixtures(self):
        source = SourceFile.from_source("x = 1\n", rel="snippet.py")
        assert source.tree().body and source.line(1) == "x = 1"
