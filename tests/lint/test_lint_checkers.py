"""Per-checker tests: one flagging and one clean fixture per checker."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint.base import Project, SourceFile
from repro.lint.checkers.fold_determinism import FoldDeterminismChecker
from repro.lint.checkers.registry_completeness import RegistryCompletenessChecker
from repro.lint.checkers.rng_discipline import RngDisciplineChecker
from repro.lint.checkers.shared_state import BackendSharedStateChecker
from repro.lint.checkers.wire_protocol import PROTOCOL_SUFFIX, WireProtocolChecker
from repro.registry import Registry

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def run_checker(checker, *paths):
    project = Project.collect(paths, root=Path(__file__).resolve().parents[2])
    return list(checker.run(project))


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestRngDiscipline:
    def test_flags_every_entropy_source(self):
        findings = run_checker(RngDisciplineChecker(), FIXTURES / "rng_flagging.py")
        assert rules_of(findings) == {"RNG001", "RNG002", "RNG003", "RNG004", "RNG005"}

    def test_clean_fixture_passes(self):
        assert run_checker(RngDisciplineChecker(), FIXTURES / "rng_clean.py") == []

    def test_allowlist_exempts_file(self):
        checker = RngDisciplineChecker(allow=("*rng_flagging.py",))
        assert run_checker(checker, FIXTURES / "rng_flagging.py") == []

    def test_explicit_none_seed_still_flagged(self):
        source = SourceFile.from_source(
            "import numpy as np\nrng = np.random.default_rng(None)\n",
            rel="repro/demo.py",
        )
        project = Project(root=Path.cwd(), files=(source,))
        findings = list(RngDisciplineChecker().run(project))
        assert rules_of(findings) == {"RNG001"}


class TestBackendSharedState:
    def test_flags_all_mutation_kinds(self):
        findings = run_checker(
            BackendSharedStateChecker(), FIXTURES / "shared_state_flagging.py"
        )
        assert rules_of(findings) == {"SHARE001", "SHARE002", "SHARE003"}

    def test_clean_fixture_passes(self):
        findings = run_checker(
            BackendSharedStateChecker(), FIXTURES / "shared_state_clean.py"
        )
        assert findings == []


class TestFoldDeterminism:
    def test_flags_all_reduction_kinds(self):
        findings = run_checker(
            FoldDeterminismChecker(), FIXTURES / "fold_flagging.py"
        )
        assert rules_of(findings) == {"FOLD001", "FOLD002", "FOLD003"}

    def test_clean_fixture_passes(self):
        assert run_checker(FoldDeterminismChecker(), FIXTURES / "fold_clean.py") == []

    def test_follows_cross_module_helpers(self):
        helper = SourceFile.from_source(
            "import numpy as np\n"
            "def fold_helper(acc, update):\n"
            "    return acc + np.sum(update)\n",
            rel="src/repro/defenses/demo_helpers.py",
        )
        aggregator = SourceFile.from_source(
            "from repro.defenses.demo_helpers import fold_helper\n"
            "class Agg:\n"
            "    def fold_slice(self, acc, update):\n"
            "        return fold_helper(acc, update)\n",
            rel="src/repro/defenses/demo_agg.py",
        )
        project = Project(root=Path.cwd(), files=(helper, aggregator))
        findings = list(FoldDeterminismChecker().run(project))
        assert rules_of(findings) == {"FOLD001"}
        assert findings[0].file.endswith("demo_helpers.py")


class TestWireProtocol:
    def _project_with(self, tmp_path, text):
        target = tmp_path / PROTOCOL_SUFFIX.replace(
            "federated/", "repro/federated/", 1
        )
        target.parent.mkdir(parents=True)
        target.write_text(text, encoding="utf-8")
        return Project.collect([tmp_path], root=tmp_path)

    @pytest.fixture()
    def protocol_text(self):
        return (REPO_SRC / "repro" / PROTOCOL_SUFFIX).read_text(encoding="utf-8")

    def test_current_source_matches_golden(self, tmp_path, protocol_text):
        project = self._project_with(tmp_path, protocol_text)
        assert list(WireProtocolChecker().run(project)) == []

    def test_new_header_field_without_bump_fails(self, tmp_path, protocol_text):
        # The pinned regression: adding a reserved header field while
        # PROTOCOL_VERSION stays at its current value must fail.
        marker = 'header["_arrays"] ='
        assert marker in protocol_text
        patched = protocol_text.replace(
            marker, 'header["_shard"] = 0\n    header["_arrays"] =', 1
        )
        project = self._project_with(tmp_path, patched)
        findings = list(WireProtocolChecker().run(project))
        assert rules_of(findings) == {"WIRE002"}
        assert "_shard" in findings[0].message

    def test_version_bump_requires_new_golden(self, tmp_path, protocol_text):
        patched, hits = re.subn(
            r"PROTOCOL_VERSION = \d+", "PROTOCOL_VERSION = 99", protocol_text, count=1
        )
        assert hits == 1
        project = self._project_with(tmp_path, patched)
        assert rules_of(WireProtocolChecker().run(project)) == {"WIRE001"}

    def test_missing_version_constant_fails(self, tmp_path, protocol_text):
        patched, hits = re.subn(
            r"PROTOCOL_VERSION = \d+", "PROTOCOL_VERSION = None", protocol_text, count=1
        )
        assert hits == 1
        project = self._project_with(tmp_path, patched)
        assert rules_of(WireProtocolChecker().run(project)) == {"WIRE003"}

    def test_skips_when_protocol_not_in_scope(self):
        project = Project.collect([FIXTURES / "rng_clean.py"])
        assert list(WireProtocolChecker().run(project)) == []


class TestRegistryCompleteness:
    @pytest.fixture()
    def empty_project(self):
        return Project(root=Path.cwd(), files=())

    def test_flags_broken_members(self, empty_project):
        registry = Registry("demo_lint_bad")
        try:

            @registry.register("shadowed")
            class Shadowed:
                def __init__(self, name):
                    self.name = name

            @registry.register("boom")
            class Boom:
                def __init__(self):
                    raise RuntimeError("nope")

            @registry.register("un:speccable")
            class Weird:
                pass

            registry.register("opaque")(dict)

            checker = RegistryCompletenessChecker(families="demo_lint_bad")
            findings = list(checker.run(empty_project))
            assert rules_of(findings) == {"REG002", "REG003", "REG004", "REG005"}
        finally:
            Registry._families.pop("demo_lint_bad", None)

    def test_flags_unimportable_family(self, empty_project):
        Registry("demo_lint_missing", load_from=("repro.lint._no_such_module",))
        try:
            checker = RegistryCompletenessChecker(families="demo_lint_missing")
            findings = list(checker.run(empty_project))
            assert rules_of(findings) == {"REG001"}
        finally:
            Registry._families.pop("demo_lint_missing", None)

    def test_clean_family_passes(self, empty_project):
        registry = Registry("demo_lint_good")
        try:

            @registry.register("fine")
            class Fine:
                def __init__(self, scale=1.0):
                    self.scale = scale

            checker = RegistryCompletenessChecker(families="demo_lint_good")
            assert list(checker.run(empty_project)) == []
        finally:
            Registry._families.pop("demo_lint_good", None)

    def test_skipped_outside_full_package_lint(self, empty_project):
        # Without an explicit family list and without repro/registry.py in
        # scope, the dynamic sweep must not run at all.
        assert list(RegistryCompletenessChecker().run(empty_project)) == []
