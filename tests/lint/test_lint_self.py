"""The lint suite applied to this repository itself."""

from __future__ import annotations

from pathlib import Path

from repro.lint.base import Project, SourceFile
from repro.lint.checkers.rng_discipline import RngDisciplineChecker
from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The Linear constructor as it shipped before this lint suite existed —
#: the exact defect rng-discipline exists to catch (``rng or default_rng()``
#: silently drew OS entropy per construction, and treated seed 0 as falsy).
PRE_FIX_LAYERS_SNIPPET = '''
import numpy as np

class Linear:
    def __init__(self, in_features, out_features, rng=None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng or np.random.default_rng()
        self.in_features = in_features
'''


def test_package_lints_clean():
    report = run_lint([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    details = "\n".join(finding.format() for finding in report.findings)
    assert report.exit_code == 0, f"repro lint found:\n{details}"
    # The one reviewed exception (the fork-inherited process-pool global)
    # rides in the committed baseline rather than passing silently.
    assert [f.rule for f in report.suppressed] == ["SHARE002"]


def test_rng_discipline_catches_the_pre_fix_layer_defaults():
    source = SourceFile.from_source(
        PRE_FIX_LAYERS_SNIPPET, rel="repro/nn/layers.py"
    )
    project = Project(root=REPO_ROOT, files=(source,))
    findings = list(RngDisciplineChecker().run(project))
    assert [finding.rule for finding in findings] == ["RNG001"]
    assert findings[0].context == "rng = rng or np.random.default_rng()"
