"""CLI surface of ``repro lint``: exit codes, formats, baseline flags."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_flagging_fixture_exits_one(capsys):
    code = main(
        ["lint", "--select", "rng-discipline", str(FIXTURES / "rng_flagging.py")]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "RNG001" in out


def test_clean_fixture_exits_zero(capsys):
    code = main(
        ["lint", "--select", "rng-discipline", str(FIXTURES / "rng_clean.py")]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_json_format(capsys):
    code = main(
        [
            "lint",
            "--select",
            "rng-discipline",
            "--format",
            "json",
            str(FIXTURES / "rng_flagging.py"),
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["checkers"] == ["rng-discipline"]


def test_misspelled_checker_exits_two_with_hint(capsys):
    code = main(["lint", "--select", "rng-dicipline", str(FIXTURES)])
    err = capsys.readouterr().err
    assert code == 2
    assert "did you mean 'rng-discipline'" in err


def test_list_checkers(capsys):
    assert main(["lint", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("rng-discipline", "wire-protocol-versioning", "RNG001", "WIRE002"):
        assert name in out


def test_write_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "rng_flagging.py")
    code = main(
        [
            "lint",
            "--select",
            "rng-discipline",
            "--baseline",
            str(baseline),
            "--write-baseline",
            target,
        ]
    )
    assert code == 0
    assert baseline.exists()
    assert "suppression(s)" in capsys.readouterr().out
    code = main(
        [
            "lint",
            "--select",
            "rng-discipline",
            "--baseline",
            str(baseline),
            target,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "suppressed by baseline" in out


def test_list_family_includes_checkers(capsys):
    assert main(["list", "checkers"]) == 0
    out = capsys.readouterr().out
    assert "rng-discipline" in out
