"""Tests for the perf-trajectory distiller (``benchmarks/record.py``)."""

from __future__ import annotations

import json

from benchmarks.record import distill, main


def _raw_report():
    return {
        "machine_info": {"machine": "x86_64", "cpu": {"count": 4}},
        "benchmarks": [
            {
                "name": "test_zeta",
                "stats": {"median": 0.25},
                "extra_info": {},
            },
            {
                "name": "test_alpha",
                "stats": {"median": 1.5},
                "extra_info": {"param_dim": 1_000_000, "rows": [{"x": 1}]},
            },
        ],
    }


class TestDistill:
    def test_rows_are_sorted_and_minimal(self):
        records = distill(_raw_report())
        assert records == [
            {"op": "test_alpha", "median": 1.5, "param_dim": 1_000_000},
            {"op": "test_zeta", "median": 0.25, "param_dim": None},
        ]

    def test_empty_report_distills_to_nothing(self):
        assert distill({"benchmarks": []}) == []

    def test_ledger_bytes_survive_distillation(self):
        raw = _raw_report()
        raw["benchmarks"][0]["extra_info"]["ledger_bytes"] = 123_456
        records = distill(raw)
        by_op = {r["op"]: r for r in records}
        assert by_op["test_zeta"]["ledger_bytes"] == 123_456
        # Benches without a ledger stay minimal — no null-padded key.
        assert "ledger_bytes" not in by_op["test_alpha"]


class TestMain:
    def test_writes_bench_record(self, tmp_path, capsys):
        report = tmp_path / "raw.json"
        report.write_text(json.dumps(_raw_report()))
        out = tmp_path / "BENCH_7.json"
        assert main([str(report), "--pr", "7", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["pr"] == 7
        assert payload["cpu_count"] == 4
        assert payload["machine"] == "x86_64"
        assert [r["op"] for r in payload["records"]] == ["test_alpha", "test_zeta"]
        assert "Wrote" in capsys.readouterr().out

    def test_default_output_name_carries_pr(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = tmp_path / "raw.json"
        report.write_text(json.dumps(_raw_report()))
        assert main([str(report), "--pr", "12"]) == 0
        assert json.loads((tmp_path / "BENCH_12.json").read_text())["pr"] == 12

    def test_empty_report_fails(self, tmp_path, capsys):
        report = tmp_path / "raw.json"
        report.write_text(json.dumps({"benchmarks": []}))
        assert main([str(report), "--pr", "4"]) == 2
        assert "no benchmarks" in capsys.readouterr().err


class TestCompare:
    def _baseline(self):
        return {
            "pr": 4,
            "cpu_count": 4,
            "records": [
                {"op": "test_alpha", "median": 1.0, "param_dim": 100},
                {"op": "test_gone", "median": 0.5, "param_dim": None},
            ],
        }

    def _fresh_report(self, alpha_median):
        return {
            "machine_info": {},
            "benchmarks": [
                {"name": "test_alpha", "stats": {"median": alpha_median}, "extra_info": {}},
                {"name": "test_new", "stats": {"median": 2.0}, "extra_info": {}},
            ],
        }

    def test_compare_rows_and_regressions(self):
        from benchmarks.record import compare, distill

        rows, regressions = compare(
            distill(self._fresh_report(1.5)), self._baseline()["records"], 0.25
        )
        by_op = {row["op"]: row for row in rows}
        assert by_op["test_alpha"]["delta"] == "+50.0%"
        assert by_op["test_new"]["delta"] == "new"
        assert by_op["test_gone"]["delta"] == "removed"
        assert regressions == ["test_alpha: +50.0% vs baseline"]

    def test_within_threshold_is_not_a_regression(self):
        from benchmarks.record import compare, distill

        _rows, regressions = compare(
            distill(self._fresh_report(1.2)), self._baseline()["records"], 0.25
        )
        assert regressions == []

    def test_compare_mode_warns_but_exits_zero(self, tmp_path, capsys):
        from benchmarks.record import main

        report = tmp_path / "raw.json"
        report.write_text(json.dumps(self._fresh_report(2.0)))
        baseline = tmp_path / "BENCH_4.json"
        baseline.write_text(json.dumps(self._baseline()))
        assert main(["compare", str(report), "--against", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "WARNING: perf regression test_alpha" in out
        assert "removed" in out and "new" in out

    def test_warn_pct_default_is_25(self, tmp_path, capsys):
        from benchmarks.record import main

        report = tmp_path / "raw.json"
        report.write_text(json.dumps(self._fresh_report(1.2)))
        baseline = tmp_path / "BENCH_4.json"
        baseline.write_text(json.dumps(self._baseline()))
        assert main(["compare", str(report), "--against", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" not in out
        assert "No regressions above 25%." in out

    def test_warn_pct_tightens_the_gate(self, tmp_path, capsys):
        from benchmarks.record import main

        report = tmp_path / "raw.json"
        report.write_text(json.dumps(self._fresh_report(1.2)))
        baseline = tmp_path / "BENCH_4.json"
        baseline.write_text(json.dumps(self._baseline()))
        rc = main(
            ["compare", str(report), "--against", str(baseline), "--warn-pct", "10"]
        )
        assert rc == 0
        assert "WARNING: perf regression test_alpha" in capsys.readouterr().out

    def test_deprecated_threshold_wins_over_warn_pct(self, tmp_path, capsys):
        from benchmarks.record import main

        report = tmp_path / "raw.json"
        report.write_text(json.dumps(self._fresh_report(1.2)))
        baseline = tmp_path / "BENCH_4.json"
        baseline.write_text(json.dumps(self._baseline()))
        rc = main(
            ["compare", str(report), "--against", str(baseline),
             "--warn-pct", "50", "--threshold", "0.1"]
        )
        assert rc == 0
        assert "WARNING: perf regression test_alpha" in capsys.readouterr().out

    def test_compare_against_latest_committed(self, tmp_path, capsys, monkeypatch):
        from benchmarks import record
        from benchmarks.record import main

        report = tmp_path / "raw.json"
        report.write_text(json.dumps(self._fresh_report(1.0)))
        (tmp_path / "BENCH_3.json").write_text(json.dumps({"records": [], "cpu_count": 1}))
        (tmp_path / "BENCH_11.json").write_text(json.dumps(self._baseline()))
        found = record.latest_committed_record(tmp_path)
        assert found[0] == 11
        assert main(["compare", str(report), "--against", str(tmp_path / "BENCH_11.json")]) == 0
        assert "No regressions" in capsys.readouterr().out


class TestCompareGracefulDegrade:
    """``compare`` must degrade to a notice + exit 0 when there is nothing
    usable to compare against — CI runs it unconditionally, so a thin or
    missing trajectory must never fail the build."""

    def _fresh(self, tmp_path):
        report = tmp_path / "raw.json"
        report.write_text(
            json.dumps(
                {
                    "machine_info": {},
                    "benchmarks": [
                        {"name": "test_a", "stats": {"median": 1.0}, "extra_info": {}}
                    ],
                }
            )
        )
        return report

    def test_missing_against_file_skips_cleanly(self, tmp_path, capsys):
        report = self._fresh(tmp_path)
        missing = tmp_path / "BENCH_99.json"
        assert main(["compare", str(report), "--against", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "does not exist" in out and "skipping" in out

    def test_empty_records_baseline_skips_cleanly(self, tmp_path, capsys):
        report = self._fresh(tmp_path)
        for payload in ({"records": []}, {"pr": 3, "cpu_count": 1}):
            baseline = tmp_path / "BENCH_3.json"
            baseline.write_text(json.dumps(payload))
            assert main(["compare", str(report), "--against", str(baseline)]) == 0
            out = capsys.readouterr().out
            assert "records no benchmarks" in out and "skipping" in out

    def test_no_committed_trajectory_skips_cleanly(self, tmp_path, capsys, monkeypatch):
        from benchmarks import record

        report = self._fresh(tmp_path)
        monkeypatch.setattr(record, "latest_committed_record", lambda root: None)
        assert main(["compare", str(report)]) == 0
        assert "no committed BENCH" in capsys.readouterr().out
