"""Tests for the perf-trajectory distiller (``benchmarks/record.py``)."""

from __future__ import annotations

import json

from benchmarks.record import distill, main


def _raw_report():
    return {
        "machine_info": {"machine": "x86_64", "cpu": {"count": 4}},
        "benchmarks": [
            {
                "name": "test_zeta",
                "stats": {"median": 0.25},
                "extra_info": {},
            },
            {
                "name": "test_alpha",
                "stats": {"median": 1.5},
                "extra_info": {"param_dim": 1_000_000, "rows": [{"x": 1}]},
            },
        ],
    }


class TestDistill:
    def test_rows_are_sorted_and_minimal(self):
        records = distill(_raw_report())
        assert records == [
            {"op": "test_alpha", "median": 1.5, "param_dim": 1_000_000},
            {"op": "test_zeta", "median": 0.25, "param_dim": None},
        ]

    def test_empty_report_distills_to_nothing(self):
        assert distill({"benchmarks": []}) == []


class TestMain:
    def test_writes_bench_record(self, tmp_path, capsys):
        report = tmp_path / "raw.json"
        report.write_text(json.dumps(_raw_report()))
        out = tmp_path / "BENCH_7.json"
        assert main([str(report), "--pr", "7", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["pr"] == 7
        assert payload["cpu_count"] == 4
        assert payload["machine"] == "x86_64"
        assert [r["op"] for r in payload["records"]] == ["test_alpha", "test_zeta"]
        assert "Wrote" in capsys.readouterr().out

    def test_default_output_name_carries_pr(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        report = tmp_path / "raw.json"
        report.write_text(json.dumps(_raw_report()))
        assert main([str(report), "--pr", "12"]) == 0
        assert json.loads((tmp_path / "BENCH_12.json").read_text())["pr"] == 12

    def test_empty_report_fails(self, tmp_path, capsys):
        report = tmp_path / "raw.json"
        report.write_text(json.dumps({"benchmarks": []}))
        assert main([str(report), "--pr", "4"]) == 2
        assert "no benchmarks" in capsys.readouterr().err
