"""Unit tests for the unified component registries."""

from __future__ import annotations

import pytest

from repro.registry import (
    ALGORITHMS,
    ATTACKS,
    BACKENDS,
    DATASETS,
    DEFENSES,
    MODELS,
    TRIGGERS,
    ParamSpec,
    Registry,
    parse_literal,
    parse_spec,
)


class TestParseLiteral:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("3", 3),
            ("0.5", 0.5),
            ("-2", -2),
            ("true", True),
            ("False", False),
            ("null", None),
            ("none", None),
            ("'quoted'", "quoted"),
            ("warping", "warping"),
            ("(1, 2)", (1, 2)),
        ],
    )
    def test_values(self, text, expected):
        assert parse_literal(text) == expected


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("krum") == ("krum", {})

    def test_spec_string_with_typed_kwargs(self):
        name, kwargs = parse_spec("krum:num_malicious=2,multi=3")
        assert name == "krum"
        assert kwargs == {"num_malicious": 2, "multi": 3}

    def test_spec_string_float_and_none(self):
        _, kwargs = parse_spec("norm_bound:max_norm=2.0,noise_std=none")
        assert kwargs == {"max_norm": 2.0, "noise_std": None}

    def test_spec_string_compound_literals_keep_inner_commas(self):
        _, kwargs = parse_spec("mlp:hidden=(64,32),seed=1")
        assert kwargs == {"hidden": (64, 32), "seed": 1}
        _, kwargs = parse_spec("widget:items=[1,2,3],label='a,b'")
        assert kwargs == {"items": [1, 2, 3], "label": "a,b"}

    def test_tuple_form(self):
        assert parse_spec(("dp", {"clip_norm": 1.0})) == ("dp", {"clip_norm": 1.0})

    def test_list_form_from_json(self):
        assert parse_spec(["dp", {"clip_norm": 1.0}]) == ("dp", {"clip_norm": 1.0})

    def test_dict_form(self):
        assert parse_spec({"name": "dp", "clip_norm": 1.0}) == ("dp", {"clip_norm": 1.0})

    def test_dict_form_nested_kwargs(self):
        assert parse_spec({"name": "dp", "kwargs": {"clip_norm": 1.0}}) == (
            "dp",
            {"clip_norm": 1.0},
        )

    @pytest.mark.parametrize(
        "bad", ["", ":k=1", "krum:novalue", "krum:,", ("krum", {}, "extra"), {"k": 1}]
    )
    def test_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            parse_spec(42)


class TestRegistry:
    def _fresh(self):
        registry = Registry("widget")
        Registry._families.pop("widget", None)  # keep the global table clean
        return registry

    def test_decorator_registration_and_create(self):
        registry = self._fresh()

        @registry.register("simple")
        class Simple:
            def __init__(self, size: int = 3):
                self.size = size

        assert registry.names() == ["simple"]
        assert "simple" in registry
        built = registry.create("simple:size=5")
        assert isinstance(built, Simple) and built.size == 5

    def test_duplicate_registration_rejected(self):
        registry = self._fresh()
        registry.register("dup")(object)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup")(object)
        registry.register("dup", overwrite=True)(int)  # explicit overwrite ok

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'krum'"):
            DEFENSES.get("krun")

    def test_misspelled_backend_suggests_batched(self):
        # What `--backend bacthed` surfaces through the CLI error path.
        with pytest.raises(ValueError, match="did you mean 'batched'"):
            BACKENDS.get("bacthed")

    def test_unknown_kwarg_lists_accepted_params(self):
        with pytest.raises(ValueError, match="accepted: num_malicious, multi"):
            DEFENSES.create("krum:bogus=1")

    def test_spec_kwargs_override_common_kwargs(self):
        krum = DEFENSES.create("krum:multi=4", num_malicious=2, multi=1)
        assert krum.num_malicious == 2
        assert krum.multi == 4

    def test_describe_returns_param_metadata(self):
        params = {p.name: p for p in DEFENSES.describe("krum")}
        assert set(params) == {"num_malicious", "multi"}
        assert params["multi"].default == 1
        assert not params["multi"].required
        assert str(params["multi"]) == "multi=1"

    def test_required_param_spec_rendering(self):
        spec = ParamSpec(name="image_size", required=True)
        assert str(spec) == "image_size (required)"


class TestFamilies:
    def test_all_families_registered(self):
        assert {
            "dataset",
            "model",
            "algorithm",
            "attack",
            "trigger",
            "defense",
            "backend",
        } <= set(Registry.families())

    def test_family_lookup_accepts_plural(self):
        assert Registry.family("defenses") is DEFENSES
        assert Registry.family("defense") is DEFENSES

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown component family"):
            Registry.family("gizmos")

    @pytest.mark.parametrize(
        "registry,expected",
        [
            (DATASETS, {"femnist", "sentiment"}),
            (MODELS, {"mlp", "lenet", "text"}),
            (ALGORITHMS, {"fedavg", "feddc", "metafed"}),
            (ATTACKS, {"collapois", "dpois", "mrepl", "dba"}),
            (TRIGGERS, {"warping", "patch", "token"}),
            (BACKENDS, {"serial", "thread", "process", "batched", "distributed"}),
        ],
    )
    def test_family_members(self, registry, expected):
        assert expected <= set(registry.names())

    def test_defense_catalogue_matches_table_one(self):
        # Table I plus the example-weighted FedAvg variant (weighted_mean).
        assert set(DEFENSES.names()) == {
            "mean",
            "weighted_mean",
            "krum",
            "median",
            "trimmed_mean",
            "norm_bound",
            "dp",
            "rlr",
            "signsgd",
            "flare",
            "crfl",
            "detector",
        }
