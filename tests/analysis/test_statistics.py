"""Unit tests for the statistical-test battery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    gradient_indistinguishability,
    ks_test,
    levene_test,
    three_sigma_outliers,
    two_sample_t_test,
)


class TestIndividualTests:
    def test_t_test_detects_mean_shift(self, rng):
        a = rng.normal(0.0, 1.0, size=200)
        b = rng.normal(3.0, 1.0, size=200)
        _, p = two_sample_t_test(a, b)
        assert p < 0.01

    def test_t_test_same_distribution_not_significant(self, rng):
        a = rng.normal(0.0, 1.0, size=200)
        b = rng.normal(0.0, 1.0, size=200)
        _, p = two_sample_t_test(a, b)
        assert p > 0.01

    def test_levene_detects_variance_shift(self, rng):
        a = rng.normal(0.0, 1.0, size=300)
        b = rng.normal(0.0, 5.0, size=300)
        _, p = levene_test(a, b)
        assert p < 0.01

    def test_ks_detects_distribution_shift(self, rng):
        a = rng.normal(0.0, 1.0, size=300)
        b = rng.exponential(1.0, size=300)
        _, p = ks_test(a, b)
        assert p < 0.01

    def test_tiny_samples_return_neutral_pvalue(self):
        assert two_sample_t_test(np.array([1.0]), np.array([2.0]))[1] == 1.0
        assert levene_test(np.array([1.0]), np.array([2.0]))[1] == 1.0


class TestThreeSigma:
    def test_flags_extreme_value(self, rng):
        reference = rng.normal(0, 1, size=500)
        values = np.array([0.0, 10.0])
        flags = three_sigma_outliers(values, reference)
        assert not flags[0] and flags[1]

    def test_constant_reference(self):
        flags = three_sigma_outliers(np.array([1.0, 2.0]), np.array([1.0, 1.0, 1.0]))
        assert not flags[0] and flags[1]

    def test_empty_reference(self):
        flags = three_sigma_outliers(np.array([1.0]), np.zeros(0))
        assert not flags[0]


class TestIndistinguishability:
    def test_blended_malicious_stats_pass(self, rng):
        benign = rng.normal(0.5, 0.1, size=300)
        malicious = rng.normal(0.5, 0.1, size=40)
        report = gradient_indistinguishability(malicious, benign)
        assert not report["distinguishable"]
        assert report["three_sigma_outlier_fraction"] < 0.1

    def test_obvious_malicious_stats_fail(self, rng):
        benign = rng.normal(0.5, 0.1, size=300)
        malicious = rng.normal(3.0, 0.1, size=40)
        report = gradient_indistinguishability(malicious, benign)
        assert report["distinguishable"]
        assert report["three_sigma_outlier_fraction"] > 0.9

    def test_report_keys(self, rng):
        report = gradient_indistinguishability(rng.normal(size=20), rng.normal(size=20))
        assert {"t_test_p", "levene_p", "ks_p",
                "three_sigma_outlier_fraction", "distinguishable"} <= set(report)
