"""Unit tests for the baseline attacks (DPois, MRepl, DBA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import AttackContext, BackdoorAttack
from repro.attacks.dba import DBAAttack
from repro.attacks.dpois import DPoisAttack
from repro.attacks.mrepl import MReplAttack
from repro.attacks.triggers import PixelPatchTrigger
from repro.federated.client import LocalTrainingConfig
from repro.nn.serialization import flatten_params


@pytest.fixture()
def trigger(femnist_generator):
    return PixelPatchTrigger(image_size=femnist_generator.image_size, patch_size=2)


@pytest.fixture()
def local_config():
    return LocalTrainingConfig(epochs=1, batch_size=8, lr=0.05)


def _setup(attack, federation, factory, trigger, local_config, compromised=(0, 1)):
    attack.setup(federation, list(compromised), factory, trigger, target_class=0,
                 local_config=local_config, seed=0)
    return attack


class TestAttackContext:
    def test_requires_compromised_clients(self, small_federation, trigger, local_config):
        with pytest.raises(ValueError):
            AttackContext(small_federation, [], trigger, 0, local_config)

    def test_target_class_validated(self, small_federation, trigger, local_config):
        with pytest.raises(ValueError):
            AttackContext(small_federation, [0], trigger, 99, local_config)

    def test_base_attack_requires_setup(self):
        attack = BackdoorAttack()
        with pytest.raises(RuntimeError):
            attack._require_context()


class TestDPois:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DPoisAttack(poison_fraction=0.0)

    def test_poisoned_datasets_are_larger_than_clean(
        self, small_federation, image_model_factory, trigger, local_config
    ):
        attack = _setup(DPoisAttack(), small_federation, image_model_factory, trigger, local_config)
        for client_id in (0, 1):
            clean = small_federation.client(client_id).train
            assert len(attack._poisoned_data[client_id]) > len(clean)

    def test_update_shape_and_nonzero(
        self, small_federation, image_model_factory, trigger, local_config, rng
    ):
        attack = _setup(DPoisAttack(), small_federation, image_model_factory, trigger, local_config)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update = attack.compute_update(0, global_params, 0, model, rng)
        assert update.shape == global_params.shape
        assert np.abs(update).sum() > 0

    def test_non_compromised_client_rejected(
        self, small_federation, image_model_factory, trigger, local_config, rng
    ):
        attack = _setup(DPoisAttack(), small_federation, image_model_factory, trigger, local_config)
        model = image_model_factory()
        with pytest.raises(KeyError):
            attack.compute_update(5, flatten_params(model), 0, model, rng)


class TestMRepl:
    def test_trains_trojan_model(self, small_federation, image_model_factory, trigger, local_config):
        attack = _setup(MReplAttack(trojan_epochs=3), small_federation, image_model_factory,
                        trigger, local_config)
        assert attack.trojan_params is not None
        assert attack.trojan_params.shape == flatten_params(image_model_factory()).shape

    def test_boosted_update_points_at_trojan(
        self, small_federation, image_model_factory, trigger, local_config, rng
    ):
        attack = _setup(MReplAttack(boost_factor=4.0, trojan_epochs=3), small_federation,
                        image_model_factory, trigger, local_config)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update = attack.compute_update(0, global_params, 0, model, rng)
        np.testing.assert_allclose(update, 4.0 * (attack.trojan_params - global_params))

    def test_single_shot_budget(self, small_federation, image_model_factory, trigger,
                                local_config, rng):
        attack = _setup(MReplAttack(boost_factor=2.0, trojan_epochs=3, num_shots=1),
                        small_federation, image_model_factory, trigger, local_config)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        first = attack.compute_update(0, global_params, 0, model, rng)
        assert np.abs(first).sum() > 0
        # Same round: still attacking; later round: budget spent.
        same_round = attack.compute_update(1, global_params, 0, model, rng)
        assert np.abs(same_round).sum() > 0
        later = attack.compute_update(0, global_params, 3, model, rng)
        assert np.allclose(later, 0.0)

    def test_waits_until_attack_round(self, small_federation, image_model_factory, trigger,
                                      local_config, rng):
        attack = _setup(MReplAttack(boost_factor=2.0, trojan_epochs=3, attack_round=5),
                        small_federation, image_model_factory, trigger, local_config)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        assert np.allclose(attack.compute_update(0, global_params, 0, model, rng), 0.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MReplAttack(boost_factor=0.0)
        with pytest.raises(ValueError):
            MReplAttack(num_shots=0)


class TestDBA:
    def test_sub_triggers_partition_patch(self, small_federation, image_model_factory,
                                          trigger, local_config):
        attack = _setup(DBAAttack(num_parts=2), small_federation, image_model_factory,
                        trigger, local_config, compromised=(0, 1))
        masks = [attack._sub_triggers[c].mask for c in (0, 1)]
        combined = masks[0].astype(int) + masks[1].astype(int)
        np.testing.assert_array_equal(combined, trigger.mask.astype(int))

    def test_update_nonzero(self, small_federation, image_model_factory, trigger,
                            local_config, rng):
        attack = _setup(DBAAttack(), small_federation, image_model_factory, trigger, local_config)
        model = image_model_factory()
        global_params = flatten_params(image_model_factory())
        update = attack.compute_update(1, global_params, 0, model, rng)
        assert np.abs(update).sum() > 0

    def test_non_patch_trigger_falls_back_to_full_trigger(
        self, small_federation, image_model_factory, local_config
    ):
        from repro.attacks.triggers import WarpingTrigger

        warping = WarpingTrigger(image_size=12, strength=1.0)
        attack = _setup(DBAAttack(num_parts=2), small_federation, image_model_factory,
                        warping, local_config)
        assert attack._sub_triggers[0] is warping

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DBAAttack(poison_fraction=1.5)
