"""Unit and property-based tests for the trigger library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.triggers import (
    PixelPatchTrigger,
    TokenTrigger,
    WarpingTrigger,
    poison_dataset,
)
from repro.data.dataset import Dataset


class TestWarpingTrigger:
    def test_output_shape_preserved(self, rng):
        trigger = WarpingTrigger(image_size=12, strength=1.0)
        x = rng.random((3, 1, 12, 12))
        assert trigger.apply(x).shape == x.shape

    def test_is_deterministic(self, rng):
        trigger = WarpingTrigger(image_size=12, strength=1.0, seed=5)
        x = rng.random((2, 1, 12, 12))
        np.testing.assert_allclose(trigger.apply(x), trigger.apply(x))

    def test_same_seed_same_field(self, rng):
        a = WarpingTrigger(image_size=12, strength=1.0, seed=3)
        b = WarpingTrigger(image_size=12, strength=1.0, seed=3)
        np.testing.assert_allclose(a.displacement, b.displacement)

    def test_modification_is_small_but_nonzero(self, rng):
        trigger = WarpingTrigger(image_size=12, strength=0.5)
        x = rng.random((4, 1, 12, 12))
        out = trigger.apply(x)
        diff = np.abs(out - x).mean()
        assert 0.0 < diff < 0.3

    def test_zero_strength_is_identity(self, rng):
        trigger = WarpingTrigger(image_size=12, strength=0.0)
        x = rng.random((2, 1, 12, 12))
        np.testing.assert_allclose(trigger.apply(x), x, atol=1e-12)

    def test_does_not_modify_input(self, rng):
        trigger = WarpingTrigger(image_size=12, strength=1.0)
        x = rng.random((2, 1, 12, 12))
        snapshot = x.copy()
        trigger.apply(x)
        np.testing.assert_allclose(x, snapshot)

    def test_size_mismatch_raises(self, rng):
        trigger = WarpingTrigger(image_size=12)
        with pytest.raises(ValueError):
            trigger.apply(rng.random((1, 1, 16, 16)))

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            WarpingTrigger(image_size=2)
        with pytest.raises(ValueError):
            WarpingTrigger(image_size=12, strength=-1.0)


class TestPixelPatchTrigger:
    def test_patch_sets_corner_pixels(self):
        trigger = PixelPatchTrigger(image_size=8, patch_size=2, value=1.0, corner="top-left")
        x = np.zeros((1, 1, 8, 8))
        out = trigger.apply(x)
        assert out[0, 0, :2, :2].min() == 1.0
        assert out[0, 0, 2:, 2:].max() == 0.0

    @pytest.mark.parametrize("corner", ["top-left", "top-right", "bottom-left", "bottom-right"])
    def test_all_corners_modify_expected_number_of_pixels(self, corner):
        trigger = PixelPatchTrigger(image_size=8, patch_size=3, corner=corner)
        x = np.zeros((1, 1, 8, 8))
        assert trigger.apply(x).sum() == 9.0

    def test_split_partitions_mask(self):
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        parts = trigger.split(4)
        assert len(parts) == 4
        combined = np.zeros((2, 2), dtype=int)
        for part in parts:
            combined += part.mask.astype(int)
        np.testing.assert_array_equal(combined, np.ones((2, 2), dtype=int))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PixelPatchTrigger(image_size=8, patch_size=0)
        with pytest.raises(ValueError):
            PixelPatchTrigger(image_size=8, patch_size=2, corner="middle")
        with pytest.raises(ValueError):
            PixelPatchTrigger(image_size=8, patch_size=2, mask=np.ones((3, 3), dtype=bool))


class TestTokenTrigger:
    def test_adds_embedding(self, rng):
        embedding = rng.normal(size=6)
        trigger = TokenTrigger(embedding, scale=2.0)
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(trigger.apply(x), x + 2.0 * embedding)

    def test_dimension_mismatch_raises(self, rng):
        trigger = TokenTrigger(rng.normal(size=6))
        with pytest.raises(ValueError):
            trigger.apply(rng.normal(size=(2, 5)))

    def test_requires_1d_embedding(self, rng):
        with pytest.raises(ValueError):
            TokenTrigger(rng.normal(size=(2, 3)))


class TestPoisonDataset:
    def _clean(self, n=10, rng=None):
        rng = rng or np.random.default_rng(0)
        return Dataset(rng.random((n, 1, 8, 8)), rng.integers(1, 4, size=n))

    def test_keep_clean_appends_poisoned_samples(self, rng):
        data = self._clean(10, rng)
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        poisoned = poison_dataset(data, trigger, target_class=0, poison_fraction=0.5, rng=rng)
        assert len(poisoned) == 15
        assert (poisoned.y[-5:] == 0).all()

    def test_without_clean_keeps_only_poisoned(self, rng):
        data = self._clean(10, rng)
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        poisoned = poison_dataset(
            data, trigger, target_class=0, poison_fraction=1.0, rng=rng, keep_clean=False
        )
        assert len(poisoned) == 10
        assert (poisoned.y == 0).all()

    def test_empty_dataset_passthrough(self, rng):
        empty = Dataset(np.zeros((0, 1, 8, 8)), np.zeros(0, dtype=np.int64))
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        assert len(poison_dataset(empty, trigger, 0)) == 0

    def test_invalid_fraction(self, rng):
        data = self._clean(4, rng)
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        with pytest.raises(ValueError):
            poison_dataset(data, trigger, 0, poison_fraction=0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        fraction=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_poisoned_count_property(self, fraction, n, seed):
        """The poisoned set always contains round(fraction·n) ≥ 1 triggered samples."""
        rng = np.random.default_rng(seed)
        data = Dataset(rng.random((n, 1, 8, 8)), rng.integers(0, 3, size=n))
        trigger = PixelPatchTrigger(image_size=8, patch_size=2)
        poisoned = poison_dataset(data, trigger, target_class=1,
                                  poison_fraction=fraction, rng=rng)
        expected = max(1, int(round(fraction * n)))
        assert len(poisoned) == n + expected
        assert (poisoned.y[n:] == 1).all()
