"""Warning hygiene: repro's deprecation shims must stay deliberate.

``pytest.ini`` escalates every ``DeprecationWarning`` raised *from repro
modules* to an error, so a stray shim-path call anywhere in the suite fails
loudly instead of scrolling by.  These tests pin the two sides of that
contract: importing and exercising the supported API emits no deprecation
warnings at all, while the documented legacy entry points still warn (inside
``pytest.warns``, which the filter permits).
"""

from __future__ import annotations

import importlib
import pkgutil
import warnings

import numpy as np
import pytest

import repro


def test_importing_every_repro_module_is_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing an entry-point module runs its CLI
            importlib.import_module(info.name)


def test_supported_aggregation_path_is_warning_free(rng):
    from repro.defenses.base import AggregationContext, MeanAggregator

    updates = rng.normal(size=(3, 8))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        MeanAggregator()(updates, np.zeros(8), AggregationContext.from_rng(rng))


def test_legacy_rng_aggregation_is_a_hard_error(rng):
    # The PR 1-era bare-Generator shim graduated from DeprecationWarning to
    # TypeError; the message must point at the replacement.
    from repro.defenses.base import MeanAggregator

    updates = rng.normal(size=(3, 8))
    with pytest.raises(TypeError, match="AggregationContext.from_rng"):
        MeanAggregator()(updates, np.zeros(8), rng)


def test_legacy_sample_clients_still_warns(rng):
    from repro.federated.sampling import sample_clients

    with pytest.warns(DeprecationWarning, match="uniform_sample"):
        sampled = sample_clients(30, sample_rate=0.5, rng=rng)
    assert sampled.size >= 2


def test_legacy_server_config_scalars_still_warn():
    from repro.federated.server import ServerConfig

    with pytest.warns(DeprecationWarning, match="participation"):
        config = ServerConfig(sample_rate=0.25)
    assert config.participation_spec() == ("uniform", {"sample_rate": 0.25})
