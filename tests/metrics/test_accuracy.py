"""Unit tests for Benign AC / Attack SR evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.triggers import PixelPatchTrigger, poison_dataset
from repro.core.trojan import train_trojan_model
from repro.metrics.accuracy import ClientEvaluation, evaluate_clients, evaluate_global_model
from repro.nn.serialization import flatten_params


class TestClientEvaluation:
    def test_mean_properties(self):
        evaluation = ClientEvaluation(
            benign_accuracy=np.array([1.0, 0.5]),
            attack_success_rate=np.array([0.0, 0.5]),
            client_ids=[0, 1],
        )
        assert evaluation.mean_benign_accuracy == pytest.approx(0.75)
        assert evaluation.mean_attack_success_rate == pytest.approx(0.25)
        assert set(evaluation.as_dict()) == {"benign_accuracy", "attack_success_rate"}

    def test_empty_evaluation(self):
        evaluation = ClientEvaluation(np.zeros(0), np.zeros(0))
        assert evaluation.mean_benign_accuracy == 0.0


class TestEvaluateClients:
    def test_random_model_has_low_benign_accuracy(self, small_federation, image_model_factory):
        model = image_model_factory()
        params = flatten_params(image_model_factory())
        evaluation = evaluate_global_model(small_federation, model, params)
        assert 0.0 <= evaluation.mean_benign_accuracy <= 1.0

    def test_trojaned_model_scores_high_attack_sr(self, small_federation, image_model_factory, rng):
        trigger = PixelPatchTrigger(image_size=12, patch_size=3)
        aux = small_federation.auxiliary_dataset(list(range(4)), source="all")
        poisoned = poison_dataset(aux, trigger, target_class=0, poison_fraction=0.8, rng=rng)
        trojan = train_trojan_model(image_model_factory, poisoned, epochs=20, lr=0.08, seed=0)
        model = image_model_factory()
        evaluation = evaluate_global_model(
            small_federation, model, trojan, trigger=trigger, target_class=0
        )
        assert evaluation.mean_attack_success_rate > 0.5
        assert evaluation.mean_benign_accuracy > 0.4

    def test_client_subset_is_respected(self, small_federation, image_model_factory):
        model = image_model_factory()
        params = flatten_params(image_model_factory())
        evaluation = evaluate_global_model(small_federation, model, params, client_ids=[1, 3])
        assert evaluation.client_ids == [1, 3]
        assert evaluation.benign_accuracy.shape == (2,)

    def test_max_test_samples_cap(self, small_federation, image_model_factory):
        model = image_model_factory()
        params = flatten_params(image_model_factory())
        capped = evaluate_global_model(small_federation, model, params, max_test_samples=1)
        assert capped.benign_accuracy.shape[0] == small_federation.num_clients

    def test_per_client_params_fn_is_used(self, small_federation, image_model_factory):
        model = image_model_factory()
        base = flatten_params(image_model_factory())
        calls = []

        def params_fn(client_id):
            calls.append(client_id)
            return base

        evaluate_clients(small_federation, model, params_fn)
        assert calls == list(range(small_federation.num_clients))

    def test_attack_sr_excludes_target_class_samples(self, small_federation, image_model_factory):
        """Clients whose test data is entirely the target class contribute 0 Attack SR."""
        model = image_model_factory()
        params = flatten_params(image_model_factory())
        trigger = PixelPatchTrigger(image_size=12, patch_size=2)
        evaluation = evaluate_global_model(
            small_federation, model, params, trigger=trigger, target_class=0
        )
        for pos, client_id in enumerate(evaluation.client_ids):
            client = small_federation.client(client_id)
            if np.all(client.test.y == 0):
                assert evaluation.attack_success_rate[pos] == 0.0
