"""Unit tests for the client-level scoring and clustering (Eq. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import ClientEvaluation
from repro.metrics.client_level import (
    client_scores,
    cluster_clients_by_score,
    cluster_metrics,
    top_k_metrics,
)


@pytest.fixture()
def evaluation():
    # 10 clients with decreasing attack success and constant benign accuracy.
    benign = np.full(10, 0.8)
    attack = np.linspace(1.0, 0.1, 10)
    return ClientEvaluation(benign, attack, client_ids=list(range(10)))


class TestScores:
    def test_score_is_sum_of_metrics(self, evaluation):
        scores = client_scores(evaluation)
        np.testing.assert_allclose(scores, evaluation.benign_accuracy + evaluation.attack_success_rate)


class TestTopK:
    def test_top_10_percent_is_most_affected_client(self, evaluation):
        metrics = top_k_metrics(evaluation, 10.0)
        assert metrics["num_clients"] == 1
        assert metrics["attack_success_rate"] == pytest.approx(1.0)

    def test_top_100_percent_is_population_average(self, evaluation):
        metrics = top_k_metrics(evaluation, 100.0)
        assert metrics["attack_success_rate"] == pytest.approx(evaluation.mean_attack_success_rate)

    def test_top_k_is_monotone_in_k(self, evaluation):
        top_small = top_k_metrics(evaluation, 20.0)["attack_success_rate"]
        top_large = top_k_metrics(evaluation, 80.0)["attack_success_rate"]
        assert top_small >= top_large

    def test_invalid_k(self, evaluation):
        with pytest.raises(ValueError):
            top_k_metrics(evaluation, 0.0)
        with pytest.raises(ValueError):
            top_k_metrics(evaluation, 150.0)

    def test_empty_evaluation(self):
        empty = ClientEvaluation(np.zeros(0), np.zeros(0))
        assert top_k_metrics(empty, 25.0)["num_clients"] == 0


class TestClusters:
    def test_clusters_are_disjoint_and_complete(self, evaluation):
        clusters = cluster_clients_by_score(evaluation, boundaries=(10.0, 50.0))
        all_members = np.concatenate(list(clusters.values()))
        assert sorted(all_members.tolist()) == list(range(10))
        assert len(all_members) == len(set(all_members.tolist()))

    def test_top_cluster_has_highest_attack_sr(self, evaluation):
        clusters = cluster_clients_by_score(evaluation, boundaries=(10.0, 50.0))
        metrics = cluster_metrics(evaluation, clusters)
        assert metrics["top10%"]["attack_success_rate"] >= metrics["top50%"]["attack_success_rate"]
        assert metrics["top50%"]["attack_success_rate"] >= metrics["bottom"]["attack_success_rate"]

    def test_cluster_sizes_match_boundaries(self, evaluation):
        clusters = cluster_clients_by_score(evaluation, boundaries=(10.0, 50.0))
        assert clusters["top10%"].size == 1
        assert clusters["top50%"].size == 4
        assert clusters["bottom"].size == 5

    def test_empty_cluster_metrics(self):
        evaluation = ClientEvaluation(np.array([0.5]), np.array([0.5]), client_ids=[0])
        clusters = {"top": np.array([0]), "rest": np.zeros(0, dtype=int)}
        metrics = cluster_metrics(evaluation, clusters)
        assert metrics["rest"]["num_clients"] == 0
