"""Unit and property-based tests for gradient-angle and similarity metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.gradients import (
    aggregate_angle_to_group,
    angle_between,
    angle_summary,
    angles_to_reference,
    pairwise_angles,
)
from repro.metrics.similarity import cluster_similarity, cumulative_label_cosine


class TestAngleBetween:
    def test_orthogonal_vectors(self):
        assert angle_between([1, 0], [0, 1]) == pytest.approx(np.pi / 2)

    def test_parallel_vectors(self):
        assert angle_between([1, 2], [2, 4]) == pytest.approx(0.0, abs=1e-6)

    def test_opposite_vectors(self):
        assert angle_between([1, 0], [-1, 0]) == pytest.approx(np.pi)

    def test_zero_vector_returns_zero(self):
        assert angle_between([0, 0], [1, 1]) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5000),
        dim=st.integers(min_value=2, max_value=30),
    )
    def test_angle_properties(self, seed, dim):
        """Angles are symmetric and within [0, π]."""
        rng = np.random.default_rng(seed)
        u, v = rng.normal(size=dim), rng.normal(size=dim)
        a = angle_between(u, v)
        assert 0.0 <= a <= np.pi + 1e-12
        assert a == pytest.approx(angle_between(v, u))


class TestPairwiseAngles:
    def test_count_is_n_choose_2(self, rng):
        updates = rng.normal(size=(5, 8))
        assert pairwise_angles(updates).shape == (10,)

    def test_single_row_yields_empty(self, rng):
        assert pairwise_angles(rng.normal(size=(1, 8))).size == 0

    def test_identical_rows_have_zero_angles(self):
        updates = np.tile(np.arange(1, 5, dtype=float), (3, 1))
        np.testing.assert_allclose(pairwise_angles(updates), 0.0, atol=1e-6)

    def test_angles_to_reference_shape(self, rng):
        updates = rng.normal(size=(4, 6))
        assert angles_to_reference(updates, rng.normal(size=6)).shape == (4,)

    def test_aggregate_angle_to_group(self, rng):
        benign = rng.normal(size=(4, 6))
        malicious = np.stack([np.ones(6), 0.9 * np.ones(6)])
        betas = aggregate_angle_to_group(benign, malicious)
        expected = angles_to_reference(benign, malicious.sum(axis=0))
        np.testing.assert_allclose(betas, expected)

    def test_angle_summary_keys(self, rng):
        summary = angle_summary(rng.normal(size=(4, 6)))
        assert set(summary) == {"mean", "std", "max"}
        empty = angle_summary(rng.normal(size=(1, 6)))
        assert empty["mean"] == 0.0


class TestSimilarity:
    def test_identical_distributions_have_similarity_one(self):
        counts = np.array([3, 4, 5])
        assert cumulative_label_cosine(counts, counts) == pytest.approx(1.0)

    def test_similarity_decreases_with_divergence(self):
        aux = np.array([10, 0, 0])
        close = np.array([9, 1, 0])
        far = np.array([0, 0, 10])
        assert cumulative_label_cosine(close, aux) > cumulative_label_cosine(far, aux)

    def test_zero_counts_give_zero(self):
        assert cumulative_label_cosine(np.zeros(3), np.array([1, 1, 1])) == 0.0

    def test_cluster_similarity_averages_members(self):
        client_counts = np.array([[10, 0], [0, 10], [5, 5]])
        aux = np.array([10, 0])
        clusters = {"close": np.array([0]), "far": np.array([1]), "empty": np.zeros(0, dtype=int)}
        sims = cluster_similarity(client_counts, aux, clusters)
        assert sims["close"] > sims["far"]
        assert sims["empty"] == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2000))
    def test_similarity_bounded(self, seed):
        """Cosine of cumulative label distributions always lies in [0, 1]."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 20, size=6)
        b = rng.integers(0, 20, size=6)
        sim = cumulative_label_cosine(a, b)
        assert -1e-9 <= sim <= 1.0 + 1e-9
