"""Unit tests for the Dataset container and split utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_val_split


def _toy_dataset(n=20, dim=4, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, dim)), rng.integers(0, classes, size=n))


class TestDataset:
    def test_length_and_shapes(self):
        data = _toy_dataset(15)
        assert len(data) == 15

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_labels_must_be_1d(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int))

    def test_subset_selects_rows(self):
        data = _toy_dataset(10)
        sub = data.subset(np.array([0, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.x[1], data.x[3])

    def test_shuffled_preserves_multiset(self, rng):
        data = _toy_dataset(12)
        shuffled = data.shuffled(rng)
        assert sorted(shuffled.y.tolist()) == sorted(data.y.tolist())

    def test_batches_cover_all_samples(self, rng):
        data = _toy_dataset(11)
        total = sum(len(by) for _, by in data.batches(4, rng=rng))
        assert total == 11

    def test_batches_rejects_nonpositive_size(self):
        data = _toy_dataset(5)
        with pytest.raises(ValueError):
            list(data.batches(0))

    def test_class_counts(self):
        data = Dataset(np.zeros((5, 2)), np.array([0, 0, 1, 2, 2]))
        np.testing.assert_array_equal(data.class_counts(4), [2, 1, 2, 0])

    def test_concat(self):
        a, b = _toy_dataset(4, seed=1), _toy_dataset(6, seed=2)
        merged = a.concat(b)
        assert len(merged) == 10
        np.testing.assert_allclose(merged.x[:4], a.x)


class TestSplit:
    def test_split_fractions(self, rng):
        data = _toy_dataset(100)
        train, test, val = train_test_val_split(data, rng=rng)
        assert len(train) == 70
        assert len(test) == 15
        assert len(val) == 15

    def test_split_is_a_partition(self, rng):
        data = Dataset(np.arange(40, dtype=float).reshape(20, 2), np.zeros(20, dtype=int))
        train, test, val = train_test_val_split(data, rng=rng)
        seen = np.concatenate([train.x[:, 0], test.x[:, 0], val.x[:, 0]])
        assert sorted(seen.tolist()) == sorted(data.x[:, 0].tolist())

    def test_tiny_dataset_still_splits(self, rng):
        data = _toy_dataset(3)
        train, test, val = train_test_val_split(data, rng=rng)
        assert len(train) + len(test) + len(val) == 3
        assert len(train) >= 1

    def test_invalid_fractions_raise(self):
        data = _toy_dataset(10)
        with pytest.raises(ValueError):
            train_test_val_split(data, train_frac=0.9, test_frac=0.2)
        with pytest.raises(ValueError):
            train_test_val_split(data, train_frac=0.0)
