"""Unit tests for the synthetic FEMNIST and Sentiment generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.femnist import SyntheticFEMNIST
from repro.data.sentiment import SyntheticSentiment


class TestSyntheticFEMNIST:
    def test_sample_shapes_and_range(self, femnist_generator):
        counts = np.array([3, 2, 0, 1, 0])
        data = femnist_generator.sample_client(counts, client_seed=1)
        assert data.x.shape == (6, 1, 12, 12)
        assert data.x.min() >= 0.0 and data.x.max() <= 1.0
        np.testing.assert_array_equal(np.bincount(data.y, minlength=5), counts)

    def test_prototypes_are_distinct(self, femnist_generator):
        protos = femnist_generator.prototypes
        for i in range(len(protos)):
            for j in range(i + 1, len(protos)):
                assert np.abs(protos[i] - protos[j]).mean() > 0.01

    def test_generation_is_deterministic(self, femnist_generator):
        counts = np.array([2, 2, 2, 0, 0])
        a = femnist_generator.sample_client(counts, client_seed=9)
        b = femnist_generator.sample_client(counts, client_seed=9)
        np.testing.assert_allclose(a.x, b.x)

    def test_different_clients_have_different_styles(self, femnist_generator):
        counts = np.array([2, 0, 0, 0, 0])
        a = femnist_generator.sample_client(counts, client_seed=1)
        b = femnist_generator.sample_client(counts, client_seed=2)
        assert not np.allclose(a.x, b.x)

    def test_empty_counts_give_empty_dataset(self, femnist_generator):
        data = femnist_generator.sample_client(np.zeros(5, dtype=int), client_seed=0)
        assert len(data) == 0

    def test_wrong_count_length_raises(self, femnist_generator):
        with pytest.raises(ValueError):
            femnist_generator.sample_client(np.array([1, 2]), client_seed=0)

    def test_classes_are_learnable(self, femnist_generator):
        """A nearest-prototype classifier should beat chance by a wide margin."""
        data = femnist_generator.sample_iid(100, seed=5)
        protos = femnist_generator.prototypes.reshape(5, -1)
        flat = data.x.reshape(len(data), -1)
        distances = ((flat[:, None, :] - protos[None, :, :]) ** 2).sum(axis=2)
        preds = distances.argmin(axis=1)
        assert (preds == data.y).mean() > 0.5

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            SyntheticFEMNIST(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticFEMNIST(image_size=4)


class TestSyntheticSentiment:
    def test_sample_shapes(self, sentiment_generator):
        counts = np.array([4, 3])
        data = sentiment_generator.sample_client(counts, client_seed=1)
        assert data.x.shape == (7, 16)
        np.testing.assert_array_equal(np.bincount(data.y, minlength=2), counts)

    def test_classes_are_separable(self, sentiment_generator):
        data = sentiment_generator.sample_iid(200, seed=3)
        mean_pos = data.x[data.y == 1].mean(axis=0)
        mean_neg = data.x[data.y == 0].mean(axis=0)
        assert np.linalg.norm(mean_pos - mean_neg) > 0.1

    def test_trigger_embedding_dimension(self, sentiment_generator):
        assert sentiment_generator.trigger_embedding().shape == (16,)

    def test_deterministic_generation(self, sentiment_generator):
        counts = np.array([3, 3])
        a = sentiment_generator.sample_client(counts, client_seed=4)
        b = sentiment_generator.sample_client(counts, client_seed=4)
        np.testing.assert_allclose(a.x, b.x)

    def test_invalid_vocab_raises(self):
        with pytest.raises(ValueError):
            SyntheticSentiment(num_classes=4, vocab_size=8)
