"""Unit and property-based tests for the Dirichlet partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    cumulative_label_distribution,
    dirichlet_label_partition,
    label_distribution,
    non_iid_degree,
    partition_sizes,
)


class TestPartitionSizes:
    def test_total_approximately_preserved(self, rng):
        sizes = partition_sizes(1000, 20, rng)
        assert abs(int(sizes.sum()) - 1000) < 200

    def test_minimum_size_enforced(self, rng):
        sizes = partition_sizes(100, 30, rng, min_samples=5)
        assert sizes.min() >= 5

    def test_rejects_nonpositive_clients(self, rng):
        with pytest.raises(ValueError):
            partition_sizes(100, 0, rng)


class TestDirichletPartition:
    def test_counts_sum_to_client_size(self, rng):
        sizes = np.array([30, 50, 20])
        counts = dirichlet_label_partition(sizes, num_classes=4, alpha=0.5, rng=rng)
        for size, count in zip(sizes, counts, strict=True):
            assert count.sum() == size

    def test_small_alpha_is_more_skewed_than_large_alpha(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        sizes = np.full(40, 60)
        skewed = dirichlet_label_partition(sizes, 10, alpha=0.05, rng=rng_a)
        uniform = dirichlet_label_partition(sizes, 10, alpha=100.0, rng=rng_b)
        assert non_iid_degree(skewed) > non_iid_degree(uniform)

    def test_invalid_alpha_raises(self, rng):
        with pytest.raises(ValueError):
            dirichlet_label_partition(np.array([10]), 3, alpha=0.0, rng=rng)

    def test_single_class_rejected(self, rng):
        with pytest.raises(ValueError):
            dirichlet_label_partition(np.array([10]), 1, alpha=1.0, rng=rng)

    @settings(max_examples=30, deadline=None)
    @given(
        alpha=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        num_classes=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_counts_always_nonnegative_and_complete(self, alpha, num_classes, seed):
        """Every partition conserves sample counts and never goes negative."""
        rng = np.random.default_rng(seed)
        sizes = np.array([25, 40, 10])
        counts = dirichlet_label_partition(sizes, num_classes, alpha, rng)
        for size, count in zip(sizes, counts, strict=True):
            assert count.min() >= 0
            assert count.sum() == size
            assert count.shape == (num_classes,)


class TestDistributions:
    def test_label_distribution_normalises(self):
        dist = label_distribution(np.array([2, 2, 4]))
        np.testing.assert_allclose(dist, [0.25, 0.25, 0.5])

    def test_label_distribution_handles_empty(self):
        dist = label_distribution(np.zeros(4))
        np.testing.assert_allclose(dist, 0.25)

    def test_cumulative_label_distribution_monotone(self):
        cum = cumulative_label_distribution(np.array([1, 0, 3, 2]))
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == 6

    def test_non_iid_degree_zero_for_identical_clients(self):
        counts = [np.array([5, 5, 5]) for _ in range(4)]
        assert non_iid_degree(counts) == pytest.approx(0.0)

    def test_non_iid_degree_high_for_disjoint_clients(self):
        counts = [np.array([10, 0]), np.array([0, 10])]
        assert non_iid_degree(counts) == pytest.approx(0.5)

    def test_non_iid_degree_empty_raises(self):
        with pytest.raises(ValueError):
            non_iid_degree([])
