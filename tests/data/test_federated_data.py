"""Unit tests for federated dataset assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.federated_data import build_federated_dataset


class TestBuildFederatedDataset:
    def test_client_count_and_metadata(self, small_federation):
        assert small_federation.num_clients == 8
        assert small_federation.num_classes == 5
        assert small_federation.alpha == 0.3
        assert small_federation.input_shape == (1, 12, 12)

    def test_every_client_has_all_three_splits(self, small_federation):
        for client in small_federation.clients:
            assert len(client.train) > 0
            assert client.num_samples == len(client.train) + len(client.test) + len(client.val)

    def test_class_counts_match_generated_labels(self, small_federation):
        for client in small_federation.clients:
            labels = np.concatenate([client.train.y, client.test.y, client.val.y])
            observed = np.bincount(labels, minlength=small_federation.num_classes)
            np.testing.assert_array_equal(observed, client.class_counts)

    def test_auxiliary_dataset_sources(self, small_federation):
        compromised = [0, 2]
        val_only = small_federation.auxiliary_dataset(compromised, source="val")
        everything = small_federation.auxiliary_dataset(compromised, source="all")
        expected_val = sum(len(small_federation.client(c).val) for c in compromised)
        expected_all = sum(small_federation.client(c).num_samples for c in compromised)
        assert len(val_only) == expected_val
        assert len(everything) == expected_all

    def test_auxiliary_requires_clients(self, small_federation):
        with pytest.raises(ValueError):
            small_federation.auxiliary_dataset([])

    def test_auxiliary_invalid_source(self, small_federation):
        with pytest.raises(ValueError):
            small_federation.auxiliary_dataset([0], source="test-only")

    def test_auxiliary_class_counts_consistent(self, small_federation):
        counts = small_federation.auxiliary_class_counts([0, 1], source="all")
        expected = small_federation.client(0).class_counts + small_federation.client(1).class_counts
        np.testing.assert_array_equal(counts, expected)

    def test_global_test_set_pools_clients(self, small_federation):
        pooled = small_federation.global_test_set()
        assert len(pooled) == sum(len(c.test) for c in small_federation.clients)
        capped = small_federation.global_test_set(max_per_client=1)
        assert len(capped) == small_federation.num_clients

    def test_seed_reproducibility(self, femnist_generator):
        a = build_federated_dataset(femnist_generator, 4, 20, alpha=0.5, seed=3)
        b = build_federated_dataset(femnist_generator, 4, 20, alpha=0.5, seed=3)
        for ca, cb in zip(a.clients, b.clients, strict=True):
            np.testing.assert_allclose(ca.train.x, cb.train.x)
            np.testing.assert_array_equal(ca.class_counts, cb.class_counts)

    def test_invalid_arguments(self, femnist_generator):
        with pytest.raises(ValueError):
            build_federated_dataset(femnist_generator, 0, 20, alpha=0.5)
        with pytest.raises(ValueError):
            build_federated_dataset(femnist_generator, 4, 0, alpha=0.5)

    def test_alpha_controls_skew(self, femnist_generator):
        skewed = build_federated_dataset(femnist_generator, 12, 30, alpha=0.05, seed=1)
        uniform = build_federated_dataset(femnist_generator, 12, 30, alpha=50.0, seed=1)

        def mean_entropy(fed):
            entropies = []
            for client in fed.clients:
                dist = client.class_counts / max(1, client.class_counts.sum())
                nonzero = dist[dist > 0]
                entropies.append(-(nonzero * np.log(nonzero)).sum())
            return float(np.mean(entropies))

        assert mean_entropy(skewed) < mean_entropy(uniform)
