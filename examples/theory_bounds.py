#!/usr/bin/env python
"""Theorems 1–3 in practice: bounds on compromised clients, convergence, stealth.

Walks through the paper's three theorems with executable numbers:

1.  Theorem 1 — how many compromised clients are needed as a function of the
    benign-gradient scatter (and therefore of the Dirichlet α).
2.  Theorem 2 — the global model converges into a bounded region around the
    Trojaned model X.
3.  Theorem 3 — the server cannot estimate X accurately from the updates it
    sees.

Run with:  python examples/theory_bounds.py
"""

from __future__ import annotations

import numpy as np

from repro.core.theory import (
    convergence_bound,
    estimation_error_bounds,
    expected_angle_statistics,
    min_compromised_clients,
)
from repro.experiments import Scenario, run_experiment
from repro.experiments.results import format_table
from repro.nn.serialization import flatten_params


def theorem_1() -> None:
    print("Theorem 1 — minimum number of compromised clients (|N| = 1000, psi ~ U[0.9, 1])")
    rows = []
    for alpha in (0.01, 0.1, 1.0, 10.0, 100.0):
        mu, sigma = expected_angle_statistics(alpha)
        bound = min_compromised_clients(mu, sigma, num_clients=1000)
        rows.append({"alpha": alpha, "mu_alpha": mu, "sigma": sigma,
                     "min_compromised_clients": bound})
    print(format_table(rows))
    print("More diverse data (smaller alpha) -> fewer compromised clients needed.\n")


def theorems_2_and_3() -> None:
    config = Scenario(
        dataset="femnist", num_clients=20, samples_per_client=32, num_classes=6,
        image_size=16, alpha=0.2, rounds=16, sample_rate=0.35,
        attack="collapois", compromised_fraction=0.15, trojan_epochs=12, seed=5,
    )
    print("Running a CollaPois experiment to evaluate Theorems 2 and 3 empirically ...")
    result = run_experiment(config)
    attack = result.extras["attack"]
    server = result.extras["server"]

    # Theorem 2: ||theta_T - X|| is bounded by (1/a - 1)||last malicious update|| + ||zeta||.
    model = server._worker_model
    last_update = attack.compute_update(
        result.compromised_ids[0], server.global_params, config.rounds, model,
        np.random.default_rng(0),
    )
    bound = convergence_bound(float(np.linalg.norm(last_update)), psi_low=config.psi_low,
                              residual_norm=0.05)
    realized = attack.distance_to_trojan(server.global_params)
    initial_distance = attack.distance_to_trojan(flatten_params(server.model_factory()))
    print(
        f"\nTheorem 2 — ||theta_t − X||2 shrank from {initial_distance:.3f} (round 0) "
        f"to {realized:.3f} (round {config.rounds});"
    )
    print(
        f"            the converged-regime bound (1/a − 1)·||Δθ_c|| + ||ζ|| evaluates to {bound:.3f} — "
        "the distance keeps contracting toward that region as training continues."
    )

    # Theorem 3: the server's estimation error of X is bounded away from zero.
    malicious = np.stack([
        attack.compute_update(c, server.global_params, config.rounds, model,
                              np.random.default_rng(c))
        for c in result.compromised_ids
    ])
    client_models = np.stack([server.personalized_params(c) for c in range(10)])
    bounds = estimation_error_bounds(
        malicious, client_models, attack.trojan_params,
        precision=1.0, num_compromised=len(result.compromised_ids),
    )
    print(
        "Theorem 3 — server estimation error of X: "
        f"lower bound {bounds['lower_bound']:.3f}, realised {bounds['realized_error']:.3f}, "
        f"upper bound {bounds['upper_bound']:.3f}"
    )
    print("\nEven with perfect detection precision the server cannot pin down X exactly,")
    print("while the global model itself has converged into the low-loss region around X.")


def main() -> None:
    theorem_1()
    theorems_2_and_3()


if __name__ == "__main__":
    main()
