#!/usr/bin/env python
"""Execution-engine tour: parallel client backends + round hooks.

Runs the same seeded federated experiment on the serial, thread-pool and
process-pool backends, verifies the three training histories are
bit-identical (the engine's determinism guarantee), reports wall-clock
timings, and shows a custom round hook streaming per-round telemetry.

Run with:  python examples/parallel_backends.py
"""

from __future__ import annotations

import multiprocessing
import time

from repro.experiments import Scenario, run_experiment
from repro.federated.engine import RoundHook, available_backends


class ProgressHook(RoundHook):
    """Minimal observer: one line per round, straight from the pipeline."""

    def on_round_end(self, server, plan, record) -> None:
        print(
            f"  round {record.round_idx:>2}: {len(plan.sampled_clients)} clients "
            f"({len(plan.compromised_sampled)} compromised), "
            f"mean benign loss {record.mean_benign_loss:.3f}, "
            f"update norm {record.update_norm:.3f}"
        )


def main() -> None:
    config = Scenario(
        dataset="femnist",
        num_clients=20,
        samples_per_client=32,
        num_classes=6,
        image_size=16,
        alpha=0.3,
        rounds=6,
        sample_rate=1.0,          # every client participates -> lots of parallel work
        attack="collapois",
        compromised_fraction=0.1,
        trojan_epochs=4,
        seed=3,
    )

    backends = ["serial", "thread"]
    if "fork" in multiprocessing.get_all_start_methods():
        backends.append("process")
    # Socket worker processes on separate interpreters (pays ~1s/worker
    # spawn, the price of the multi-host story — see README).
    backends.append("distributed")
    print(f"Registered backends: {', '.join(available_backends())}")

    histories = {}
    for backend in backends:
        print(f"\n=== backend: {backend} ===")
        start = time.perf_counter()
        overrides = {"backend": backend}
        if backend == "distributed":
            overrides["backend_workers"] = 2
        result = run_experiment(
            config.with_overrides(**overrides),
            hooks=[ProgressHook()] if backend == "serial" else None,
        )
        elapsed = time.perf_counter() - start
        histories[backend] = result.history
        print(f"{backend}: {elapsed:.2f}s for {config.rounds} rounds")

    reference = histories["serial"].series("update_norm")
    for backend, history in histories.items():
        identical = history.series("update_norm") == reference
        print(f"history[{backend}] bit-identical to serial: {identical}")


if __name__ == "__main__":
    main()
