#!/usr/bin/env python
"""Attack-vs-defense landscape: CollaPois against the Table-I defenses.

Reproduces the qualitative landscape of Figs. 9/16: weak defenses (DP,
NormBound) leave the backdoor largely intact, while strong defenses (Krum,
RLR) suppress it at the cost of benign accuracy — and compares CollaPois with
the DPois baseline under the same conditions.

The whole sweep is one :class:`~repro.experiments.suite.Suite` grid; each
defense axis value is a component spec carrying the defense's kwargs, and
the federation is built once and shared across all cells.  A JSON twin of
this kind of sweep lives in ``examples/scenarios/defense_sweep.json``:

    python -m repro sweep examples/scenarios/defense_sweep.json

Run with:  python examples/attack_vs_defenses.py
"""

from __future__ import annotations

from repro.experiments import Scenario, Suite
from repro.experiments.results import format_table

DEFENSES = [
    "mean",
    "dp:clip_norm=2.0,noise_multiplier=0.002",
    "norm_bound:max_norm=2.0",
    "krum:num_malicious=1,multi=3",
    "rlr:threshold_fraction=0.6",
    "trimmed_mean:trim_fraction=0.2",
    "median",
    "flare",
]


def main() -> None:
    base = Scenario(
        dataset="femnist",
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.2,
        rounds=20,
        sample_rate=0.3,
        compromised_fraction=0.125,
        trojan_epochs=12,
        seed=7,
    )
    suite = Suite.grid(
        base, name="attack_vs_defenses", attack=["collapois", "dpois"], defense=DEFENSES
    )
    rows = suite.rows("attack", "defense")
    for row in rows:
        print(
            f"{row['attack']:>10} | {row['defense']:<14} -> "
            f"Benign AC {row['benign_accuracy']:.2f}, "
            f"Attack SR {row['attack_success_rate']:.2f}"
        )
    print()
    print(format_table(rows))
    print(
        "\nReading: an effective defense would sit in the bottom-right corner "
        "(high Benign AC, low Attack SR). None of the robust-aggregation rules "
        "achieves both against CollaPois — the paper's Fig. 9/16 conclusion."
    )


if __name__ == "__main__":
    main()
