#!/usr/bin/env python
"""Attack-vs-defense landscape: CollaPois against the Table-I defenses.

Reproduces the qualitative landscape of Figs. 9/16: weak defenses (DP,
NormBound) leave the backdoor largely intact, while strong defenses (Krum,
RLR) suppress it at the cost of benign accuracy — and compares CollaPois with
the DPois baseline under the same conditions.

Run with:  python examples/attack_vs_defenses.py
"""

from __future__ import annotations

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.results import format_table

DEFENSES = {
    "mean (no defense)": ("mean", {}),
    "DP-optimizer": ("dp", {"clip_norm": 2.0, "noise_multiplier": 0.002}),
    "NormBound": ("norm_bound", {"max_norm": 2.0}),
    "Krum": ("krum", {"num_malicious": 1, "multi": 3}),
    "RLR": ("rlr", {"threshold_fraction": 0.6}),
    "Trimmed mean": ("trimmed_mean", {"trim_fraction": 0.2}),
    "Median": ("median", {}),
    "FLARE": ("flare", {}),
}


def main() -> None:
    base = ExperimentConfig(
        dataset="femnist",
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.2,
        rounds=20,
        sample_rate=0.3,
        compromised_fraction=0.125,
        trojan_epochs=12,
        seed=7,
    )
    rows = []
    for attack in ("collapois", "dpois"):
        for label, (defense, kwargs) in DEFENSES.items():
            result = run_experiment(
                base.with_overrides(attack=attack, defense=defense, defense_kwargs=dict(kwargs))
            )
            rows.append(
                {
                    "attack": attack,
                    "defense": label,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
            print(
                f"{attack:>10} | {label:<18} -> "
                f"Benign AC {result.benign_accuracy:.2f}, Attack SR {result.attack_success_rate:.2f}"
            )
    print()
    print(format_table(rows))
    print(
        "\nReading: an effective defense would sit in the bottom-right corner "
        "(high Benign AC, low Attack SR). None of the robust-aggregation rules "
        "achieves both against CollaPois — the paper's Fig. 9/16 conclusion."
    )


if __name__ == "__main__":
    main()
