#!/usr/bin/env python
"""Quickstart: run CollaPois against a small non-IID federation.

The experiment is a declarative :class:`~repro.experiments.scenario.Scenario`
stored in ``examples/scenarios/collapois_quickstart.json`` — this script
loads it, runs it, and reports the population-level and client-level impact
of the backdoor.  The exact same run is available without Python:

    python -m repro run examples/scenarios/collapois_quickstart.json

Run with:  python examples/quickstart.py [backend]

``backend`` selects the client execution backend (``serial`` by default;
``thread`` or ``process`` parallelise local training across clients with
bit-identical results — see examples/parallel_backends.py).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import Scenario
from repro.experiments.results import format_table
from repro.metrics.client_level import top_k_metrics

SCENARIO = Path(__file__).parent / "scenarios" / "collapois_quickstart.json"


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    scenario = Scenario.load(SCENARIO).with_overrides(backend=backend)

    print("Running CollaPois against a 24-client non-IID federation ...")
    attacked = scenario.run()
    print("Running the clean baseline (no attack) ...")
    clean = scenario.with_overrides(attack="none").run()

    rows = [
        {
            "run": "clean",
            "benign_accuracy": clean.benign_accuracy,
            "attack_success_rate": clean.attack_success_rate,
        },
        {
            "run": "collapois",
            "benign_accuracy": attacked.benign_accuracy,
            "attack_success_rate": attacked.attack_success_rate,
        },
    ]
    print()
    print(format_table(rows))
    print()
    print(f"Compromised clients: {attacked.compromised_ids}")
    for k in (1.0, 25.0, 50.0):
        metrics = top_k_metrics(attacked.evaluation, k)
        print(
            f"Top-{k:>4.0f}% most affected benign clients: "
            f"Attack SR = {metrics['attack_success_rate']:.2f}, "
            f"Benign AC = {metrics['benign_accuracy']:.2f} "
            f"({metrics['num_clients']} clients)"
        )
    attack = attacked.extras["attack"]
    server = attacked.extras["server"]
    print(
        "\nDistance from the final global model to the Trojaned model X: "
        f"{attack.distance_to_trojan(server.global_params):.3f}"
    )


if __name__ == "__main__":
    main()
