#!/usr/bin/env python
"""Quickstart: run CollaPois against a small non-IID federation.

This script builds a synthetic FEMNIST-like federation, launches federated
training with 12.5% of the clients compromised by CollaPois, and reports the
population-level and client-level impact of the backdoor.

Run with:  python examples/quickstart.py [backend]

``backend`` selects the client execution backend (``serial`` by default;
``thread`` or ``process`` parallelise local training across clients with
bit-identical results — see examples/parallel_backends.py).
"""

from __future__ import annotations

import sys

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.results import format_table
from repro.metrics.client_level import top_k_metrics


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "serial"
    config = ExperimentConfig(
        backend=backend,
        dataset="femnist",
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.2,                 # strongly non-IID (Dirichlet concentration)
        rounds=18,
        sample_rate=0.3,
        attack="collapois",
        compromised_fraction=0.125,
        trojan_epochs=12,
        seed=7,
    )

    print("Running CollaPois against a 24-client non-IID federation ...")
    attacked = run_experiment(config)
    print("Running the clean baseline (no attack) ...")
    clean = run_experiment(config.with_overrides(attack="none"))

    rows = [
        {
            "run": "clean",
            "benign_accuracy": clean.benign_accuracy,
            "attack_success_rate": clean.attack_success_rate,
        },
        {
            "run": "collapois",
            "benign_accuracy": attacked.benign_accuracy,
            "attack_success_rate": attacked.attack_success_rate,
        },
    ]
    print()
    print(format_table(rows))
    print()
    print(f"Compromised clients: {attacked.compromised_ids}")
    for k in (1.0, 25.0, 50.0):
        metrics = top_k_metrics(attacked.evaluation, k)
        print(
            f"Top-{k:>4.0f}% most affected benign clients: "
            f"Attack SR = {metrics['attack_success_rate']:.2f}, "
            f"Benign AC = {metrics['benign_accuracy']:.2f} "
            f"({metrics['num_clients']} clients)"
        )
    attack = attacked.extras["attack"]
    server = attacked.extras["server"]
    print(
        "\nDistance from the final global model to the Trojaned model X: "
        f"{attack.distance_to_trojan(server.global_params):.3f}"
    )


if __name__ == "__main__":
    main()
