#!/usr/bin/env python
"""Client-level risk analysis: who gets infected, and why.

Reproduces the paper's central client-level finding (Figs. 11 and 12): the
benign clients whose local label distributions are closest to the attacker's
auxiliary data are backdoored with near-certainty, while the population
average hides them.

Run with:  python examples/client_level_risk.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import Scenario
from repro.experiments.client_level import client_cluster_analysis, label_similarity_analysis
from repro.experiments.results import format_table


def main() -> None:
    config = Scenario(
        dataset="femnist",
        num_clients=24,
        samples_per_client=36,
        num_classes=6,
        image_size=16,
        alpha=0.1,                 # very diverse local data
        rounds=20,
        sample_rate=0.3,
        attack="collapois",
        compromised_fraction=0.125,
        trojan_epochs=12,
        seed=7,
    )

    print("Running CollaPois and clustering benign clients by infection score ...")
    analysis = client_cluster_analysis(config)
    attack_sr = analysis["per_client_attack_success_rate"]
    print(
        f"\nPer-client Attack SR: min={attack_sr.min():.2f}  "
        f"median={np.median(attack_sr):.2f}  max={attack_sr.max():.2f}  "
        f"(population mean {attack_sr.mean():.2f})"
    )
    cluster_rows = [
        {"cluster": name, **metrics} for name, metrics in analysis["cluster_metrics"].items()
    ]
    print("\nCluster-level view (Eq. 8 scores):")
    print(format_table(cluster_rows))

    print("\nWhy those clients? — similarity of label distributions to the attacker's data:")
    rows = label_similarity_analysis(config)
    print(format_table(rows))
    print(
        "\nReading: clusters with higher cosine similarity to the auxiliary data "
        "Da (used to train the Trojaned model X) exhibit higher Attack SR — "
        "clients that look like the attacker's data are the ones at risk."
    )


if __name__ == "__main__":
    main()
