"""Setuptools shim so `pip install -e .` works on environments without wheel.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (`--no-use-pep517`) on offline machines whose
setuptools/wheel stack predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
