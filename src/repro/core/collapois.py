"""CollaPois: the collaborative backdoor poisoning attack (Algorithm 1).

The attacker trains a single Trojaned model X on poisoned auxiliary data and
distributes it to the compromised clients.  In every round each sampled
compromised client submits the malicious update

    Δθ_c^t = ψ_c^t (X − θ_t),        ψ_c^t ~ U[a, b],

optionally clipped to a shared bound A and upscaled to a minimum norm τ.  The
aligned malicious updates reinforce one another across rounds while benign
updates scatter (the more so the more non-IID the data is), steering the
global model into the low-loss region around X.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import BackdoorAttack
from repro.attacks.triggers import poison_dataset
from repro.core.stealth import StealthConfig, clip_update, upscale_update
from repro.core.trojan import train_trojan_model
from repro.registry import ATTACKS


@ATTACKS.register("collapois")
class CollaPoisAttack(BackdoorAttack):
    """Collaborative poisoning toward a shared Trojaned model X."""

    name = "collapois"

    def __init__(
        self,
        stealth: StealthConfig | None = None,
        poison_fraction: float = 0.5,
        trojan_epochs: int = 10,
        trojan_lr: float = 0.05,
        warm_start_from_global: bool = True,
        aux_source: str = "all",
    ) -> None:
        super().__init__()
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError("poison_fraction must be in (0, 1]")
        if trojan_epochs <= 0:
            raise ValueError("trojan_epochs must be positive")
        if aux_source not in {"val", "train", "all"}:
            raise ValueError("aux_source must be 'val', 'train' or 'all'")
        self.stealth = stealth or StealthConfig()
        self.poison_fraction = poison_fraction
        self.trojan_epochs = trojan_epochs
        self.trojan_lr = trojan_lr
        self.warm_start_from_global = warm_start_from_global
        self.aux_source = aux_source
        self.trojan_params: np.ndarray | None = None
        self.psi_history: list[tuple[int, int, float]] = []

    def setup(self, dataset, compromised_ids, model_factory, trigger, target_class,
              local_config=None, seed=0, init_params: np.ndarray | None = None) -> None:
        """Train the Trojaned model X from the pooled auxiliary data (Eq. 1)."""
        super().setup(dataset, compromised_ids, model_factory, trigger, target_class,
                      local_config, seed)
        context = self._require_context()
        aux = dataset.auxiliary_dataset(compromised_ids, source=self.aux_source)
        poisoned = poison_dataset(
            aux, trigger, target_class,
            poison_fraction=self.poison_fraction,
            rng=np.random.default_rng(seed),
            keep_clean=True,
        )
        self.trojan_params = train_trojan_model(
            model_factory,
            poisoned,
            epochs=self.trojan_epochs,
            lr=self.trojan_lr,
            batch_size=context.local_config.batch_size,
            seed=seed,
            init_params=init_params if self.warm_start_from_global else None,
        )
        self.psi_history = []

    def compute_update(self, client_id, global_params, round_idx, model, rng) -> np.ndarray:
        """Malicious update Δθ = ψ (X − θ_t) with stealth post-processing (Eq. 4)."""
        self._require_context()
        if self.trojan_params is None:
            raise RuntimeError("setup() did not train the Trojaned model")
        psi = self.stealth.sample_psi(rng)
        self.psi_history.append((round_idx, client_id, psi))
        update = psi * (self.trojan_params - global_params)
        if self.stealth.clip_bound is not None:
            update = clip_update(update, self.stealth.clip_bound)
        if self.stealth.min_update_norm is not None:
            update = upscale_update(update, self.stealth.min_update_norm)
        return update

    def distance_to_trojan(self, global_params: np.ndarray) -> float:
        """Current l2 distance ‖θ_t − X‖₂ (the quantity bounded by Theorem 2)."""
        if self.trojan_params is None:
            raise RuntimeError("setup() did not train the Trojaned model")
        return float(np.linalg.norm(global_params - self.trojan_params))

    def surrogate_loss(
        self,
        global_params: np.ndarray,
        benign_personal_params: np.ndarray | None = None,
    ) -> float:
        """The Trojaned surrogate loss of Eq. 3.

        ``½ (Σ_c ‖X − θ‖² + Σ_i ‖θ_i − θ‖²)`` — the first term for the
        compromised clients, the second (optional) term for the benign
        clients' personalised models.
        """
        context = self._require_context()
        if self.trojan_params is None:
            raise RuntimeError("setup() did not train the Trojaned model")
        num_compromised = len(context.compromised_ids)
        loss = num_compromised * float(np.sum((self.trojan_params - global_params) ** 2))
        if benign_personal_params is not None:
            diffs = np.atleast_2d(benign_personal_params) - global_params
            loss += float(np.sum(diffs**2))
        return 0.5 * loss
