"""Centralised training of the Trojaned model X (Eq. 1 of the paper).

The attacker pools the compromised clients' auxiliary data, poisons it with
the trigger, and trains a model of the same architecture as the global FL
model until it fits both the clean and the Trojaned samples.  The resulting
flat parameter vector X is what CollaPois and MRepl steer the federation
toward.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.nn.serialization import flatten_params


def train_trojan_model(
    model_factory,
    poisoned_data: Dataset,
    epochs: int = 10,
    lr: float = 0.05,
    batch_size: int = 16,
    momentum: float = 0.9,
    seed: int = 0,
    init_params: np.ndarray | None = None,
) -> np.ndarray:
    """Train the Trojaned model X and return its flat parameter vector.

    Parameters
    ----------
    model_factory:
        Callable returning a fresh model with the global architecture (the
        attacker learns the architecture through the compromised clients).
    poisoned_data:
        ``Da ∪ Da_Troj`` — clean auxiliary samples plus triggered samples
        relabelled to the target class (see
        :func:`repro.attacks.triggers.poison_dataset`).
    epochs, lr, batch_size, momentum:
        Centralised training hyper-parameters.
    seed:
        Randomness seed for shuffling.
    init_params:
        Optional flat vector to initialise from (e.g. the current global
        model, for a "semi-ready" Trojaned model as discussed in Section VI).

    Returns
    -------
    numpy.ndarray
        Flat parameter vector of the trained Trojaned model X.
    """
    if len(poisoned_data) == 0:
        raise ValueError("cannot train a Trojaned model on an empty dataset")
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    model = model_factory()
    if init_params is not None:
        from repro.nn.serialization import unflatten_params

        unflatten_params(model, init_params)
    rng = np.random.default_rng(seed)
    optimiser = SGD(model, lr=lr, momentum=momentum)
    criterion = SoftmaxCrossEntropy()
    for _ in range(epochs):
        for batch_x, batch_y in poisoned_data.batches(batch_size, rng=rng):
            optimiser.zero_grad()
            logits = model.forward(batch_x, training=True)
            criterion.forward(logits, batch_y)
            model.backward(criterion.backward())
            optimiser.step()
    return flatten_params(model)


def trojan_model_quality(
    model_factory,
    trojan_params: np.ndarray,
    clean_data: Dataset,
    triggered_data: Dataset,
) -> dict[str, float]:
    """Accuracy of X on clean data and on triggered (target-labelled) data.

    Used to verify that the Trojaned model behaves like a clean model on
    legitimate inputs while predicting the target class on triggered inputs —
    the defining property of a backdoored model.
    """
    from repro.nn.serialization import unflatten_params

    model = model_factory()
    unflatten_params(model, trojan_params)
    metrics: dict[str, float] = {}
    if len(clean_data):
        metrics["clean_accuracy"] = float((model.predict(clean_data.x) == clean_data.y).mean())
    if len(triggered_data):
        metrics["trojan_accuracy"] = float(
            (model.predict(triggered_data.x) == triggered_data.y).mean()
        )
    return metrics
