"""Theoretical results of the paper (Theorems 1–3) as executable functions.

* **Theorem 1** — lower bound on the number of compromised clients |C| needed
  for a successful poisoning round, as a function of the angle statistics
  (µ_α, σ) of benign gradients relative to the aggregated malicious gradient
  and the dynamic-learning-rate range [a, b]:

      |C| ≥ (2 − σ² − µ_α²) / (a + b + 2 − σ² − µ_α²) · |N|

* **Theorem 2** — convergence bound on the distance between the global model
  and the Trojaned model X:

      ‖θ_t − X‖₂ ≤ (1/a − 1) ‖Δθ_c^{t'}‖₂ + ‖ζ‖₂

* **Theorem 3** — bounds on the server's estimation error of X when it
  identifies compromised clients with precision p.

The empirical companions (Fig. 4 approximation error, Fig. 5 bound surface)
are also provided here.
"""

from __future__ import annotations

import numpy as np


def min_compromised_clients(
    mu_alpha: float,
    sigma: float,
    num_clients: int,
    psi_low: float = 0.9,
    psi_high: float = 1.0,
) -> float:
    """Theorem 1: minimum |C| for a successful poisoning round (worst case).

    Parameters
    ----------
    mu_alpha:
        Mean of the angle β_i (radians) between a benign client's gradient
        and the aggregated malicious gradient; grows as local data becomes
        more diverse (smaller Dirichlet α).
    sigma:
        Standard deviation of β_i.
    num_clients:
        Total number of clients |N|.
    psi_low, psi_high:
        The dynamic-learning-rate range [a, b] of Eq. 4.

    Returns
    -------
    float
        The lower bound on |C| (not rounded; callers may take ``ceil``).
        Larger µ_α / σ (more scattered benign gradients) shrink the bound.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not 0.0 < psi_low < psi_high <= 1.0:
        raise ValueError("require 0 < a < b <= 1")
    if mu_alpha < 0 or sigma < 0:
        raise ValueError("angle statistics must be non-negative")
    numerator = 2.0 - sigma**2 - mu_alpha**2
    numerator = max(numerator, 0.0)
    denominator = psi_low + psi_high + numerator
    return numerator / denominator * num_clients


def compromised_fraction_surface(
    mu_values: np.ndarray,
    sigma_values: np.ndarray,
    psi_low: float = 0.9,
    psi_high: float = 1.0,
) -> np.ndarray:
    """Fig. 5: the |C|/|N| lower-bound surface over a (µ_α, σ) grid.

    Returns an array of shape ``(len(sigma_values), len(mu_values))`` whose
    entry [j, i] is the bound at (µ_values[i], σ_values[j]).
    """
    mu_values = np.asarray(mu_values, dtype=np.float64)
    sigma_values = np.asarray(sigma_values, dtype=np.float64)
    surface = np.empty((sigma_values.size, mu_values.size), dtype=np.float64)
    for j, sigma in enumerate(sigma_values):
        for i, mu in enumerate(mu_values):
            surface[j, i] = min_compromised_clients(mu, sigma, 1, psi_low, psi_high)
    return surface


def exact_lower_bound_from_angles(
    angles: np.ndarray,
    num_clients: int,
    psi_low: float = 0.9,
    psi_high: float = 1.0,
) -> float:
    """The data-dependent bound of Eq. 14 before the expectation approximation.

    Uses the observed per-client angles β_i directly:
        |C| (a+b)/2 ≥ (|N| − |C|) − Σ β_i² / 2
    solved for |C| with Σ β_i² evaluated on the sample.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if angles.ndim != 1 or angles.size == 0:
        raise ValueError("angles must be a non-empty 1-D array")
    mean_sq = float(np.mean(angles**2))
    numerator = max(2.0 - mean_sq, 0.0)
    denominator = psi_low + psi_high + numerator
    return numerator / denominator * num_clients


def approximate_lower_bound(
    angles: np.ndarray,
    num_clients: int,
    psi_low: float = 0.9,
    psi_high: float = 1.0,
) -> dict[str, float]:
    """Fig. 4: the Theorem-1 bound and its relative approximation error.

    The theorem approximates Σψ_c with |C|(a+b)/2 and Σβ_i² with its
    expectation (|N|−|C|)(σ²+µ_α²).  This helper computes both the
    approximate bound (from the sample mean/std of ``angles``) and the exact
    data-dependent bound, returning the relative error |Ĉ − C| / C.
    """
    angles = np.asarray(angles, dtype=np.float64)
    mu = float(np.mean(angles))
    sigma = float(np.std(angles))
    approx = min_compromised_clients(mu, sigma, num_clients, psi_low, psi_high)
    exact = exact_lower_bound_from_angles(angles, num_clients, psi_low, psi_high)
    rel_error = abs(approx - exact) / exact if exact > 0 else 0.0
    return {
        "approximate_bound": approx,
        "exact_bound": exact,
        "relative_error": rel_error,
        "mu_alpha": mu,
        "sigma": sigma,
    }


def convergence_bound(
    last_malicious_update_norm: float,
    psi_low: float,
    residual_norm: float = 0.0,
) -> float:
    """Theorem 2: upper bound on ‖θ_t − X‖₂.

    ``(1/a − 1) ‖Δθ_c^{t'}‖₂ + ‖ζ‖₂`` where ``t'`` is the last round the
    compromised client participated in and ζ is a small error term.
    """
    if not 0.0 < psi_low <= 1.0:
        raise ValueError("psi_low must be in (0, 1]")
    if last_malicious_update_norm < 0 or residual_norm < 0:
        raise ValueError("norms must be non-negative")
    return (1.0 / psi_low - 1.0) * last_malicious_update_norm + residual_norm


def estimation_error_bounds(
    malicious_updates: np.ndarray,
    client_params: np.ndarray,
    trojan_params: np.ndarray,
    precision: float,
    num_compromised: int,
    psi_high: float = 1.0,
) -> dict[str, float]:
    """Theorem 3: bounds on the server's estimation error of X.

    Parameters
    ----------
    malicious_updates:
        ``(k, dim)`` matrix of the malicious updates Δθ_c the server observed
        from the correctly identified compromised clients (the set C̄).
    client_params:
        ``(m, dim)`` matrix of candidate client model parameters θ_i the
        server could average when guessing X (used for the upper bound).
    trojan_params:
        The true Trojaned model X (for reporting the realised error only).
    precision:
        Detection precision p ∈ (0, 1].
    num_compromised:
        |C|, the true number of compromised clients.
    psi_high:
        Upper end b of the dynamic-learning-rate range.

    Returns
    -------
    dict with ``lower_bound``, ``upper_bound`` and ``realized_error`` — the
    error the naive estimator X' (mean of suspected clients' models) makes.
    """
    if not 0.0 < precision <= 1.0:
        raise ValueError("precision must be in (0, 1]")
    if num_compromised <= 0:
        raise ValueError("num_compromised must be positive")
    malicious_updates = np.atleast_2d(malicious_updates)
    client_params = np.atleast_2d(client_params)
    lower = float(
        np.linalg.norm(malicious_updates.sum(axis=0) / (precision * num_compromised * psi_high))
    )
    # Upper bound: the worst estimator averages the |C| client models whose
    # mean is farthest from X.
    upper = 0.0
    num_candidates = client_params.shape[0]
    subset_size = min(num_compromised, num_candidates)
    distances = np.linalg.norm(client_params - trojan_params, axis=1)
    worst = np.argsort(distances)[::-1][:subset_size]
    upper = float(np.linalg.norm(client_params[worst].mean(axis=0) - trojan_params))
    realized = float(np.linalg.norm(client_params.mean(axis=0) - trojan_params))
    return {"lower_bound": lower, "upper_bound": upper, "realized_error": realized}


def expected_angle_statistics(
    alpha: float,
    base_mean: float = 0.35,
    base_std: float = 0.08,
    spread: float = 0.55,
) -> tuple[float, float]:
    """Analytic model of how (µ_α, σ) grow as the Dirichlet α shrinks.

    The paper measures µ_α and σ empirically (Fig. 3); for closed-form
    sweeps (Fig. 5, theory examples) we use a smooth monotone model:
    both statistics increase logarithmically as α decreases, saturating at
    the extremes of the paper's range α ∈ [0.01, 100].
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    log_alpha = np.clip(np.log10(alpha), -2.0, 2.0)
    # Map log10(alpha) in [-2, 2] onto [1, 0]: 1 = most diverse.
    diversity = (2.0 - log_alpha) / 4.0
    mu = base_mean + spread * diversity
    sigma = base_std + 0.3 * spread * diversity
    return float(mu), float(sigma)
