"""Core contribution of the paper: the CollaPois attack and its theory.

* :mod:`repro.core.trojan` — centralised training of the Trojaned model X on
  the attacker's poisoned auxiliary data (Eq. 1).
* :mod:`repro.core.collapois` — the collaborative poisoning attack itself:
  every compromised client submits ``Δθ = ψ (X − θ_t)`` with a dynamic
  learning rate ψ ~ U[a, b] and optional clipping (Algorithm 1, Eq. 4).
* :mod:`repro.core.stealth` — the stealth machinery: dynamic-learning-rate
  calibration, gradient clipping, and blending diagnostics (Section IV-D).
* :mod:`repro.core.theory` — Theorems 1–3: the lower bound on the number of
  compromised clients, the convergence bound around X, and the server's
  estimation-error bounds.
"""

from repro.core.collapois import CollaPoisAttack
from repro.core.stealth import StealthConfig, blend_statistics, clip_update
from repro.core.targeted import TargetedCollaPois
from repro.core.theory import (
    approximate_lower_bound,
    compromised_fraction_surface,
    convergence_bound,
    estimation_error_bounds,
    min_compromised_clients,
)
from repro.core.trojan import train_trojan_model

__all__ = [
    "CollaPoisAttack",
    "TargetedCollaPois",
    "train_trojan_model",
    "StealthConfig",
    "clip_update",
    "blend_statistics",
    "min_compromised_clients",
    "approximate_lower_bound",
    "compromised_fraction_surface",
    "convergence_bound",
    "estimation_error_bounds",
]
