"""Stealth machinery of CollaPois (Section IV-D of the paper).

Three mechanisms keep the malicious updates indistinguishable from benign
ones:

* the **dynamic learning rate** ψ_c^t ~ U[a, b], sampled privately by each
  compromised client every round, prevents the server from reconstructing X
  from any single update;
* **clipping** to a shared bound A keeps malicious update magnitudes inside
  the range of benign update magnitudes;
* **blending diagnostics** measure the angle/magnitude statistics of
  malicious vs. benign updates against a set of sampled (clean) gradients so
  the attacker can pick U[a, b] and A that pass the server's statistical
  tests (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.gradients import pairwise_angles


@dataclass
class StealthConfig:
    """Stealth-related knobs of CollaPois."""

    psi_low: float = 0.9
    psi_high: float = 1.0
    clip_bound: float | None = None
    min_update_norm: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.psi_low < self.psi_high <= 1.0:
            raise ValueError("require 0 < a < b <= 1 for psi ~ U[a, b]")
        if self.clip_bound is not None and self.clip_bound <= 0:
            raise ValueError("clip_bound must be positive")
        if self.min_update_norm is not None and self.min_update_norm <= 0:
            raise ValueError("min_update_norm must be positive")

    def sample_psi(self, rng: np.random.Generator) -> float:
        """Draw the round's dynamic learning rate ψ ~ U[a, b]."""
        return float(rng.uniform(self.psi_low, self.psi_high))


def clip_update(update: np.ndarray, bound: float) -> np.ndarray:
    """Scale an update down so its l2 norm does not exceed ``bound``."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    norm = float(np.linalg.norm(update))
    if norm <= bound or norm == 0.0:
        return update
    return update * (bound / norm)


def upscale_update(update: np.ndarray, min_norm: float) -> np.ndarray:
    """Scale an update up to at least ``min_norm`` (the τ rescaling of Thm. 3).

    Theorem 3 observes that a vanishingly small malicious update lets the
    server estimate X accurately; uniformly upscaling its norm to a small
    constant τ enlarges the estimation-error lower bound without affecting
    utility or attack success.
    """
    if min_norm <= 0:
        raise ValueError("min_norm must be positive")
    norm = float(np.linalg.norm(update))
    if norm >= min_norm or norm == 0.0:
        return update
    return update * (min_norm / norm)


def blend_statistics(
    malicious_updates: np.ndarray,
    benign_updates: np.ndarray,
    reference_updates: np.ndarray | None = None,
) -> dict[str, float]:
    """Angle/magnitude statistics comparing malicious and benign updates.

    Returns the mean and standard deviation of the angles each group forms
    with the reference gradients (benign updates by default), plus the mean
    l2 magnitudes — the quantities the attacker matches to blend in (Fig. 6)
    and the server's statistical detector inspects.
    """
    malicious_updates = np.atleast_2d(malicious_updates)
    benign_updates = np.atleast_2d(benign_updates)
    reference = benign_updates if reference_updates is None else np.atleast_2d(reference_updates)

    def _angles_to_reference(group: np.ndarray) -> np.ndarray:
        angles = []
        for row in group:
            for ref in reference:
                angles.append(_angle(row, ref))
        return np.asarray(angles)

    mal_angles = _angles_to_reference(malicious_updates)
    ben_angles = pairwise_angles(benign_updates) if len(benign_updates) > 1 else _angles_to_reference(benign_updates)
    return {
        "malicious_angle_mean": float(np.mean(mal_angles)) if mal_angles.size else 0.0,
        "malicious_angle_std": float(np.std(mal_angles)) if mal_angles.size else 0.0,
        "benign_angle_mean": float(np.mean(ben_angles)) if ben_angles.size else 0.0,
        "benign_angle_std": float(np.std(ben_angles)) if ben_angles.size else 0.0,
        "malicious_norm_mean": float(np.mean(np.linalg.norm(malicious_updates, axis=1))),
        "benign_norm_mean": float(np.mean(np.linalg.norm(benign_updates, axis=1))),
    }


def _angle(u: np.ndarray, v: np.ndarray) -> float:
    """Angle in radians between two vectors (0 when either is zero)."""
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        return 0.0
    cosine = float(np.clip(np.dot(u, v) / (nu * nv), -1.0, 1.0))
    return float(np.arccos(cosine))
