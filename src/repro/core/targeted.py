"""Targeted CollaPois — the Section-VI "attack perspective" extension.

The paper's discussion sketches an escalated threat: instead of poisoning the
whole federation from round 1, the attacker (1) stays dormant for a warm-up
period, using the observed global models to build a "semi-ready" Trojaned
model that is already close to the federation's benign optimum, and
(2) activates only when the federation state suggests the *high-value* benign
clients — those whose data the attacker cares about, approximated through the
auxiliary data — are being served well, minimising the attacker's exposure.

This module implements that variant on top of :class:`CollaPoisAttack`:

* ``warmup_rounds`` — rounds during which compromised clients behave benignly
  (they submit honest local updates, making them indistinguishable from any
  other client).
* ``refresh_trojan`` — at activation time the Trojaned model X is re-trained
  *starting from the current global model* (the "semi-ready" model), so the
  malicious pull is small in norm and the backdoor integrates with whatever
  the federation has already learned.
* ``high_value_fraction`` — the attacker's success criterion is evaluated on
  the benign clients most similar to the auxiliary data (Eq. 9 similarity),
  mirroring the "target high-value clients only" goal.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.triggers import poison_dataset
from repro.core.collapois import CollaPoisAttack
from repro.core.trojan import train_trojan_model
from repro.federated.client import local_train
from repro.metrics.similarity import cumulative_label_cosine


class TargetedCollaPois(CollaPoisAttack):
    """CollaPois with a dormant warm-up phase and a semi-ready Trojaned model."""

    name = "targeted-collapois"

    def __init__(
        self,
        warmup_rounds: int = 3,
        refresh_trojan: bool = True,
        high_value_fraction: float = 0.25,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if warmup_rounds < 0:
            raise ValueError("warmup_rounds must be non-negative")
        if not 0.0 < high_value_fraction <= 1.0:
            raise ValueError("high_value_fraction must be in (0, 1]")
        self.warmup_rounds = warmup_rounds
        self.refresh_trojan = refresh_trojan
        self.high_value_fraction = high_value_fraction
        self.activated_round: int | None = None

    # ------------------------------------------------------------------ #
    # Target selection                                                    #
    # ------------------------------------------------------------------ #
    def high_value_clients(self) -> list[int]:
        """Benign clients whose label distributions best match the auxiliary data.

        The attacker only observes its own auxiliary data; the similarity is
        computed against each benign client's label counts, which in a real
        deployment the attacker would approximate from interaction patterns.
        The returned ids are the attack's *measurement targets*: the clients
        whose infection the attacker actually cares about.
        """
        context = self._require_context()
        dataset = context.dataset
        compromised = set(context.compromised_ids)
        aux_counts = dataset.auxiliary_class_counts(context.compromised_ids, source=self.aux_source)
        benign = [c for c in range(dataset.num_clients) if c not in compromised]
        similarities = [
            (cumulative_label_cosine(dataset.client(c).class_counts, aux_counts), c)
            for c in benign
        ]
        similarities.sort(reverse=True)
        count = max(1, int(round(self.high_value_fraction * len(benign))))
        return sorted(client_id for _, client_id in similarities[:count])

    # ------------------------------------------------------------------ #
    # Dormant phase and activation                                        #
    # ------------------------------------------------------------------ #
    def _activate(self, global_params: np.ndarray, round_idx: int) -> None:
        """Re-train the semi-ready Trojaned model from the current global model."""
        context = self._require_context()
        aux = context.dataset.auxiliary_dataset(context.compromised_ids, source=self.aux_source)
        poisoned = poison_dataset(
            aux,
            context.trigger,
            context.target_class,
            poison_fraction=self.poison_fraction,
            rng=np.random.default_rng(context.seed + round_idx),
            keep_clean=True,
        )
        self.trojan_params = train_trojan_model(
            self.model_factory,
            poisoned,
            epochs=self.trojan_epochs,
            lr=self.trojan_lr,
            batch_size=context.local_config.batch_size,
            seed=context.seed + round_idx,
            init_params=global_params,
        )
        self.activated_round = round_idx

    def compute_update(self, client_id, global_params, round_idx, model, rng) -> np.ndarray:
        context = self._require_context()
        if round_idx < self.warmup_rounds:
            # Dormant: behave exactly like a benign client so that pre-attack
            # screening cannot tell the compromised clients apart.
            update, _ = local_train(
                model,
                global_params,
                context.dataset.client(client_id).train,
                context.local_config,
                rng,
            )
            return update
        if self.refresh_trojan and (
            self.activated_round is None or self.activated_round < self.warmup_rounds
        ):
            self._activate(global_params, round_idx)
        return super().compute_update(client_id, global_params, round_idx, model, rng)
