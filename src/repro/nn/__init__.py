"""Pure-numpy neural-network substrate.

The paper trains LeNet-style image classifiers and a small text-classification
head on top of frozen BERT features, using PyTorch.  This reproduction is
framework-free: every layer implements explicit ``forward`` / ``backward``
passes over numpy arrays, and models expose their parameters as an ordered
collection of named arrays so that federated-learning code can flatten them
into a single vector (the representation the attack and the defenses operate
on).

Public API
----------
Layers:      :class:`Linear`, :class:`Conv2d`, :class:`MaxPool2d`,
             :class:`ReLU`, :class:`Tanh`, :class:`Sigmoid`, :class:`Flatten`,
             :class:`Dropout`
Containers:  :class:`Sequential`
Losses:      :class:`SoftmaxCrossEntropy`, :class:`MSELoss`
Optimisers:  :class:`SGD`
Models:      :func:`make_mlp`, :func:`make_lenet`, :func:`make_text_head`
Utilities:   :func:`flatten_params`, :func:`unflatten_params`,
             :func:`parameter_count`
"""

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy
from repro.nn.model import Sequential, make_lenet, make_mlp, make_text_head
from repro.nn.optim import SGD
from repro.nn.serialization import (
    flatten_params,
    parameter_count,
    unflatten_params,
)

__all__ = [
    "Layer",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Sequential",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "SGD",
    "make_mlp",
    "make_lenet",
    "make_text_head",
    "flatten_params",
    "unflatten_params",
    "parameter_count",
]
