"""Loss functions.

Both losses expose ``forward(logits, targets)`` returning a scalar and
``backward()`` returning the gradient with respect to the logits (already
averaged over the batch), matching the convention used by the training loops
in :mod:`repro.federated`.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class SoftmaxCrossEntropy:
    """Combined softmax + cross-entropy loss with integer class targets."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (batch, num_classes)")
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ValueError("targets must be (batch,) integer labels")
        probs = softmax(logits)
        self._probs = probs
        self._targets = targets.astype(np.int64)
        batch = logits.shape[0]
        picked = probs[np.arange(batch), self._targets]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class BatchedSoftmaxCrossEntropy:
    """Client-stacked softmax cross-entropy over ``(clients, batch, classes)``.

    ``forward`` returns a ``(clients,)`` loss vector; each entry is bitwise
    equal to what :class:`SoftmaxCrossEntropy` computes for that client's
    ``(batch, classes)`` slice alone — the softmax reductions run over the
    (contiguous) last axis, and the per-client mean reduces a contiguous row,
    both of which NumPy evaluates exactly as in the 2-D case.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        # (clients, batch) -> broadcastable arange pair, cached because the
        # ragged step scheduler revisits the same handful of shapes per epoch
        # and index construction showed up in round profiles.
        self._index_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def _indices(self, clients: int, batch: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._index_cache.get((clients, batch))
        if cached is None:
            cached = (np.arange(clients)[:, None], np.arange(batch)[None, :])
            self._index_cache[(clients, batch)] = cached
        return cached

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        if logits.ndim != 3:
            raise ValueError("logits must be (clients, batch, num_classes)")
        if targets.shape != logits.shape[:2]:
            raise ValueError("targets must be (clients, batch) integer labels")
        probs = softmax(logits)
        self._probs = probs
        self._targets = targets.astype(np.int64)
        rows, cols = self._indices(*targets.shape)
        picked = probs[rows, cols, self._targets]
        return -np.log(np.clip(picked, 1e-12, None)).mean(axis=-1)

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        clients, batch, _ = self._probs.shape
        grad = self._probs.copy()
        rows, cols = self._indices(clients, batch)
        grad[rows, cols, self._targets] -= 1.0
        return grad / batch

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error; used by the knowledge-distillation step in MetaFed."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError("predictions and targets must have identical shapes")
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
