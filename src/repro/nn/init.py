"""Weight initialisation schemes for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for dense weight matrices.

    Parameters
    ----------
    shape:
        ``(fan_in, fan_out)`` for a dense layer.
    rng:
        Source of randomness; callers pass a seeded generator so that model
        initialisation is reproducible across federated clients.
    """
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) uniform initialisation, suitable for ReLU networks."""
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)
