"""Differentiable layers with explicit forward/backward passes.

Every layer follows the same contract:

* ``forward(x, training=False)`` consumes a numpy array and returns a numpy
  array, caching whatever is needed for the backward pass.
* ``backward(grad_out)`` consumes the gradient of the loss with respect to the
  layer output and returns the gradient with respect to the layer input,
  accumulating parameter gradients in ``self.grads``.
* ``params`` / ``grads`` are ordered dictionaries keyed by parameter name.

The design intentionally mirrors the subset of PyTorch used by the paper's
models (LeNet-style CNN, MLP heads) while staying dependency-free.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.nn.init import glorot_uniform, he_uniform

#: Seed of the generator a layer builds when the caller passes neither a
#: Generator nor a seed.  Constructing a layer must be deterministic — an
#: unseeded ``default_rng()`` here would draw OS entropy and break the
#: bit-identical-per-seed guarantee (and the rng-discipline lint rule).
_DEFAULT_INIT_SEED = 0


def _resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalise a layer's ``rng`` argument into a deterministic Generator.

    An explicit ``None`` (or omitted argument) falls back to a fixed-seed
    generator rather than OS entropy; integers seed a fresh generator (note
    ``seed=0`` is a valid seed, not a missing one).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(_DEFAULT_INIT_SEED if rng is None else rng)


class Layer:
    """Base class for all layers.

    Subclasses with trainable parameters populate ``self.params`` and
    ``self.grads`` with identically-keyed numpy arrays.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients to zero."""
        for name, grad in self.grads.items():
            self.grads[name] = np.zeros_like(grad)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = _resolve_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = glorot_uniform((in_features, out_features), rng)
        self.params["b"] = np.zeros(out_features, dtype=np.float64)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.grads["b"] = np.zeros_like(self.params["b"])
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ grad_out
        self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y**2)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class Flatten(Layer):
    """Reshape ``(batch, *dims)`` into ``(batch, prod(dims))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(
        self, p: float = 0.5, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = _resolve_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Extract sliding patches from ``(batch, C, H, W)`` into columns.

    Returns an array of shape ``(batch, out_h, out_w, C * kh * kw)`` together
    with the output spatial dimensions.
    """
    batch, channels, height, width = x.shape
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    shape = (batch, channels, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h, out_w, channels * kh * kw)
    return cols, out_h, out_w


class Conv2d(Layer):
    """2-D convolution (valid padding unless ``padding`` is given), stride 1+.

    Input/output layout is ``(batch, channels, height, width)``, matching the
    PyTorch convention used by the paper's LeNet model.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = _resolve_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = he_uniform((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        self.params["b"] = np.zeros(out_channels, dtype=np.float64)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.grads["b"] = np.zeros_like(self.params["b"])
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return x
        pad = self.padding
        return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        xp = self._pad(x)
        self._x_shape = xp.shape
        k = self.kernel_size
        cols, out_h, out_w = _im2col(xp, k, k, self.stride)
        self._cols = cols
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["b"]
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        grad = grad_out.transpose(0, 2, 3, 1)
        cols_2d = self._cols.reshape(-1, self._cols.shape[-1])
        grad_2d = grad.reshape(-1, self.out_channels)
        self.grads["W"] += (grad_2d.T @ cols_2d).reshape(self.params["W"].shape)
        self.grads["b"] += grad_2d.sum(axis=0)

        w_mat = self.params["W"].reshape(self.out_channels, -1)
        grad_cols = grad_2d @ w_mat
        grad_cols = grad_cols.reshape(batch, out_h, out_w, self.in_channels, k, k)

        # col2im scatter-add, vectorised over the output grid: instead of one
        # small add per output position (out_h × out_w iterations) do one big
        # strided add per kernel offset (k × k iterations).  Overlapping
        # windows accumulate because the strided views cover disjoint slices
        # per offset.
        grad_x = np.zeros(self._x_shape, dtype=np.float64)
        stride = self.stride
        offset_grads = grad_cols.transpose(0, 3, 4, 5, 1, 2)  # (B, C, kh, kw, oh, ow)
        for ki in range(k):
            for kj in range(k):
                grad_x[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += offset_grads[:, :, ki, kj]
        if self.padding:
            pad = self.padding
            grad_x = grad_x[:, :, pad:-pad, pad:-pad]
        return grad_x


class MaxPool2d(Layer):
    """Max pooling with square window and matching stride.

    Spatial dims that are not multiples of ``kernel_size`` are floored (the
    trailing remainder rows/columns are cropped, PyTorch's default); the
    backward pass routes zero gradient into the cropped region.
    """

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("pool size must be positive")
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None
        self._out_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k = self.kernel_size
        batch, channels, height, width = x.shape
        out_h, out_w = height // k, width // k
        if out_h == 0 or out_w == 0:
            raise ValueError(
                f"MaxPool2d({k}) input of {height}x{width} is smaller than its window"
            )
        self._x_shape = x.shape
        cropped = x[:, :, : out_h * k, : out_w * k]
        windows = cropped.reshape(batch, channels, out_h, k, out_w, k).transpose(0, 1, 2, 4, 3, 5)
        windows = windows.reshape(batch, channels, out_h, out_w, k * k)
        self._argmax = windows.argmax(axis=-1)
        self._out_shape = (batch, channels, out_h, out_w)
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        batch, channels, out_h, out_w = self._out_shape
        grad_windows = np.zeros((batch, channels, out_h, out_w, k * k), dtype=np.float64)
        idx = np.indices((batch, channels, out_h, out_w))
        grad_windows[idx[0], idx[1], idx[2], idx[3], self._argmax] = grad_out
        grad_windows = grad_windows.reshape(batch, channels, out_h, out_w, k, k)
        region = grad_windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h * k, out_w * k
        )
        grad_x = np.zeros(self._x_shape, dtype=np.float64)
        grad_x[:, :, : out_h * k, : out_w * k] = region
        return grad_x


# ---------------------------------------------------------------------------
# Batched (stacked-client) kernels.
#
# These layers train ``clients`` identically-shaped models at once by giving
# every array a leading ``clients`` dimension: inputs are
# ``(clients, batch, ...)`` and parameters are per-client planes
# ``(clients, *shape)``, so client weights never mix.  The per-slice math is
# dispatched through ``np.matmul``'s gufunc, which runs one BLAS GEMM per
# leading-dimension slice with exactly the shapes/strides the serial layers
# use — that is what makes the batched path *bitwise* identical to running
# each client through the serial layer, not merely numerically close.
#
# Two deliberate contract deviations from the serial layers, both in the name
# of round throughput:
#
# * ``backward`` OVERWRITES ``self.grads`` instead of accumulating — the
#   batched trainer performs exactly one backward per optimiser step, so the
#   serial accumulate-into-zeros dance (a ``zeros_like`` allocation plus an
#   extra full pass per parameter per step) buys nothing.  Parameter
#   trajectories are unaffected: serial ``0 + g`` and batched ``g`` feed the
#   same SGD arithmetic.
# * matmul results land in per-layer persistent buffers (``out=``) keyed by
#   shape, so steady-state training does no large allocations.  A buffer is
#   only valid until the same layer's next call with that shape, which the
#   strictly sequential step loop of ``local_train_batched`` guarantees.
# ---------------------------------------------------------------------------


class _BufferMixin:
    """Shape-keyed persistent output buffers for the batched layers."""

    def _buf(self, tag: str, shape: tuple[int, ...]) -> np.ndarray:
        key = (tag, shape)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            self._bufs[key] = buf
        return buf


class BatchedLinear(_BufferMixin, Layer):
    """Per-client fully connected layer: ``y[c] = x[c] @ W[c] + b[c]``."""

    def __init__(self, num_clients: int, in_features: int, out_features: int) -> None:
        super().__init__()
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.num_clients = num_clients
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = np.zeros((num_clients, in_features, out_features), dtype=np.float64)
        self.params["b"] = np.zeros((num_clients, out_features), dtype=np.float64)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.grads["b"] = np.zeros_like(self.params["b"])
        self._x: np.ndarray | None = None
        self._bufs: dict = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3 or x.shape[0] != self.num_clients or x.shape[2] != self.in_features:
            raise ValueError(
                f"BatchedLinear expected ({self.num_clients}, batch, "
                f"{self.in_features}), got {x.shape}"
            )
        self._x = x
        out = self._buf("fwd", (x.shape[0], x.shape[1], self.out_features))
        np.matmul(x, self.params["W"], out=out)
        out += self.params["b"][:, None, :]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        np.matmul(self._x.transpose(0, 2, 1), grad_out, out=self.grads["W"])
        np.sum(grad_out, axis=1, out=self.grads["b"])
        grad_x = self._buf("bwd", self._x.shape)
        np.matmul(grad_out, self.params["W"].transpose(0, 2, 1), out=grad_x)
        return grad_x


class BatchedFlatten(Layer):
    """Reshape ``(clients, batch, *dims)`` into ``(clients, batch, prod(dims))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


def _im2col_clients(
    x: np.ndarray, kh: int, kw: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Client-stacked :func:`_im2col`: ``(clients, batch, C, H, W)`` input.

    Returns ``(clients, batch, out_h, out_w, C * kh * kw)`` columns; each
    client slice is byte-identical to what ``_im2col`` extracts from that
    client's own ``(batch, C, H, W)`` array.
    """
    clients, batch, channels, height, width = x.shape
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    shape = (clients, batch, channels, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3] * stride,
        x.strides[4] * stride,
        x.strides[3],
        x.strides[4],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 1, 3, 4, 2, 5, 6).reshape(
        clients, batch, out_h, out_w, channels * kh * kw
    )
    return cols, out_h, out_w


class BatchedConv2d(_BufferMixin, Layer):
    """Per-client 2-D convolution over ``(clients, batch, C, H, W)`` input."""

    def __init__(
        self,
        num_clients: int,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        super().__init__()
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.num_clients = num_clients
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.params["W"] = np.zeros(
            (num_clients, out_channels, in_channels, kernel_size, kernel_size),
            dtype=np.float64,
        )
        self.params["b"] = np.zeros((num_clients, out_channels), dtype=np.float64)
        self.grads["W"] = np.zeros_like(self.params["W"])
        self.grads["b"] = np.zeros_like(self.params["b"])
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._bufs: dict = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 5 or x.shape[0] != self.num_clients or x.shape[2] != self.in_channels:
            raise ValueError(
                f"BatchedConv2d expected ({self.num_clients}, batch, "
                f"{self.in_channels}, H, W), got {x.shape}"
            )
        if self.padding:
            pad = self.padding
            x = np.pad(x, ((0, 0), (0, 0), (0, 0), (pad, pad), (pad, pad)))
        self._x_shape = x.shape
        k = self.kernel_size
        cols, out_h, out_w = _im2col_clients(x, k, k, self.stride)
        self._cols = cols
        w_mat = self.params["W"].reshape(self.num_clients, self.out_channels, -1)
        # Indexing (not reshape) adds the broadcast axes so each per-(client,
        # image, row) slice runs the *same* (ow, ckk) @ (ckk, out) GEMM the
        # serial forward's broadcast ``cols @ w_mat.T`` runs — flattening rows
        # into one big GEMM changes dgemm's accumulation order at some shapes
        # (observed at the second conv of the default LeNet) and breaks
        # bit-identity, so the row-sliced form is load-bearing, not stylistic.
        w_t = w_mat.transpose(0, 2, 1)[:, None, None, :, :]
        out = self._buf("fwd", cols.shape[:-1] + (self.out_channels,))
        np.matmul(cols, w_t, out=out)
        out += self.params["b"][:, None, None, None, :]
        return out.transpose(0, 1, 4, 2, 3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        clients, batch, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        ckk = self._cols.shape[-1]
        grad = grad_out.transpose(0, 1, 3, 4, 2)
        cols_2d = self._cols.reshape(clients, -1, ckk)
        grad_2d = grad.reshape(clients, -1, self.out_channels)
        np.matmul(
            grad_2d.transpose(0, 2, 1),
            cols_2d,
            out=self.grads["W"].reshape(clients, self.out_channels, ckk),
        )
        np.sum(grad_2d, axis=1, out=self.grads["b"])

        w_mat = self.params["W"].reshape(clients, self.out_channels, -1)
        grad_cols = self._buf("bwd", (clients, grad_2d.shape[1], ckk))
        np.matmul(grad_2d, w_mat, out=grad_cols)
        grad_cols = grad_cols.reshape(
            clients, batch, out_h, out_w, self.in_channels, k, k
        )

        grad_x = np.zeros(self._x_shape, dtype=np.float64)
        stride = self.stride
        offset_grads = grad_cols.transpose(0, 1, 4, 5, 6, 2, 3)  # (C, B, ch, kh, kw, oh, ow)
        for ki in range(k):
            for kj in range(k):
                grad_x[
                    :, :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ] += offset_grads[:, :, :, ki, kj]
        if self.padding:
            pad = self.padding
            grad_x = grad_x[:, :, :, pad:-pad, pad:-pad]
        return grad_x


class BatchedMaxPool2d(Layer):
    """Per-client max pooling over ``(clients, batch, C, H, W)`` input."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("pool size must be positive")
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None
        self._argmax: np.ndarray | None = None
        self._out_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k = self.kernel_size
        clients, batch, channels, height, width = x.shape
        out_h, out_w = height // k, width // k
        if out_h == 0 or out_w == 0:
            raise ValueError(
                f"MaxPool2d({k}) input of {height}x{width} is smaller than its window"
            )
        self._x_shape = x.shape
        cropped = x[:, :, :, : out_h * k, : out_w * k]
        windows = cropped.reshape(
            clients, batch, channels, out_h, k, out_w, k
        ).transpose(0, 1, 2, 3, 5, 4, 6)
        windows = windows.reshape(clients, batch, channels, out_h, out_w, k * k)
        self._argmax = windows.argmax(axis=-1)
        self._out_shape = (clients, batch, channels, out_h, out_w)
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None or self._out_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        clients, batch, channels, out_h, out_w = self._out_shape
        grad_windows = np.zeros(
            (clients, batch, channels, out_h, out_w, k * k), dtype=np.float64
        )
        idx = np.indices((clients, batch, channels, out_h, out_w))
        grad_windows[idx[0], idx[1], idx[2], idx[3], idx[4], self._argmax] = grad_out
        grad_windows = grad_windows.reshape(clients, batch, channels, out_h, out_w, k, k)
        region = grad_windows.transpose(0, 1, 2, 3, 5, 4, 6).reshape(
            clients, batch, channels, out_h * k, out_w * k
        )
        grad_x = np.zeros(self._x_shape, dtype=np.float64)
        grad_x[:, :, :, : out_h * k, : out_w * k] = region
        return grad_x


#: Activations whose math is elementwise and shape-agnostic: the serial layer
#: classes operate on client-stacked arrays unchanged.
_ELEMENTWISE_LAYERS = (ReLU, Tanh, Sigmoid)


def has_batched_counterpart(layer: Layer) -> bool:
    """Whether :func:`batch_layer` can stack this layer across clients.

    ``Dropout`` is the notable exception: it draws from a layer-internal RNG
    whose consumption order is execution-dependent, which would void the
    batched ≡ serial bit-identity guarantee.
    """
    return isinstance(
        layer, (Linear, Conv2d, MaxPool2d, Flatten) + _ELEMENTWISE_LAYERS
    )


def batch_layer(layer: Layer, num_clients: int) -> Layer:
    """Build the client-stacked counterpart of a serial layer.

    Only geometry is copied — parameters are freshly allocated planes, to be
    filled by ``BatchedSequential.load_global``.
    """
    if isinstance(layer, Linear):
        return BatchedLinear(num_clients, layer.in_features, layer.out_features)
    if isinstance(layer, Conv2d):
        return BatchedConv2d(
            num_clients,
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
        )
    if isinstance(layer, MaxPool2d):
        return BatchedMaxPool2d(layer.kernel_size)
    if isinstance(layer, Flatten):
        return BatchedFlatten()
    if isinstance(layer, _ELEMENTWISE_LAYERS):
        return type(layer)()
    raise ValueError(
        f"{type(layer).__name__} has no batched counterpart; run these "
        "clients on a serial execution path"
    )


def slice_clients(layer: Layer, a: int, b: int) -> Layer:
    """A view-layer over client rows ``[a, b)`` of a batched layer.

    Parameter and gradient entries are basic-slice *views* into the parent
    layer's planes — math done through the view lands directly in the parent's
    storage, which is how the ragged step scheduler in
    :func:`repro.federated.client.local_train_batched` trains a sub-range of
    a client stack (clients whose datasets ran out of full batches) without
    copying weights in or out.  Activation caches and output buffers are
    per-view, so interleaving a view with its parent is safe as long as each
    forward/backward pair completes before the next begins.
    """
    if not 0 <= a < b <= getattr(layer, "num_clients", b):
        raise ValueError(f"invalid client slice [{a}, {b})")
    if isinstance(layer, (BatchedLinear, BatchedConv2d)):
        clone = copy.copy(layer)
        clone.num_clients = b - a
        clone.params = {name: plane[a:b] for name, plane in layer.params.items()}
        clone.grads = {name: plane[a:b] for name, plane in layer.grads.items()}
        clone._bufs = {}
        if isinstance(layer, BatchedLinear):
            clone._x = None
        else:
            clone._cols = None
            clone._x_shape = None
        return clone
    if isinstance(layer, BatchedMaxPool2d):
        return BatchedMaxPool2d(layer.kernel_size)
    if isinstance(layer, BatchedFlatten):
        return BatchedFlatten()
    if isinstance(layer, _ELEMENTWISE_LAYERS):
        return type(layer)()
    raise ValueError(f"{type(layer).__name__} cannot be client-sliced")
