"""Optimisers for local client training.

The paper uses SGD with learning rate 0.01 (global) and 0.001 (local models);
this module provides SGD with optional momentum and weight decay, operating on
any model exposing ``named_parameters`` / ``named_gradients``.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        model,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight decay must be non-negative")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients accumulated on the model."""
        grads = dict(self.model.named_gradients())
        for name, param in self.model.named_parameters():
            grad = grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param)
                vel = self.momentum * vel + grad
                self._velocity[name] = vel
                update = vel
            else:
                update = grad
            param -= self.lr * update

    def zero_grad(self) -> None:
        """Clear accumulated gradients on the underlying model."""
        self.model.zero_grad()


class BatchedSGD(SGD):
    """SGD over a batched model's stacked per-client parameter planes.

    Every rule in :meth:`SGD.step` — weight decay, momentum, the parameter
    update — is elementwise, so applying it to ``(clients, *shape)`` planes
    performs each client's serial update exactly: one vectorised step
    replaces ``clients`` small ones, bit-for-bit.  The momentum velocity
    dict holds one stacked plane per parameter name, mirroring the fresh
    per-client velocities of a serial optimiser created per client.

    :meth:`step_slice` applies the update to a contiguous sub-range of
    clients only — the ragged step scheduler uses it to step exactly the
    clients that trained on the current mini-batch, the way each serial
    optimiser steps only its own client.
    """

    def __init__(
        self,
        model,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if not hasattr(model, "num_clients"):
            raise ValueError(
                "BatchedSGD requires a client-stacked model (BatchedSequential)"
            )
        super().__init__(model, lr=lr, momentum=momentum, weight_decay=weight_decay)
        # (name, param plane, grad plane, scratch plane) — resolved once; the
        # planes are stable arrays (``load_global`` writes in place), so
        # re-walking the model and building gradient dicts every step would
        # only burn Python time.  The scratch plane holds ``lr * update`` so
        # the hot ``param -= lr * update`` line allocates nothing.
        grads = dict(model.named_gradients())
        self._pairs = [
            (name, param, grads[name], np.empty_like(param))
            for name, param in model.named_parameters()
        ]

    def step(self) -> None:
        self.step_slice(0, self.model.num_clients)

    def step_slice(self, a: int, b: int) -> None:
        """Apply one update to client rows ``[a, b)`` of every plane.

        Velocity planes are allocated full-size on first use and sliced, so a
        client's momentum state persists across steps regardless of which
        run (full-batch prefix or partial-batch tail) it lands in.
        """
        if not 0 <= a < b <= self.model.num_clients:
            raise ValueError(
                f"invalid client range [{a}, {b}) for {self.model.num_clients} clients"
            )
        for name, param, grad_plane, scratch in self._pairs:
            grad = grad_plane[a:b]
            plane = param[a:b]
            if self.weight_decay:
                grad = grad + self.weight_decay * plane
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param)
                    self._velocity[name] = vel
                vel_slice = vel[a:b]
                np.multiply(vel_slice, self.momentum, out=vel_slice)
                vel_slice += grad
                update = vel_slice
            else:
                update = grad
            # ``update * lr`` into scratch, then in-place subtract: the same
            # two elementwise ops as ``plane -= lr * update``, minus the temp.
            scratch_slice = scratch[a:b]
            np.multiply(update, self.lr, out=scratch_slice)
            plane -= scratch_slice
