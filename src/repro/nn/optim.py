"""Optimisers for local client training.

The paper uses SGD with learning rate 0.01 (global) and 0.001 (local models);
this module provides SGD with optional momentum and weight decay, operating on
any model exposing ``named_parameters`` / ``named_gradients``.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        model,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight decay must be non-negative")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients accumulated on the model."""
        grads = dict(self.model.named_gradients())
        for name, param in self.model.named_parameters():
            grad = grads[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param)
                vel = self.momentum * vel + grad
                self._velocity[name] = vel
                update = vel
            else:
                update = grad
            param -= self.lr * update

    def zero_grad(self) -> None:
        """Clear accumulated gradients on the underlying model."""
        self.model.zero_grad()
