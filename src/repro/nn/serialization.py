"""Flattening model parameters to/from a single vector.

Federated learning, the CollaPois attack, and every robust-aggregation defense
in this library operate on *flat parameter vectors*: a client update is
``Δθ = flatten(local model) − flatten(global model)``.  These helpers define
that canonical ordering (layer order, then parameter-name order within each
layer) and guarantee that ``unflatten_params(model, flatten_params(model))``
is the identity.
"""

from __future__ import annotations

import numpy as np


def flatten_params(model) -> np.ndarray:
    """Concatenate every trainable parameter of ``model`` into one 1-D vector."""
    chunks = [param.ravel() for _, param in model.named_parameters()]
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks).astype(np.float64)


def unflatten_params(model, vector: np.ndarray) -> None:
    """Write ``vector`` back into the model's parameters in place.

    Raises
    ------
    ValueError
        If the vector length does not match the model's parameter count.
    """
    expected = parameter_count(model)
    if vector.ndim != 1 or vector.shape[0] != expected:
        raise ValueError(
            f"parameter vector has length {vector.shape}, model expects ({expected},)"
        )
    offset = 0
    for _, param in model.named_parameters():
        size = param.size
        param[...] = vector[offset : offset + size].reshape(param.shape)
        offset += size


def parameter_count(model) -> int:
    """Total number of trainable scalars in ``model``."""
    return int(sum(param.size for _, param in model.named_parameters()))


#: Wire encodings a flat vector may ship as: tag → little-endian NumPy dtype.
#: ``float64`` round-trips bit-for-bit (the default everywhere); ``float32``
#: halves the bytes on the wire at ~1e-7 relative rounding per element.
WIRE_DTYPES = {"float64": "<f8", "float32": "<f4"}


def wire_dtype(tag: str) -> np.dtype:
    """Resolve a wire dtype tag, rejecting anything outside :data:`WIRE_DTYPES`."""
    try:
        return np.dtype(WIRE_DTYPES[tag])
    except KeyError:
        known = ", ".join(sorted(WIRE_DTYPES))
        raise ValueError(f"unknown wire dtype {tag!r} (known: {known})") from None


def vector_to_bytes(vector: np.ndarray, dtype: str = "float64") -> bytes:
    """Canonical wire encoding of a flat parameter vector.

    The distributed execution protocol ships parameter vectors and client
    updates as raw little-endian floats.  The default ``float64`` matches the
    dtype :func:`flatten_params` produces, so a vector round-trips through
    :func:`vector_from_bytes` bit-for-bit — what keeps remote execution
    bit-identical to local execution.  ``float32`` is a lossy opt-in that
    halves wire traffic.
    """
    arr = np.ascontiguousarray(vector, dtype=wire_dtype(dtype))
    if arr.ndim != 1:
        raise ValueError(f"expected a flat vector, got shape {arr.shape}")
    return arr.tobytes()


def vector_from_bytes(data, dtype: str = "float64") -> np.ndarray:
    """Decode :func:`vector_to_bytes` output back into a float64 vector.

    Accepts ``bytes`` or a ``memoryview`` (the protocol decoder passes
    zero-copy views into the received frame).
    """
    dt = wire_dtype(dtype)
    nbytes = data.nbytes if isinstance(data, memoryview) else len(data)
    if nbytes % dt.itemsize:
        raise ValueError(
            f"vector payload of {nbytes} bytes is not {dtype}-aligned"
        )
    # Copy (astype): frombuffer views are read-only and would pin the message
    # buffer alive.
    return np.frombuffer(data, dtype=dt).astype(np.float64)


def flatten_grads(model) -> np.ndarray:
    """Concatenate every parameter gradient of ``model`` into one 1-D vector."""
    chunks = [grad.ravel() for _, grad in model.named_gradients()]
    if not chunks:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(chunks).astype(np.float64)
