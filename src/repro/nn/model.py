"""Model containers and factories for the architectures used in the paper.

The paper (Section V, Supplementary E) uses:

* a LeNet-based network (two convolution + two fully connected layers) for
  the FEMNIST image task — reproduced by :func:`make_lenet`;
* a two-layer fully connected task head on top of frozen BERT features for
  the Sentiment text task — reproduced by :func:`make_text_head`;
* plain MLPs for ablations and quick experiments — :func:`make_mlp`.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    batch_layer,
    has_batched_counterpart,
    slice_clients,
)
from repro.nn.losses import softmax
from repro.registry import MODELS


class Sequential:
    """Ordered container of layers with whole-model forward/backward.

    The container also implements the parameter-introspection protocol used by
    :mod:`repro.nn.serialization` (``named_parameters`` / ``named_gradients``)
    and convenience prediction helpers used by the metrics code.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_parameters(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` pairs in a deterministic order."""
        for idx, layer in enumerate(self.layers):
            for name in sorted(layer.params):
                yield f"layer{idx}.{name}", layer.params[name]

    def named_gradients(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, gradient array)`` pairs aligned with parameters."""
        for idx, layer in enumerate(self.layers):
            for name in sorted(layer.grads):
                yield f"layer{idx}.{name}", layer.grads[name]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of inputs (evaluation mode)."""
        return softmax(self.forward(x, training=False))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions for a batch of inputs."""
        return self.forward(x, training=False).argmax(axis=-1)

    def clone(self) -> "Sequential":
        """Deep copy of the model (parameters included, caches discarded)."""
        return copy.deepcopy(self)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def supports_batching(model: Sequential) -> bool:
    """Whether every layer of ``model`` has a client-stacked counterpart."""
    return all(has_batched_counterpart(layer) for layer in model.layers)


class BatchedSequential:
    """Train ``num_clients`` copies of one architecture as a single model.

    Layers carry per-client parameter planes ``(clients, *shape)`` and all
    activations a leading ``clients`` dimension, so one forward/backward pass
    trains every client at once — with per-slice math bitwise identical to
    running each client through the serial :class:`Sequential` (see the
    batched-kernel notes in :mod:`repro.nn.layers`).  ``named_parameters``
    yields planes under the *same* canonical names as the template model,
    which is what keeps the flat-vector ordering of
    :mod:`repro.nn.serialization` aligned between the two.
    """

    def __init__(self, layers: list[Layer], num_clients: int) -> None:
        if not layers:
            raise ValueError("BatchedSequential requires at least one layer")
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        self.layers = list(layers)
        self.num_clients = num_clients
        self._views: dict[tuple[int, int], BatchedSequential] = {}

    @classmethod
    def from_template(cls, template: Sequential, num_clients: int) -> "BatchedSequential":
        """Stack a serial model's architecture across ``num_clients`` clients."""
        return cls(
            [batch_layer(layer, num_clients) for layer in template.layers], num_clients
        )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_parameters(self) -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(name, plane)`` pairs in the template model's order."""
        for idx, layer in enumerate(self.layers):
            for name in sorted(layer.params):
                yield f"layer{idx}.{name}", layer.params[name]

    def named_gradients(self) -> Iterator[tuple[str, np.ndarray]]:
        for idx, layer in enumerate(self.layers):
            for name in sorted(layer.grads):
                yield f"layer{idx}.{name}", layer.grads[name]

    def parameter_count(self) -> int:
        """Per-client flat parameter count (matches the template model's)."""
        return int(sum(plane[0].size for _, plane in self.named_parameters()))

    def load_global(self, vector: np.ndarray) -> None:
        """Write one flat global parameter vector into every client's planes."""
        expected = self.parameter_count()
        if vector.ndim != 1 or vector.shape[0] != expected:
            raise ValueError(
                f"parameter vector has length {vector.shape}, model expects ({expected},)"
            )
        offset = 0
        for _, plane in self.named_parameters():
            size = plane[0].size
            plane[...] = vector[offset : offset + size].reshape(plane.shape[1:])
            offset += size

    def view(self, a: int, b: int) -> "BatchedSequential":
        """A cached sub-model over client rows ``[a, b)`` sharing storage.

        Layer parameters and gradients of the view are basic-slice views into
        this model's planes (see :func:`repro.nn.layers.slice_clients`), so
        training through the view updates the parent in place.  Views are
        cached per range — the ragged step scheduler revisits the same handful
        of prefixes every epoch.
        """
        if a == 0 and b == self.num_clients:
            return self
        if not 0 <= a < b <= self.num_clients:
            raise ValueError(
                f"invalid client range [{a}, {b}) for {self.num_clients} clients"
            )
        cached = self._views.get((a, b))
        if cached is None:
            cached = BatchedSequential(
                [slice_clients(layer, a, b) for layer in self.layers], b - a
            )
            self._views[(a, b)] = cached
        return cached

    def flatten_per_client(self) -> np.ndarray:
        """Flatten every client's parameters into a ``(clients, dim)`` matrix.

        Row ``c`` equals ``flatten_params`` of client ``c``'s serial model:
        the same canonical (layer order, then name order) concatenation,
        written segment-by-segment into one output matrix (a single copy;
        ``np.concatenate`` + ``astype`` would make two).
        """
        out = np.empty((self.num_clients, self.parameter_count()), dtype=np.float64)
        offset = 0
        for _, plane in self.named_parameters():
            size = plane[0].size
            out[:, offset : offset + size] = plane.reshape(self.num_clients, size)
            offset += size
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


@MODELS.register("mlp")
def make_mlp(
    in_features: int,
    hidden: tuple[int, ...],
    num_classes: int,
    seed: int = 0,
    dropout: float = 0.0,
) -> Sequential:
    """Multi-layer perceptron with ReLU activations.

    Parameters
    ----------
    in_features:
        Input feature dimension.
    hidden:
        Sizes of the hidden layers; may be empty for a linear classifier.
    num_classes:
        Output dimension (logits).
    seed:
        Seed for weight initialisation; the same seed yields byte-identical
        models, which federated learning relies on for a shared ``θ¹``.
    dropout:
        Optional dropout probability applied after each hidden activation.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = []
    prev = in_features
    for width in hidden:
        layers.append(Linear(prev, width, rng=rng))
        layers.append(ReLU())
        if dropout > 0.0:
            layers.append(Dropout(dropout, rng=np.random.default_rng(seed + 1)))
        prev = width
    layers.append(Linear(prev, num_classes, rng=rng))
    return Sequential(layers)


@MODELS.register("lenet")
def make_lenet(
    image_size: int = 16,
    in_channels: int = 1,
    num_classes: int = 10,
    conv_channels: tuple[int, int] = (6, 16),
    fc_width: int = 64,
    seed: int = 0,
) -> Sequential:
    """LeNet-style CNN: two conv+pool blocks followed by two dense layers.

    The default geometry is sized for the synthetic FEMNIST-like images used
    in this reproduction (``image_size`` × ``image_size`` single-channel),
    mirroring the paper's "LeNet-based network with two convolution and two
    fully connected layers".
    """
    if image_size % 4 != 0:
        raise ValueError("image_size must be divisible by 4 for the two pooling stages")
    rng = np.random.default_rng(seed)
    c1, c2 = conv_channels
    layers: list[Layer] = [
        Conv2d(in_channels, c1, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c1, c2, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(c2 * (image_size // 4) ** 2, fc_width, rng=rng),
        ReLU(),
        Linear(fc_width, num_classes, rng=rng),
    ]
    return Sequential(layers)


@MODELS.register("text")
def make_text_head(
    embedding_dim: int = 32,
    hidden: int = 64,
    num_classes: int = 2,
    seed: int = 0,
) -> Sequential:
    """Two-layer fully connected task head over frozen text embeddings.

    Stands in for the paper's "BERT tokenizer with a two-layer fully connected
    task head": the encoder is frozen in the paper, so federated training only
    updates this head.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        Linear(embedding_dim, hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    ]
    return Sequential(layers)
