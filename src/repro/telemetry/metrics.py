"""A small metrics registry: counters, gauges and histograms.

Instruments are created on first use (``registry.counter("rounds_total")``)
and updated from any thread — shard workers record their busy time, the
coordinator records queue depths while the driver thread folds — so every
mutation runs under one registry lock.  The fold/train work between
observations is milliseconds-to-seconds; a lock around a float add is
noise.

Histograms keep summary statistics (count/total/min/max), not buckets:
the questions the engine asks ("how deep did the coordinator queue get",
"how busy were the shard workers") are answered by the extremes and the
mean, and summaries serialise to a handful of numbers per instrument.
"""

from __future__ import annotations

import threading


class Counter:
    """Monotonically increasing count."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value of some observable."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary (count/total/min/max) of observed samples."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Name → instrument map with create-on-first-use accessors.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name with a different kind is a programming error
    and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(self._lock)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def to_dict(self) -> dict:
        with self._lock:
            names = list(self._instruments)
        return {name: self._instruments[name].to_dict() for name in sorted(names)}
