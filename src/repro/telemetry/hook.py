"""TelemetryHook: harvest engine observables into the metrics registry.

The spans are recorded at explicit instrumentation points (they need to
wrap code); the *metrics* side mostly reads counters the engine already
maintains — the coordinator's ``redispatch_count``, the batched runner's
``batched_task_count``, a lazy population's ``cache_info()``, the
buffered-async carry bookkeeping on each round record — so one hook at
``on_round_end`` is the natural choke point.  The hook implements no
per-update event, so registering it never triggers the server's
update-event/retained-list materialisation: telemetry stays out of band.
"""

from __future__ import annotations

from repro.federated.engine.hooks import RoundHook


class TelemetryHook(RoundHook):
    """Snapshot engine observables into the run's metrics once per round."""

    def __init__(self, telemetry) -> None:
        self.telemetry = telemetry

    def on_round_end(self, server, plan, record) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("rounds_total").inc()
        metrics.counter("clients_sampled_total").inc(len(plan.sampled_clients))

        backend = server.backend
        redispatch = getattr(backend, "redispatch_count", None)
        if redispatch is not None:
            metrics.gauge("distributed.redispatch_total").set(int(redispatch))
        # The batched runner lives on the dedicated batched backend
        # (``_runner``) or the serial backend's opt-in path (``_batched_runner``).
        runner = getattr(backend, "_runner", None) or getattr(
            backend, "_batched_runner", None
        )
        batched = getattr(runner, "batched_task_count", None)
        if batched is not None:
            metrics.gauge("batched.stacked_task_total").set(int(batched))

        cache_info = getattr(server.dataset, "cache_info", None)
        if callable(cache_info):
            for key, value in cache_info().items():
                metrics.gauge(f"population.cache_{key}").set(value)

        buffered = record.extras.get("buffered_async")
        if buffered:
            metrics.counter("buffered_async.folded_total").inc(buffered["folded"])
            metrics.counter("buffered_async.carried_out_total").inc(
                buffered["carried_out"]
            )
