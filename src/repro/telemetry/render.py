"""Turn a serialised telemetry dict into the ``repro trace`` report.

Input is the plain-dict form :meth:`~repro.telemetry.core.RunTelemetry.
to_dict` produces (the ``telemetry`` key of a ``repro run --out`` results
file) — rendering works on saved JSON from any process, so the functions
here take dicts, not live tracer objects.
"""

from __future__ import annotations

from repro.experiments.results import format_table

#: Phases that carry a ``round`` attribute but describe per-task work; the
#: slowest-task list draws from these.
_TASK_PHASE = "client_train"


def _finished_spans(telemetry: dict) -> list[dict]:
    return [s for s in telemetry.get("spans", []) if s.get("end") is not None]


def _where(attrs: dict) -> str:
    """Human label for where a task span executed."""
    worker = attrs.get("worker")
    if worker is not None:
        return f"worker:{worker}"
    if attrs.get("batched"):
        return f"driver (stack of {attrs.get('clients', '?')})"
    if attrs.get("processes"):
        return f"driver ({attrs['processes']} forked procs)"
    return "driver"


def phase_rows(telemetry: dict) -> list[dict]:
    """Per-round phase breakdown: one row per (round, span name)."""
    totals: dict[tuple, dict] = {}
    for span in _finished_spans(telemetry):
        round_idx = span.get("attrs", {}).get("round", "")
        key = (round_idx, span["name"])
        entry = totals.setdefault(key, {"count": 0, "total": 0.0})
        entry["count"] += 1
        entry["total"] += span["end"] - span["start"]
    rows = []
    for (round_idx, name), entry in sorted(
        totals.items(), key=lambda item: (str(item[0][0]), -item[1]["total"])
    ):
        rows.append(
            {
                "round": round_idx,
                "phase": name,
                "count": entry["count"],
                "total_s": round(entry["total"], 4),
                "mean_s": round(entry["total"] / entry["count"], 4),
            }
        )
    return rows


def phase_totals(telemetry: dict) -> dict[str, float]:
    """Whole-run seconds per phase name (the BENCH distillation shape)."""
    totals: dict[str, float] = {}
    for span in _finished_spans(telemetry):
        totals[span["name"]] = totals.get(span["name"], 0.0) + (
            span["end"] - span["start"]
        )
    return {name: round(seconds, 4) for name, seconds in sorted(totals.items())}


def slowest_task_rows(telemetry: dict, top: int = 10) -> list[dict]:
    """The ``top`` longest client-training spans, slowest first."""
    tasks = [
        span for span in _finished_spans(telemetry) if span["name"] == _TASK_PHASE
    ]
    tasks.sort(key=lambda s: s["end"] - s["start"], reverse=True)
    rows = []
    for span in tasks[:top]:
        attrs = span.get("attrs", {})
        client = attrs.get("client")
        if client is None:
            client = f"{attrs.get('clients', '?')} stacked"
        rows.append(
            {
                "round": attrs.get("round", ""),
                "client": client,
                "where": _where(attrs),
                "seconds": round(span["end"] - span["start"], 4),
            }
        )
    return rows


def metric_rows(telemetry: dict) -> list[dict]:
    """One row per metric instrument, histogram summaries flattened."""
    rows = []
    for name, data in sorted(telemetry.get("metrics", {}).items()):
        kind = data.get("type", "?")
        if kind == "histogram":
            mean = data.get("mean")
            value = (
                f"count={data.get('count')} mean={mean:.4f} "
                f"min={data.get('min'):.4f} max={data.get('max'):.4f}"
                if data.get("count")
                else "count=0"
            )
        else:
            value = str(data.get("value"))
        rows.append({"metric": name, "type": kind, "value": value})
    return rows


def clock_offset_rows(telemetry: dict) -> list[dict]:
    """Per-link clock-offset estimates (driver clock minus worker clock)."""
    return [
        {"link": link, "offset_s": round(offset, 6)}
        for link, offset in sorted(telemetry.get("clock_offsets", {}).items())
    ]


def render_trace(telemetry: dict, top: int = 10) -> str:
    """The full plain-text report ``repro trace`` prints."""
    sections = ["Per-round phase breakdown:", format_table(phase_rows(telemetry))]
    tasks = slowest_task_rows(telemetry, top=top)
    if tasks:
        sections += [f"\nSlowest {len(tasks)} client-training task(s):",
                     format_table(tasks)]
    metrics = metric_rows(telemetry)
    if metrics:
        sections += ["\nMetrics:", format_table(metrics)]
    offsets = clock_offset_rows(telemetry)
    if offsets:
        sections += ["\nWorker clock offsets (driver - worker, min over frames):",
                     format_table(offsets)]
    return "\n".join(sections)
