"""The per-run telemetry bundle: one tracer, one registry, clock offsets."""

from __future__ import annotations

import threading

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import SpanTracer

#: Schema tag on serialised telemetry, bumped with the dict layout.
TELEMETRY_VERSION = 1


class RunTelemetry:
    """Everything one run records about itself, out of band.

    Created by the server when ``ServerConfig.telemetry`` is on and threaded
    through the :class:`~repro.federated.engine.backends.EngineContext` and
    :class:`~repro.defenses.base.AggregationContext`, so every
    instrumentation point — backends, aggregators, the distributed
    coordinator — reaches the same bundle without new plumbing per layer.

    ``clock_offsets`` maps a link label (``worker:<pid>``) to the estimated
    offset between the driver tracer's clock and that worker's
    ``time.monotonic()``: each UPDATE frame's telemetry blob carries the
    worker's send timestamp, and the minimum of ``driver_now - worker_sent``
    over a link's frames approximates the fixed offset (the residual above
    the minimum is transport latency).  Offsets are *annotation*, not
    correction — merged worker spans sit on the driver clock at arrival.
    """

    def __init__(self) -> None:
        self.tracer = SpanTracer()
        self.metrics = MetricsRegistry()
        self._offset_lock = threading.Lock()
        self._clock_offsets: dict[str, float] = {}

    def record_clock_offset(self, link: str, offset: float) -> None:
        """Fold one ``driver_now - worker_sent`` sample into the link's estimate."""
        with self._offset_lock:
            best = self._clock_offsets.get(link)
            if best is None or offset < best:
                self._clock_offsets[link] = float(offset)

    @property
    def clock_offsets(self) -> dict[str, float]:
        with self._offset_lock:
            return dict(self._clock_offsets)

    def to_dict(self) -> dict:
        """JSON-compatible form, the ``telemetry`` key of a results file."""
        return {
            "version": TELEMETRY_VERSION,
            "spans": self.tracer.to_dict(),
            "metrics": self.metrics.to_dict(),
            "clock_offsets": self.clock_offsets,
        }
