"""Nested monotonic-clock span tracing.

A :class:`Span` is one timed phase of a run (``round``, ``client_train``,
``aggregate``, …): a name, start/end seconds relative to the tracer's epoch,
an id/parent-id pair expressing nesting, and a small attribute dict (round
index, client id, worker pid).  A :class:`SpanTracer` collects spans from
any thread: span ids come from an atomic counter, finished spans are
appended under the GIL, and nesting is tracked per thread — a span opened
on a pool thread nests under whatever that *thread* has open, never under
another thread's span.  Every instrumentation point therefore also stamps
the ``round`` attribute, which is the key the renderer groups by.

Timing uses ``time.monotonic()`` exclusively — never the wall clock, and
never anything that consumes RNG state: tracing must not perturb what a
run computes.  The one deliberate simplification versus full distributed
tracing: spans merged from remote workers (see
:meth:`SpanTracer.add_span`) carry their measured durations placed on the
driver's clock at frame-arrival time, with the per-link clock offset
recorded separately rather than applied (see
:class:`~repro.telemetry.core.RunTelemetry`).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed phase; ``end`` is ``None`` while the span is open."""

    span_id: int
    name: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "parent": self.parent_id,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Thread-safe collector of :class:`Span` records for one run.

    All timestamps are seconds since the tracer's construction (its
    *epoch*), so serialised traces are small, diffable numbers rather than
    absolute monotonic readings that differ per process.
    """

    def __init__(self) -> None:
        self._epoch = time.monotonic()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()

    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.monotonic() - self._epoch

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a span around the ``with`` body (exception-safe)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        record = Span(
            span_id=next(self._ids),
            name=name,
            start=self.now(),
            parent_id=parent,
            attrs=attrs,
        )
        stack.append(record)
        try:
            yield record
        finally:
            record.end = self.now()
            stack.pop()
            with self._lock:
                self._spans.append(record)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        **attrs,
    ) -> Span:
        """Record an externally timed span (e.g. merged from a remote worker)."""
        record = Span(
            span_id=next(self._ids),
            name=name,
            start=start,
            end=end,
            parent_id=parent_id,
            attrs=attrs,
        )
        with self._lock:
            self._spans.append(record)
        return record

    def spans(self) -> list[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def to_dict(self) -> list[dict]:
        return [span.to_dict() for span in self.spans()]


def maybe_span(telemetry, name: str, **attrs):
    """Span context manager when telemetry is on, no-op context when off.

    The single guard idiom every instrumentation point uses: hot paths pay
    one ``None`` check (plus a ``nullcontext`` allocation) when telemetry
    is disabled, which the overhead benchmark pins at ~zero.
    """
    if telemetry is None:
        return nullcontext()
    return telemetry.tracer.span(name, **attrs)
