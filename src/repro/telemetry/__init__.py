"""Out-of-band run telemetry: span tracing, metrics, worker-side profiling.

The package answers "where does a round's wall-clock go?" without ever
touching what a run computes: spans and metrics are recorded with the
monotonic clock, consume no RNG draws, and live entirely outside
:class:`~repro.federated.history.TrainingHistory` — histories with
telemetry on are bit-identical to telemetry off, per seed, on every
execution backend (pinned in ``tests/federated/test_telemetry.py``).

Three layers:

* :class:`~repro.telemetry.trace.SpanTracer` — nested monotonic-clock spans
  (``round``, ``dispatch``, ``client_train``, ``secagg_mask``/``unmask``,
  ``shard_fold``, ``aggregate``, ``evaluate``) recorded at explicit
  instrumentation points in the server and every backend;
* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges and
  histograms wired to existing engine observables (redispatch counts,
  batched-task counts, population cache occupancy, coordinator queue
  depths) by :class:`~repro.telemetry.hook.TelemetryHook`;
* worker-side profiling over the wire — distributed workers time their own
  context-build/train/mask phases and attach a compact ``telemetry`` blob
  to every ``UPDATE`` frame (protocol v4); the coordinator merges those
  into the driver's trace and estimates a per-link clock offset.

Everything is bundled per run in :class:`~repro.telemetry.core.RunTelemetry`,
serialised into ``ExperimentResult.to_dict()["telemetry"]``, and rendered by
``python -m repro trace results.json``.
"""

from repro.telemetry.core import RunTelemetry
from repro.telemetry.hook import TelemetryHook
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.render import (
    clock_offset_rows,
    metric_rows,
    phase_rows,
    phase_totals,
    render_trace,
    slowest_task_rows,
)
from repro.telemetry.trace import Span, SpanTracer, maybe_span

__all__ = [
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "SpanTracer",
    "TelemetryHook",
    "clock_offset_rows",
    "maybe_span",
    "metric_rows",
    "phase_rows",
    "phase_totals",
    "render_trace",
    "slowest_task_rows",
]
