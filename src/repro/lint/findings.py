"""The value objects of the lint subsystem: :class:`Finding` and friends.

A finding is one rule violation at one source location.  Findings are
*stable*: their :attr:`Finding.fingerprint` is built from a normalised file
path, the rule id and the offending source line (not the line number), so a
baseline file keeps suppressing a known, reviewed finding even as unrelated
edits move it around the file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; both fail the lint run, warnings are advisory."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def stable_path(path: str) -> str:
    """Normalise a reporting path for fingerprints.

    Fingerprints must not depend on where the repository is checked out or
    which working directory the linter ran from, so the path is cut down to
    its ``repro/``-rooted suffix when one exists (``src/repro/nn/layers.py``
    and ``/ci/build/src/repro/nn/layers.py`` fingerprint identically).
    Files outside the package (test fixtures) fall back to their basename.
    """
    posix = path.replace("\\", "/")
    if posix.startswith("repro/"):
        return posix
    marker = posix.rfind("/repro/")
    if marker >= 0:
        return posix[marker + 1 :]
    return posix.rsplit("/", 1)[-1]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    rule: str
    message: str
    checker: str
    severity: Severity = Severity.ERROR
    col: int = 0
    #: The stripped source line the finding points at; the location-stable
    #: component of :attr:`fingerprint`.
    context: str = ""

    @property
    def fingerprint(self) -> str:
        """Edit-stable identity of this finding (the baseline key)."""
        return f"{stable_path(self.file)}::{self.rule}::{self.context}"

    def format(self) -> str:
        """One-line human-readable rendering (``file:line:col: RULE ...``)."""
        return (
            f"{self.file}:{self.line}:{self.col}: {self.rule} "
            f"[{self.checker}/{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-able form (what ``repro lint --format json`` emits)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "checker": self.checker,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
