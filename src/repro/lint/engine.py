"""The lint driver: collect sources, run checkers, apply the baseline.

:func:`run_lint` is the programmatic entry point the CLI wraps: it resolves
the checker selection against the ``checker`` registry family (so unknown
names fail with the registry's did-you-mean hints), runs every selected
checker over the collected :class:`~repro.lint.base.Project`, subtracts the
baseline and returns a :class:`LintReport`.  Renderers for the two output
formats (human text, machine JSON) live here too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.base import Checker, Project
from repro.lint.baseline import DEFAULT_BASELINE, load_baseline
from repro.lint.findings import Finding
from repro.registry import CHECKERS

#: Rule id of the engine's own finding for unparseable source files.
SYNTAX_RULE = "LINT000"


def resolve_checkers(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Checker]:
    """Instantiate the selected checkers in registry (alphabetical) order.

    ``select``/``ignore`` entries are registry specs (``"rng-discipline"``
    or ``"rng-discipline:allow=('repro/legacy/*',)"``); unknown names raise
    ``ValueError`` with the registry's did-you-mean hint.
    """
    ignore_names = set()
    for spec in ignore or []:
        # Validate even pure ignores, so a typo'd --ignore fails loudly
        # instead of silently ignoring nothing.
        name = spec.split(":", 1)[0].strip()
        CHECKERS.get(name)
        ignore_names.add(name)
    specs = list(select) if select else CHECKERS.names()
    checkers = []
    for spec in specs:
        name = str(spec).split(":", 1)[0].strip()
        if name in ignore_names:
            continue
        checkers.append(CHECKERS.create(spec))
    return checkers


@dataclass
class LintReport:
    """Everything a lint run produced, pre-rendering."""

    findings: list[Finding]
    suppressed: list[Finding] = field(default_factory=list)
    checkers: list[str] = field(default_factory=list)
    file_count: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> str:
        status = f"{len(self.findings)} finding(s)" if self.findings else "clean"
        suppressed = (
            f", {len(self.suppressed)} suppressed by baseline" if self.suppressed else ""
        )
        return (
            f"{status} — {self.file_count} file(s), "
            f"{len(self.checkers)} checker(s){suppressed}"
        )


def lint_project(
    project: Project,
    checkers: list[Checker],
    baseline: dict[str, str] | None = None,
) -> LintReport:
    """Run ``checkers`` over an already-collected project."""
    findings: list[Finding] = []
    for source in project.python_files():
        try:
            source.tree()
        except SyntaxError as exc:
            findings.append(
                Finding(
                    file=source.rel,
                    line=exc.lineno or 1,
                    rule=SYNTAX_RULE,
                    message=f"source failed to parse: {exc.msg}",
                    checker="lint",
                    context=source.line(exc.lineno or 1),
                )
            )
    for checker in checkers:
        findings.extend(checker.run(project))
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    baseline = baseline or {}
    kept = [f for f in findings if f.fingerprint not in baseline]
    suppressed = [f for f in findings if f.fingerprint in baseline]
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        checkers=[checker.name for checker in checkers],
        file_count=len(project.files),
    )


def run_lint(
    paths: list[Path | str],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    baseline_path: Path | str | None = None,
    root: Path | str | None = None,
) -> LintReport:
    """Collect ``paths`` and lint them; the CLI's workhorse.

    ``baseline_path=None`` uses the packaged default baseline when present;
    pass an explicit path to use another file (it must exist).
    """
    project = Project.collect(paths, root=root)
    checkers = resolve_checkers(select, ignore)
    if baseline_path is None:
        baseline = load_baseline(DEFAULT_BASELINE) if DEFAULT_BASELINE.exists() else {}
    else:
        baseline_path = Path(baseline_path)
        if not baseline_path.exists():
            raise ValueError(f"baseline file {baseline_path} does not exist")
        baseline = load_baseline(baseline_path)
    return lint_project(project, checkers, baseline)


# -- rendering --------------------------------------------------------------


def render_text(report: LintReport) -> str:
    lines = [finding.format() for finding in report.findings]
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "checkers": report.checkers,
        "files": report.file_count,
    }
    return json.dumps(payload, indent=2)
