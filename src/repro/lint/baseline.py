"""Baseline-file suppression: carry reviewed findings without failing CI.

A baseline is a committed JSON file listing finding fingerprints that have
been reviewed and accepted (with a reason).  ``repro lint`` subtracts the
baseline from its findings, so the suite can be adopted on a codebase with
known, deliberate exceptions — and any *new* violation still fails.  The
default baseline ships with the package (``src/repro/lint/baseline.json``);
``repro lint --write-baseline`` regenerates it from the current findings.

Fingerprints key on the normalised path, rule id and offending source line
(see :meth:`repro.lint.findings.Finding.fingerprint`), so baselines survive
unrelated edits and differing checkout locations.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.lint.findings import Finding

#: The baseline committed with the package, used when ``--baseline`` is not
#: given.  Missing is fine (an empty baseline); an *explicit* missing path
#: is an error in the CLI layer.
DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: Path | str) -> dict[str, str]:
    """Load ``{fingerprint: reason}`` from a baseline file."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"baseline {path} is not a version-{_FORMAT_VERSION} baseline file"
        )
    suppressions = data.get("suppressions", [])
    table: dict[str, str] = {}
    for entry in suppressions:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                f"baseline {path} entries need a 'fingerprint' key: {entry!r}"
            )
        table[entry["fingerprint"]] = entry.get("reason", "")
    return table


def write_baseline(
    path: Path | str, findings: Iterable[Finding], reasons: dict[str, str] | None = None
) -> int:
    """Write the findings' fingerprints as a new baseline; returns the count.

    ``reasons`` maps fingerprints to explanation strings; entries whose
    reason is unknown get a placeholder so the committed file prompts a
    human to fill it in.
    """
    reasons = reasons or {}
    entries = []
    seen = set()
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        entries.append(
            {
                "fingerprint": fingerprint,
                "rule": finding.rule,
                "reason": reasons.get(fingerprint, "TODO: justify this suppression"),
            }
        )
    payload = {"version": _FORMAT_VERSION, "suppressions": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
