"""backend-shared-state: a static race detector for off-driver execution.

The execution engine's contract (PR 1) is that code dispatched off the
driver — thread-pool tasks, forked process workers, shard worker threads —
only ever *reads* shared state; results travel back through return values,
queues or per-slot writes into caller-owned structures.  A worker function
that assigns ``self.something`` or a ``global``/``nonlocal`` name mutates
driver-visible state from a concurrent context: a data race on the thread
backend, silently-lost writes on the process backend, and either way a
threat to the bit-identity guarantee.

The checker finds *dispatch points* (``executor.submit(f, ...)``,
``pool.map(f, ...)``, ``Thread(target=f)``, ``Process(target=f)``,
``apply_async(f)``), resolves the dispatched callable within the module —
including lambdas and transitive calls through ``self`` methods and
module-level helpers — and flags writes to ``self`` attributes and
``global``/``nonlocal`` names inside that dispatched call graph.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Checker, Project, SourceFile
from repro.lint.checkers._ast_utils import (
    FunctionIndex,
    assignment_targets,
    build_import_map,
    canonical_name,
    store_root,
)
from repro.lint.findings import Finding
from repro.registry import CHECKERS

#: Attribute-call names that take a work item as their first argument.
_POOL_METHODS = frozenset(
    {"submit", "map", "imap", "imap_unordered", "starmap", "apply_async"}
)

#: Canonical constructors that take a ``target=`` callable.
_TARGET_CTORS = frozenset(
    {"threading.Thread", "multiprocessing.Process", "multiprocessing.context.Process"}
)


@CHECKERS.register("backend-shared-state")
class BackendSharedStateChecker(Checker):
    """Flag driver-state mutation inside worker-dispatched functions."""

    name = "backend-shared-state"
    description = (
        "functions dispatched off-driver (submit/map/Thread targets) must "
        "not write self attributes or global/nonlocal names"
    )
    rules = {
        "SHARE001": "worker-dispatched code writes a self attribute",
        "SHARE002": "worker-dispatched code writes a module-global name",
        "SHARE003": "worker-dispatched code writes an enclosing-scope (nonlocal) name",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for source, tree in self.iter_trees(project):
            imports = build_import_map(tree)
            index = FunctionIndex(tree)
            for callable_node in self._dispatched_callables(tree, imports):
                yield from self._check_dispatched(source, callable_node, index)

    # -- dispatch-point discovery -----------------------------------------

    def _dispatched_callables(
        self, tree: ast.Module, imports: dict[str, str]
    ) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS
                and node.args
            ):
                yield node.args[0]
                continue
            canon = canonical_name(node.func, imports)
            if canon in _TARGET_CTORS:
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        yield keyword.value

    # -- dispatched-call-graph analysis ------------------------------------

    def _check_dispatched(
        self, source: SourceFile, callable_node: ast.AST, index: FunctionIndex
    ) -> Iterator[Finding]:
        worklist: list[tuple[ast.AST, dict | None]] = []
        seen: set[int] = set()

        def push(node: ast.AST | None, methods: dict | None) -> None:
            if node is None or id(node) in seen:
                return
            seen.add(id(node))
            worklist.append((node, methods))

        push(*self._resolve(callable_node, index, None))
        while worklist:
            func, methods = worklist.pop()
            body = func.body if isinstance(func.body, list) else [func.body]
            declared_global: set[str] = set()
            declared_nonlocal: set[str] = set()
            for node in body:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Global):
                        declared_global.update(sub.names)
                    elif isinstance(sub, ast.Nonlocal):
                        declared_nonlocal.update(sub.names)
            for node in body:
                for sub in ast.walk(node):
                    yield from self._check_stores(
                        source, sub, declared_global, declared_nonlocal
                    )
                    if isinstance(sub, ast.Call):
                        push(*self._resolve(sub.func, index, methods))

    def _resolve(
        self, node: ast.AST, index: FunctionIndex, methods: dict | None
    ) -> tuple[ast.AST | None, dict | None]:
        """Resolve a callable expression to a function body within the module."""
        if isinstance(node, ast.Lambda):
            # A lambda dispatched from a method body closes over that
            # method's class; resolving its ``self.x`` calls needs the
            # caller's method table, which ``methods`` carries through.
            return node, methods
        if isinstance(node, ast.Name):
            # Top-level helpers first; nested defs (a Thread target defined
            # inside the dispatching function) via the whole-module index.
            func = index.functions.get(node.id) or index.all_functions.get(node.id)
            return func, index.method_table_containing(func) if func else None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            # ``self._method``: look in the method table of the dispatching
            # class when known, else in every class of the module.
            tables = [methods] if methods is not None else list(index.methods.values())
            for table in tables:
                func = table.get(node.attr)
                if func is not None:
                    return func, table
        return None, None

    def _check_stores(
        self,
        source: SourceFile,
        node: ast.AST,
        declared_global: set[str],
        declared_nonlocal: set[str],
    ) -> Iterator[Finding]:
        for target in assignment_targets(node):
            root = store_root(target)
            if (
                isinstance(target, (ast.Attribute, ast.Subscript))
                and isinstance(root, ast.Name)
                and root.id == "self"
            ):
                yield self.finding(
                    source,
                    node,
                    "SHARE001",
                    "worker-dispatched code writes a self attribute; "
                    "off-driver tasks must return results, not mutate the "
                    "backend (thread races / lost process writes)",
                )
            elif isinstance(target, ast.Name) and target.id in declared_global:
                yield self.finding(
                    source,
                    node,
                    "SHARE002",
                    f"worker-dispatched code writes module-global "
                    f"{target.id!r}; driver-visible module state must not "
                    "be mutated from backend-executed code",
                )
            elif isinstance(target, ast.Name) and target.id in declared_nonlocal:
                yield self.finding(
                    source,
                    node,
                    "SHARE003",
                    f"worker-dispatched code writes enclosing-scope "
                    f"{target.id!r}; captured driver state must not be "
                    "mutated from backend-executed code",
                )
