"""registry-completeness: every registered component must be reachable.

The registries are the seam between config strings and code: scenarios,
CLI flags and suite JSON all name components by spec string, and the lazy
``load_from`` machinery means a broken registration only surfaces when
someone finally asks for that family.  This checker front-loads the whole
sweep: import every family, and for each member verify that its name
round-trips through the spec grammar, its constructor is introspectable
(that is what powers ``repro list`` and the kwargs validation), none of
its parameters shadow the spec grammar's reserved keys, and — when it has
no required parameters — that the bare spec actually constructs it.

Unlike the AST checkers this one executes project code (imports plus
zero-argument constructors), which is exactly its value: it proves the
wiring, not just the syntax.  It therefore only runs when the linted tree
contains ``repro/registry.py`` (a full-package lint), or when a specific
family list is passed (``--select "registry-completeness:families=demo"``).
"""

from __future__ import annotations

import inspect
from collections.abc import Iterator
from pathlib import Path

from repro.lint.base import Checker, Project, SourceFile
from repro.lint.findings import Finding, Severity, stable_path
from repro.registry import CHECKERS, Registry, parse_spec

#: Spec-grammar keys a constructor parameter must not shadow: dict specs
#: route these to the parser, so a same-named parameter is unreachable.
_RESERVED_PARAMS = frozenset({"name", "kwargs"})

#: Characters that break the ``name:k=v,...`` spec grammar if they appear
#: in a component name.
_SPEC_UNSAFE = ":,= \t"


@CHECKERS.register("registry-completeness")
class RegistryCompletenessChecker(Checker):
    """Prove every registered component is constructible and introspectable."""

    name = "registry-completeness"
    description = (
        "every registered component must import, parse as a spec, expose an "
        "introspectable constructor, and (when argument-free) construct"
    )
    rules = {
        "REG001": "a registry family failed to import its members",
        "REG002": "a component name does not round-trip the spec grammar",
        "REG003": "a component constructor is not introspectable",
        "REG004": "an argument-free component failed to construct",
        "REG005": "a constructor parameter shadows a reserved spec key",
    }

    def __init__(self, allow: tuple[str, ...] = (), families: str = "") -> None:
        super().__init__(allow=allow)
        self.families = tuple(
            name.strip() for name in str(families).split(",") if name.strip()
        )

    def run(self, project: Project) -> Iterator[Finding]:
        if not self.families and project.find("repro/registry.py") is None:
            return  # partial-tree lint: skip the dynamic package sweep
        family_names = self.families or Registry.families()
        for family_name in family_names:
            registry = Registry.family(family_name)
            try:
                member_names = registry.names()
            except Exception as exc:  # noqa: BLE001 - any import error counts
                yield self._registry_finding(
                    project,
                    "REG001",
                    f"family {registry.family!r} failed to load its members: "
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            for member in member_names:
                yield from self._check_member(project, registry, member)

    def _check_member(
        self, project: Project, registry: Registry, member: str
    ) -> Iterator[Finding]:
        target = registry.get(member)
        anchor = self._anchor(project, target)
        if isinstance(anchor[0], SourceFile) and self.allowed(anchor[0]):
            return
        parsed = parse_spec(member) if not set(member) & set(_SPEC_UNSAFE) else None
        if parsed != (member, {}):
            yield self._member_finding(
                anchor,
                "REG002",
                f"{registry.family} name {member!r} does not survive the "
                "spec grammar (reserved characters); it cannot be named "
                "from a config string",
            )
            return
        try:
            signature = inspect.signature(target)
        except (TypeError, ValueError):
            yield self._member_finding(
                anchor,
                "REG003",
                f"{registry.family} {member!r} has no introspectable "
                "constructor signature; `repro list` and spec-kwargs "
                "validation cannot describe it",
                severity=Severity.WARNING,
            )
            return
        params = registry.describe(member)
        shadowed = sorted({p.name for p in params} & _RESERVED_PARAMS)
        if shadowed:
            yield self._member_finding(
                anchor,
                "REG005",
                f"{registry.family} {member!r} constructor parameter(s) "
                f"{', '.join(repr(s) for s in shadowed)} shadow reserved "
                "spec keys and are unreachable from dict specs",
            )
        has_star_args = any(
            p.kind is inspect.Parameter.VAR_POSITIONAL
            for p in signature.parameters.values()
        )
        if any(p.required for p in params) or has_star_args:
            return  # needs caller-provided arguments; construction not provable
        try:
            registry.create(member)
        except Exception as exc:  # noqa: BLE001 - constructor may raise anything
            yield self._member_finding(
                anchor,
                "REG004",
                f"{registry.family} {member!r} failed to construct from its "
                f"bare spec: {type(exc).__name__}: {exc}",
            )

    # -- finding anchors ----------------------------------------------------

    def _anchor(
        self, project: Project, target: object
    ) -> tuple[SourceFile | str, int]:
        """Locate a component's definition: a project file when in scope."""
        try:
            path = inspect.getsourcefile(target)
            _, lineno = inspect.getsourcelines(target)
        except (TypeError, OSError):
            return "repro/registry.py", 1
        resolved = Path(path).resolve()
        for source in project.python_files():
            if source.path.resolve() == resolved:
                return source, lineno
        return stable_path(str(path)), lineno

    def _member_finding(
        self,
        anchor: tuple[SourceFile | str, int],
        rule: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        location, lineno = anchor
        if isinstance(location, SourceFile):
            return self.finding(location, lineno, rule, message, severity=severity)
        return Finding(
            file=location,
            line=lineno,
            rule=rule,
            message=message,
            checker=self.name,
            severity=severity,
        )

    def _registry_finding(self, project: Project, rule: str, message: str) -> Finding:
        source = project.find("repro/registry.py")
        if source is not None:
            return self.finding(source, 1, rule, message)
        return Finding(
            file="repro/registry.py", line=1, rule=rule, message=message,
            checker=self.name,
        )
