"""fold-determinism: aggregator folds must stay elementwise.

The streaming-aggregation contract (PR 4) fixes the *fold order*: every
aggregator folds client slices slot-by-slot in slot order, so serial,
sharded and distributed execution produce bit-identical sums.  That only
holds if the per-slice work is elementwise — the moment a ``fold_slice`` or
``accumulate`` body reaches for a flattened reduction (``np.sum`` over the
whole array, 1-D BLAS ``np.linalg.norm``, ``np.dot``), the result depends
on numpy's internal pairwise/BLAS reduction tree, which varies with array
layout and build — and the bit-identity promise silently breaks.  This is
exactly why ``clip_scale`` computes norms with ``axis=1`` (a fixed-shape
row reduction) instead of ``np.linalg.norm`` on a flattened view.

The checker walks the bodies of ``fold_slice``/``accumulate``/``_fold``
methods — transitively through helpers, including cross-module ones such
as :func:`repro.defenses.base.fold_scaled_sum` — and flags axis-free numpy
reductions, BLAS-backed products and Python-level ``sum`` accumulation.
Axis-pinned reductions (``axis=...``) stay allowed: their reduction shape
is fixed by the slice layout, not chosen by the backend.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Checker, Project, SourceFile
from repro.lint.checkers._ast_utils import (
    build_import_map,
    canonical_name,
    module_name_for,
)
from repro.lint.findings import Finding
from repro.registry import CHECKERS

#: Method names whose bodies form the deterministic fold path.
_FOLD_METHODS = frozenset({"fold_slice", "accumulate", "_fold"})

#: numpy reductions that flatten by default; allowed only with ``axis=``.
_AXIS_REDUCTIONS = frozenset(
    {
        "numpy.sum",
        "numpy.mean",
        "numpy.prod",
        "numpy.std",
        "numpy.var",
        "numpy.median",
        "numpy.linalg.norm",
    }
)

#: BLAS-backed products whose accumulation order is build/layout dependent.
_BLAS_CALLS = frozenset(
    {"numpy.dot", "numpy.vdot", "numpy.inner", "numpy.matmul", "numpy.einsum"}
)

#: ndarray method names treated like their numpy.* counterparts.
_METHOD_REDUCTIONS = frozenset({"sum", "mean", "prod", "std", "var", "dot"})


def _has_axis(node: ast.Call) -> bool:
    return any(keyword.arg == "axis" for keyword in node.keywords)


class _ProjectIndex:
    """Qualified-name lookup of every function/method in the linted project."""

    def __init__(self, checker: Checker, project: Project) -> None:
        # qualname -> (function node, defining module's imports, source file)
        self.functions: dict[str, tuple[ast.AST, dict[str, str], SourceFile]] = {}
        # (source id, class name) -> {method name: node}
        self.fold_classes: list[tuple[SourceFile, dict[str, str], ast.ClassDef]] = []
        for source, tree in checker.iter_trees(project):
            imports = build_import_map(tree)
            module = module_name_for(source.rel)
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if module:
                        self.functions[f"{module}.{node.name}"] = (
                            node,
                            imports,
                            source,
                        )
                elif isinstance(node, ast.ClassDef):
                    methods = {
                        item.name
                        for item in node.body
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    }
                    if methods & _FOLD_METHODS:
                        self.fold_classes.append((source, imports, node))


@CHECKERS.register("fold-determinism")
class FoldDeterminismChecker(Checker):
    """Flag order-sensitive reductions inside aggregator fold paths."""

    name = "fold-determinism"
    description = (
        "fold_slice/accumulate bodies (and their helpers) must be "
        "elementwise; no flattened numpy reductions, BLAS products or "
        "Python sum() in the fold path"
    )
    rules = {
        "FOLD001": "flattened numpy reduction (no axis=) in the fold path",
        "FOLD002": "BLAS-backed product/norm in the fold path",
        "FOLD003": "Python-level sum() accumulation in the fold path",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        index = _ProjectIndex(self, project)
        for source, imports, class_node in index.fold_classes:
            methods = {
                item.name: item
                for item in class_node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            seen: set[int] = set()
            for name in sorted(methods.keys() & _FOLD_METHODS):
                yield from self._check_function(
                    methods[name], source, imports, methods, index, seen
                )

    def _check_function(
        self,
        func: ast.AST,
        source: SourceFile,
        imports: dict[str, str],
        methods: dict[str, ast.AST],
        index: _ProjectIndex,
        seen: set[int],
    ) -> Iterator[Finding]:
        if id(func) in seen:
            return
        seen.add(id(func))
        for stmt in func.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._classify(source, node, imports)
                if finding is not None:
                    yield finding
                    continue
                yield from self._follow(node, source, imports, methods, index, seen)

    def _follow(
        self,
        node: ast.Call,
        source: SourceFile,
        imports: dict[str, str],
        methods: dict[str, ast.AST],
        index: _ProjectIndex,
        seen: set[int],
    ) -> Iterator[Finding]:
        """Recurse into helpers the fold path calls, within the project."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in methods
        ):
            yield from self._check_function(
                methods[func.attr], source, imports, methods, index, seen
            )
            return
        canon = canonical_name(func, imports)
        if canon is None and isinstance(func, ast.Name):
            # Same-module helper called by bare name.
            module = module_name_for(source.rel)
            canon = f"{module}.{func.id}" if module else None
        if canon is not None and canon in index.functions:
            helper, helper_imports, helper_source = index.functions[canon]
            yield from self._check_function(
                helper, helper_source, helper_imports, {}, index, seen
            )

    def _classify(
        self, source: SourceFile, node: ast.Call, imports: dict[str, str]
    ) -> Finding | None:
        canon = canonical_name(node.func, imports)
        if canon in _AXIS_REDUCTIONS and not _has_axis(node):
            return self.finding(
                source,
                node,
                "FOLD001",
                f"{canon} without axis= flattens the slice; the reduction "
                "tree then depends on layout/build, breaking bit-identical "
                "folds — reduce along a pinned axis instead",
            )
        if canon in _BLAS_CALLS:
            return self.finding(
                source,
                node,
                "FOLD002",
                f"{canon} accumulates in BLAS order, which is not "
                "bit-stable across builds; keep fold arithmetic elementwise",
            )
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _METHOD_REDUCTIONS
            and canon is None
            and not _has_axis(node)
        ):
            return self.finding(
                source,
                node,
                "FOLD001" if func.attr != "dot" else "FOLD002",
                f".{func.attr}() without axis= in the fold path flattens "
                "the slice; reduce along a pinned axis or keep the fold "
                "elementwise",
            )
        if (
            isinstance(func, ast.Name)
            and func.id == "sum"
            and func.id not in imports
        ):
            return self.finding(
                source,
                node,
                "FOLD003",
                "built-in sum() folds left-to-right over Python objects; "
                "fold paths must use elementwise ndarray arithmetic with a "
                "fixed slot order",
            )
        return None
