"""The project-specific checkers.

Each module registers its checker in the ``checker`` registry family
(:data:`repro.registry.CHECKERS`); the family's lazy ``load_from`` list is
the source of truth for what exists, so this package intentionally does not
import the checker modules eagerly.
"""
