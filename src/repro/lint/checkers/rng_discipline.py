"""rng-discipline: every random draw must trace back to the run seed.

The whole execution stack — serial, thread, process, batched, distributed —
promises bit-identical :class:`~repro.federated.history.TrainingHistory` per
seed.  That promise dies the moment any code inside ``src/repro`` pulls
entropy from outside the seed-derived streams of
:mod:`repro.federated.rng`: an unseeded ``np.random.default_rng()``, the
global ``np.random.*`` state, the stdlib ``random`` module, ``os.urandom``
or wall-clock time.  This checker bans those sources statically.

Seeded generators (``np.random.default_rng(seed)``) and explicitly passed
``np.random.Generator`` objects are always fine — the rule is about where
entropy *enters*, not how it flows.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.base import Checker, Project
from repro.lint.checkers._ast_utils import build_import_map, canonical_name
from repro.lint.findings import Finding
from repro.registry import CHECKERS

#: numpy.random attributes that are types/constructors, not global-state draws.
_NUMPY_RANDOM_TYPES = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.BitGenerator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "numpy.random.MT19937",
    }
)

#: OS / environment entropy sources, by canonical call name.
_ENTROPY_CALLS = frozenset({"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"})

#: Wall-clock reads; banned because they are entropy in disguise (timeout
#: plumbing uses monotonic/perf counters, which are interval clocks and
#: stay allowed).
_CLOCK_CALLS = frozenset({"time.time", "time.time_ns", "datetime.datetime.now"})


@CHECKERS.register("rng-discipline")
class RngDisciplineChecker(Checker):
    """Ban entropy sources outside the seed-derived RNG streams."""

    name = "rng-discipline"
    description = (
        "randomness must flow through repro.federated.rng or a passed-in "
        "Generator; no unseeded default_rng, global np.random, stdlib "
        "random, os.urandom or wall-clock entropy"
    )
    rules = {
        "RNG001": "np.random.default_rng() without a seed (nondeterministic init)",
        "RNG002": "global numpy.random.* state used instead of a Generator",
        "RNG003": "stdlib random module used instead of a seeded Generator",
        "RNG004": "OS entropy source (os.urandom, uuid4, secrets) used",
        "RNG005": "wall-clock time used as an implicit entropy/identity source",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for source, tree in self.iter_trees(project):
            imports = build_import_map(tree)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                canon = canonical_name(node.func, imports)
                if canon is None:
                    continue
                finding = self._classify(source, node, canon)
                if finding is not None:
                    yield finding

    def _classify(self, source, node: ast.Call, canon: str) -> Finding | None:
        if canon == "numpy.random.default_rng":
            seeded = bool(node.args or node.keywords)
            if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value is None:
                seeded = False
            if not seeded:
                return self.finding(
                    source,
                    node,
                    "RNG001",
                    "np.random.default_rng() without a seed draws OS entropy; "
                    "derive the generator from the run seed "
                    "(repro.federated.rng) or accept one from the caller",
                )
            return None
        if canon.startswith("numpy.random.") and canon not in _NUMPY_RANDOM_TYPES:
            return self.finding(
                source,
                node,
                "RNG002",
                f"{canon} uses numpy's global RNG state, which is "
                "execution-order dependent; use a per-stream Generator",
            )
        if canon == "random" or canon.startswith("random."):
            return self.finding(
                source,
                node,
                "RNG003",
                f"stdlib {canon} is process-global and unseeded by default; "
                "use a numpy Generator derived from the run seed",
            )
        if canon in _ENTROPY_CALLS or canon.startswith("secrets."):
            return self.finding(
                source,
                node,
                "RNG004",
                f"{canon} is an OS entropy source; deterministic runs must "
                "derive all randomness from the run seed",
            )
        if canon in _CLOCK_CALLS:
            return self.finding(
                source,
                node,
                "RNG005",
                f"{canon} reads the wall clock, which differs per run; "
                "results and identities must derive from the seed/config",
            )
        return None
