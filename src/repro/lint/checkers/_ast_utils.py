"""Small AST helpers shared by the project checkers.

The central trick is *canonical call names*: ``build_import_map`` records
what each local name binds to (``np`` → ``numpy``, ``shuffle`` →
``random.shuffle``), and :func:`canonical_name` rewrites a call target's
dotted path through that map — so ``np.random.default_rng()``,
``numpy.random.default_rng()`` and ``from numpy.random import
default_rng; default_rng()`` all resolve to the same
``numpy.random.default_rng`` string the checkers match against.  Names
that do not resolve through an import (locals, attributes of unknown
objects) return ``None`` and are never matched, which keeps the checkers
free of false positives on same-named locals.
"""

from __future__ import annotations

import ast


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins, from the module's imports."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import a.b`` binds ``a``; ``import a.b as c`` binds the
                # full dotted path to ``c``.
                imports[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports stay package-local; skip
                continue
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{module}.{alias.name}" if module else alias.name
    return imports


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def canonical_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Canonical dotted origin of a call target, or ``None`` if unresolvable."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


def assignment_targets(node: ast.AST) -> list[ast.AST]:
    """The store targets of an assignment-like statement (flattening tuples)."""
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
        targets = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets = [node.target]
    else:
        return []
    flat: list[ast.AST] = []
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        else:
            flat.append(target)
    return flat


def store_root(node: ast.AST) -> ast.AST:
    """The root expression of a store target chain (``a`` of ``a.b[c].d``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def module_name_for(rel_path: str) -> str | None:
    """Dotted module name of a project file (``src/repro/x/y.py`` → ``repro.x.y``)."""
    posix = rel_path.replace("\\", "/")
    marker = posix.rfind("repro/")
    if marker < 0 or not posix.endswith(".py"):
        return None
    dotted = posix[marker:-3].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


class FunctionIndex:
    """Top-level functions and class methods of one module, by name."""

    def __init__(self, tree: ast.Module) -> None:
        self.functions: dict[str, ast.FunctionDef] = {}
        self.methods: dict[str, dict[str, ast.FunctionDef]] = {}
        #: Every function definition anywhere in the module (including ones
        #: nested inside other functions), first definition per name wins.
        self.all_functions: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.all_functions.setdefault(node.name, node)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                table: dict[str, ast.FunctionDef] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[item.name] = item
                self.methods[node.name] = table

    def method_table_containing(self, func: ast.AST) -> dict[str, ast.FunctionDef] | None:
        """The method table of the class defining ``func``, if any."""
        for table in self.methods.values():
            if func in table.values():
                return table
        return None
