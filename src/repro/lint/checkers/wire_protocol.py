"""wire-protocol-versioning: protocol drift must bump PROTOCOL_VERSION.

The distributed backend's frame layout (``protocol.py``) is an external
contract: a coordinator and a worker built from different checkouts refuse
to talk across versions, but *silent* structural drift — a new header
field, a reordered struct, a changed dtype default — inside one version
number would make same-version peers mis-parse each other's frames.

This checker computes a structural fingerprint of the protocol module from
its AST (frame magic, struct formats, payload cap, message-type table,
context fields, reserved header keys) and compares it against a committed
golden keyed by version (``goldens/protocol_v{N}.json``).  Any drift while
``PROTOCOL_VERSION`` stays put is an error; bumping the version routes the
change through committing a reviewed new golden::

    PYTHONPATH=src python -m repro.lint.checkers.wire_protocol

regenerates the golden for the current source.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterator
from pathlib import Path

from repro.lint.base import Checker, Project, SourceFile
from repro.lint.findings import Finding
from repro.registry import CHECKERS

#: Path suffix identifying the protocol module inside a linted tree.
PROTOCOL_SUFFIX = "federated/engine/distributed/protocol.py"

#: Directory of committed protocol goldens, shipped with the package.
GOLDEN_DIR = Path(__file__).resolve().parent.parent / "goldens"

#: Top-level constants captured verbatim (unparsed) in the fingerprint.
_CAPTURED_CONSTANTS = ("_MAGIC", "MAX_PAYLOAD")


def extract_fingerprint(tree: ast.Module) -> dict:
    """Structural fingerprint of the protocol module's wire-visible surface."""
    fingerprint: dict = {
        "version": None,
        "constants": {},
        "structs": {},
        "message_types": {},
        "context_fields": [],
        "reserved_header_fields": [],
    }
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name, value = target.id, node.value
            if name == "PROTOCOL_VERSION" and isinstance(value, ast.Constant):
                fingerprint["version"] = value.value
            elif name in _CAPTURED_CONSTANTS:
                fingerprint["constants"][name] = ast.unparse(value)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "Struct"
                and value.args
                and isinstance(value.args[0], ast.Constant)
            ):
                fingerprint["structs"][name] = value.args[0].value
            elif name == "CONTEXT_FIELDS" and isinstance(value, (ast.Tuple, ast.List)):
                fingerprint["context_fields"] = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                ]
        elif isinstance(node, ast.ClassDef):
            bases = {base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "") for base in node.bases}
            if "IntEnum" not in bases and "Enum" not in bases:
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.Assign)
                    and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)
                    and isinstance(item.value, ast.Constant)
                ):
                    fingerprint["message_types"][item.targets[0].id] = item.value.value
    # Reserved codec keys: every underscore-prefixed string literal in the
    # module (``"_arrays"``, ``"_dtype"``) is part of the header namespace
    # the codec claims for itself.
    reserved = {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.startswith("_")
    }
    fingerprint["reserved_header_fields"] = sorted(reserved)
    return fingerprint


def golden_path(version: int, golden_dir: Path | None = None) -> Path:
    return (golden_dir or GOLDEN_DIR) / f"protocol_v{version}.json"


def _diff(golden: dict, current: dict) -> list[str]:
    """Human-readable per-key differences between two fingerprints."""
    changes = []
    for key in sorted(set(golden) | set(current)):
        if golden.get(key) != current.get(key):
            changes.append(f"{key}: {golden.get(key)!r} -> {current.get(key)!r}")
    return changes


@CHECKERS.register("wire-protocol-versioning")
class WireProtocolChecker(Checker):
    """Pin the wire protocol's structure to a committed per-version golden."""

    name = "wire-protocol-versioning"
    description = (
        "the distributed wire protocol's structure must match the committed "
        "golden for its PROTOCOL_VERSION; structural drift requires a "
        "version bump plus a reviewed new golden"
    )
    rules = {
        "WIRE001": "no committed golden for the current PROTOCOL_VERSION",
        "WIRE002": "protocol structure drifted without a PROTOCOL_VERSION bump",
        "WIRE003": "protocol module lost its PROTOCOL_VERSION constant",
    }

    def __init__(self, allow: tuple[str, ...] = (), golden_dir: str | None = None):
        super().__init__(allow=allow)
        self.golden_dir = Path(golden_dir) if golden_dir else GOLDEN_DIR

    def run(self, project: Project) -> Iterator[Finding]:
        source = project.find(PROTOCOL_SUFFIX)
        if source is None or self.allowed(source):
            return  # protocol module not part of this lint scope
        try:
            tree = source.tree()
        except SyntaxError:
            return  # reported by the engine's LINT000
        current = extract_fingerprint(tree)
        version = current["version"]
        if not isinstance(version, int):
            yield self.finding(
                source,
                1,
                "WIRE003",
                "PROTOCOL_VERSION is missing or not an integer literal; the "
                "wire protocol must declare a pinned version",
            )
            return
        path = golden_path(version, self.golden_dir)
        if not path.exists():
            yield self.finding(
                source,
                self._version_line(tree),
                "WIRE001",
                f"no golden committed for protocol version {version}; review "
                "the change and regenerate via "
                "`python -m repro.lint.checkers.wire_protocol`",
            )
            return
        golden = json.loads(path.read_text(encoding="utf-8"))
        changes = _diff(golden, current)
        if changes:
            yield self.finding(
                source,
                self._version_line(tree),
                "WIRE002",
                "wire protocol structure drifted without a PROTOCOL_VERSION "
                f"bump ({'; '.join(changes)}); same-version peers would "
                "mis-parse each other's frames — bump PROTOCOL_VERSION and "
                "commit a new golden",
            )

    @staticmethod
    def _version_line(tree: ast.Module) -> int:
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "PROTOCOL_VERSION"
            ):
                return node.lineno
        return 1


def write_golden(source_path: Path | str, golden_dir: Path | None = None) -> Path:
    """Regenerate the golden for the protocol source's current version."""
    text = Path(source_path).read_text(encoding="utf-8")
    fingerprint = extract_fingerprint(ast.parse(text))
    version = fingerprint["version"]
    if not isinstance(version, int):
        raise ValueError(f"{source_path} has no integer PROTOCOL_VERSION")
    path = golden_path(version, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(fingerprint, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def _main() -> int:
    import repro

    source = Path(repro.__file__).resolve().parent / PROTOCOL_SUFFIX
    path = write_golden(source)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin regeneration shim
    raise SystemExit(_main())
