"""Project-specific static analysis (``repro lint``).

The library's correctness story rests on conventions no general-purpose
linter knows about: all randomness must derive from the run seed, code
dispatched off-driver must not mutate driver state, aggregator folds must
stay elementwise, the distributed wire protocol must version its structure,
and every registered component must be constructible from a spec string.
This package is a small pluggable lint framework — :class:`Checker`
protocol, :class:`Finding` value objects, baseline suppression — plus the
five checkers that enforce those conventions (see
:mod:`repro.lint.checkers`).

Programmatic entry point: :func:`repro.lint.engine.run_lint`; command line:
``python -m repro lint [paths]``.
"""

from repro.lint.base import Checker, Project, SourceFile
from repro.lint.engine import LintReport, lint_project, resolve_checkers, run_lint
from repro.lint.findings import Finding, Severity

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "Project",
    "Severity",
    "SourceFile",
    "lint_project",
    "resolve_checkers",
    "run_lint",
]
