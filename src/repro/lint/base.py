"""Checker protocol and the source-file model the checkers analyse.

A :class:`Project` is the unit of a lint run: the set of Python sources
collected from the paths on the command line.  Checkers implement one
method, ``run(project) -> iterable of Finding`` — most walk each file's
AST, but project-level checkers (the wire-protocol golden, the registry
sweep) are first-class citizens of the same protocol.

Checkers register in the ``checker`` family of :mod:`repro.registry`
(:data:`repro.registry.CHECKERS`), which gives ``repro lint --select``
the same spec parsing, constructor introspection and did-you-mean error
messages as every other component family.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.lint.findings import Finding, Severity, stable_path


@dataclass
class SourceFile:
    """One Python source file under analysis."""

    path: Path
    #: Project-relative posix path used in reports.
    rel: str
    text: str
    _tree: ast.Module | None = field(default=None, repr=False)
    _lines: list[str] | None = field(default=None, repr=False)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(path=path, rel=rel, text=path.read_text(encoding="utf-8"))

    @classmethod
    def from_source(cls, text: str, rel: str = "<string>") -> "SourceFile":
        """Build from literal source text (fixture snippets in tests)."""
        return cls(path=Path(rel), rel=rel, text=text)

    def tree(self) -> ast.Module:
        """The parsed module (raises ``SyntaxError`` on broken source)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    def line(self, lineno: int) -> str:
        """The stripped source text of one 1-indexed line (for context)."""
        if self._lines is None:
            self._lines = self.text.splitlines()
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1].strip()
        return ""


@dataclass
class Project:
    """The collection of sources one lint invocation analyses."""

    root: Path
    files: tuple[SourceFile, ...]

    @classmethod
    def collect(cls, paths: Iterable[Path | str], root: Path | str | None = None) -> "Project":
        """Gather ``*.py`` files under each path (files pass through as-is)."""
        root = Path(root) if root is not None else Path.cwd()
        seen: dict[Path, None] = {}
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                for path in sorted(entry.rglob("*.py")):
                    seen.setdefault(path, None)
            elif entry.is_file():
                seen.setdefault(entry, None)
            else:
                raise ValueError(f"lint path {entry} does not exist")
        files = tuple(SourceFile.load(path, root) for path in seen)
        return cls(root=root, files=files)

    def python_files(self) -> tuple[SourceFile, ...]:
        return self.files

    def find(self, suffix: str) -> SourceFile | None:
        """The first file whose normalised path ends with ``suffix``."""
        suffix = suffix.lstrip("/")
        for source in self.files:
            if stable_path(source.rel).endswith(suffix) or source.rel.endswith(suffix):
                return source
        return None


class Checker:
    """Base class of every lint checker.

    Subclasses set ``name`` (the registry/CLI name), ``description`` and
    ``rules`` (rule id → one-line description) and implement :meth:`run`.
    ``allow`` is a tuple of ``fnmatch`` patterns matched against each
    finding's normalised path — the per-checker allowlist escape hatch for
    files that are exempt from the convention by design.
    """

    name = "checker"
    description = ""
    rules: dict[str, str] = {}

    def __init__(self, allow: tuple[str, ...] = ()) -> None:
        self.allow = tuple(allow)

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    # -- helpers for subclasses -------------------------------------------

    def allowed(self, source: SourceFile) -> bool:
        """Whether the file is exempt from this checker via ``allow``."""
        normalised = stable_path(source.rel)
        return any(
            fnmatch(normalised, pattern) or fnmatch(source.rel, pattern)
            for pattern in self.allow
        )

    def finding(
        self,
        source: SourceFile,
        node: ast.AST | int,
        rule: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node (or line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
        return Finding(
            file=source.rel,
            line=line,
            col=col,
            rule=rule,
            message=message,
            checker=self.name,
            severity=severity,
            context=source.line(line),
        )

    def iter_trees(self, project: Project) -> Iterator[tuple[SourceFile, ast.Module]]:
        """Yield ``(source, tree)`` for each parseable, non-allowlisted file.

        Unparseable files are skipped here — the engine reports a syntax
        error once per file instead of once per checker.
        """
        for source in project.python_files():
            if self.allowed(source):
                continue
            try:
                yield source, source.tree()
            except SyntaxError:
                continue
