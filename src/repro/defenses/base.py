"""Aggregator interface shared by every robust-aggregation defense."""

from __future__ import annotations

import numpy as np


class Aggregator:
    """Turns the round's client updates into a single aggregated update.

    ``updates`` is a ``(num_sampled_clients, param_dim)`` array; the return
    value is the length-``param_dim`` update the server adds to the global
    model (scaled by the server learning rate).  ``global_params`` and ``rng``
    are available for defenses that need them (e.g. CRFL smoothing noise, DP
    noise, FLARE latent-space probes).
    """

    name = "aggregator"

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if updates.ndim != 2:
            raise ValueError("updates must be a (clients, dim) matrix")
        if updates.shape[0] == 0:
            raise ValueError("cannot aggregate an empty round")
        return self.aggregate(updates, global_params, rng)


class MeanAggregator(Aggregator):
    """Plain FedAvg mean of client updates (no defense)."""

    name = "mean"

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return updates.mean(axis=0)
