"""Aggregator interface shared by every robust-aggregation defense."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
from repro.registry import DEFENSES


@dataclass
class AggregationContext:
    """Round-level information handed to an aggregator.

    Replaces the old positional ``rng`` argument: defenses that need
    randomness draw it from ``ctx.rng`` (the server's own stream, so noise
    consumption stays deterministic per run seed), and defenses that want to
    reason about the round (who was sampled, which round it is) now can.
    ``round_idx`` is ``-1`` when the context was synthesised by the
    legacy-call shim and no round information is available.
    """

    rng: np.random.Generator
    round_idx: int = -1
    sampled_clients: tuple[int, ...] = ()
    extras: dict = field(default_factory=dict)

    @classmethod
    def from_rng(cls, rng: np.random.Generator) -> "AggregationContext":
        """Wrap a bare generator (legacy call sites) into a context."""
        return cls(rng=rng)


class Aggregator:
    """Turns the round's client updates into a single aggregated update.

    ``updates`` is a ``(num_sampled_clients, param_dim)`` array; the return
    value is the length-``param_dim`` update the server adds to the global
    model (scaled by the server learning rate).  ``global_params`` and the
    :class:`AggregationContext` are available for defenses that need them
    (e.g. CRFL smoothing noise, DP noise, FLARE latent-space probes).

    Back-compat: calling an aggregator with a bare ``np.random.Generator`` in
    place of the context still works — the generator is wrapped into a
    minimal :class:`AggregationContext` automatically.
    """

    name = "aggregator"

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext | np.random.Generator,
    ) -> np.ndarray:
        if updates.ndim != 2:
            raise ValueError("updates must be a (clients, dim) matrix")
        if updates.shape[0] == 0:
            raise ValueError("cannot aggregate an empty round")
        if isinstance(ctx, np.random.Generator):
            warnings.warn(
                "calling an Aggregator with a bare np.random.Generator is "
                "deprecated; pass an AggregationContext instead",
                DeprecationWarning,
                stacklevel=2,
            )
            ctx = AggregationContext.from_rng(ctx)
        return self.aggregate(updates, global_params, ctx)


@DEFENSES.register("mean")
class MeanAggregator(Aggregator):
    """Plain FedAvg mean of client updates (no defense)."""

    name = "mean"

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        return updates.mean(axis=0)
