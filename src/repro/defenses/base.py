"""Aggregator interface shared by every robust-aggregation defense.

Two equivalent protocols are exposed:

* the historical **matrix protocol** — ``aggregate(updates, global_params,
  ctx)`` over a fully materialised ``(num_sampled_clients, param_dim)``
  array; every defense implements this;
* the **streaming protocol** — ``begin_round(ctx) → state``,
  ``accumulate(state, update)`` per arriving
  :class:`~repro.federated.engine.plan.ClientUpdate`, and
  ``finalize(state, global_params, ctx) → aggregated`` once the round is
  complete.  The base class provides an automatic buffering fallback (updates
  are collected and handed to :meth:`Aggregator.aggregate` at finalize), so
  every registered defense supports the streaming call shape unchanged;
  defenses whose math is a per-update fold (mean, weighted mean, norm
  bounding, DP, SignSGD) opt into true O(param_dim) state by implementing
  the *slice fold* extension points (:meth:`Aggregator.prepare_update` /
  :meth:`Aggregator.fold_aux` / :meth:`Aggregator.fold_slice` /
  :meth:`Aggregator.finalize_vector`) and setting ``streaming = True`` and
  ``shardable = True``.

Shardable defenses decompose their fold *elementwise* over contiguous
parameter slices: any whole-vector work (e.g. the clipping norm) happens in
:meth:`Aggregator.prepare_update`, and :meth:`Aggregator.fold_slice` then
folds a slice of the update using only that precomputed value.  Because the
fold is elementwise, splitting the parameter vector into contiguous shards
and folding each shard independently (still in slot order) is bit-identical
to the single-fold path — which is what lets
:class:`~repro.federated.engine.sharding.ShardedAggregator` fan the hot
accumulate loop out over a shard-worker pool without changing results.

Determinism: floating-point accumulation is order-sensitive, so
:meth:`Aggregator.accumulate` never folds an update the moment it arrives.
It parks arrivals in ``state.pending`` and folds them *in sampled-slot
order* (slot 0, then 1, …), releasing each as its predecessor is folded.
Sequential slot-order folding is bit-identical to NumPy's ``axis=0``
reduction over the stacked matrix, so the streaming and matrix protocols
produce the same result to the last ulp regardless of completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.registry import DEFENSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.federated.engine.plan import ClientUpdate


@dataclass
class AggregationContext:
    """Round-level information handed to an aggregator.

    Replaces the old positional ``rng`` argument: defenses that need
    randomness draw it from ``ctx.rng`` (the server's own stream, so noise
    consumption stays deterministic per run seed), and defenses that want to
    reason about the round (who was sampled, which round it is) now can.
    ``round_idx`` is ``-1`` when the context was synthesised by the
    legacy-call shim and no round information is available.

    ``telemetry`` is the run's :class:`~repro.telemetry.core.RunTelemetry`
    bundle when tracing is enabled (``None`` otherwise) — the path on which
    aggregation-side instrumentation points (the sharded fold, the secagg
    unmask) reach the tracer.  Strictly observational: nothing here may
    read it to change a numeric result.
    """

    rng: np.random.Generator
    round_idx: int = -1
    sampled_clients: tuple[int, ...] = ()
    extras: dict = field(default_factory=dict)
    telemetry: object | None = None

    @classmethod
    def from_rng(cls, rng: np.random.Generator) -> "AggregationContext":
        """Wrap a bare generator (legacy call sites) into a context."""
        return cls(rng=rng)


@dataclass
class AggregationState:
    """Mutable per-round state of one streaming aggregation.

    ``data`` is the defense-specific accumulator (a list of updates for the
    buffering fallback, an O(param_dim) running vector for streaming
    defenses).  ``aux`` is the slot-order fold of per-update auxiliary
    values (:meth:`Aggregator.fold_aux` — e.g. the weighted mean's total
    example weight); it lives on the state rather than in ``data`` so the
    sharded fold, whose per-shard accumulators only ever see slices, still
    has the round-level scalars at finalize.  ``pending`` parks updates that
    arrived ahead of their sampled-slot predecessors; ``cursor`` is the next
    slot to fold and ``count`` the number of updates accumulated so far
    (folded + pending).
    """

    ctx: AggregationContext
    data: Any = None
    aux: Any = None
    pending: dict = field(default_factory=dict)
    cursor: int = 0
    count: int = 0


class Aggregator:
    """Turns the round's client updates into a single aggregated update.

    ``updates`` is a ``(num_sampled_clients, param_dim)`` array; the return
    value is the length-``param_dim`` update the server adds to the global
    model (scaled by the server learning rate).  ``global_params`` and the
    :class:`AggregationContext` are available for defenses that need them
    (e.g. CRFL smoothing noise, DP noise, FLARE latent-space probes).

    The streaming protocol (:meth:`begin_round` / :meth:`accumulate` /
    :meth:`finalize`) works for every defense: the default implementation
    buffers updates and delegates to :meth:`aggregate` at finalize time.
    Streaming defenses implement the slice-fold extension points
    (:meth:`prepare_update` / :meth:`fold_aux` / :meth:`fold_slice` /
    :meth:`finalize_vector`) and set ``streaming = shardable = True`` —
    never the protocol methods themselves — so the deterministic slot-order
    fold rule lives in exactly one place and the sharded worker-pool fold
    comes for free.  (``_begin`` / ``_fold`` / ``_finalize`` remain
    overridable for folds that genuinely cannot decompose over slices, at
    the cost of staying single-fold.)

    Buffered-async rounds additionally route carried updates through
    :meth:`discount_stale` before folding, so defenses can choose how a
    stale update is down-weighted.
    """

    name = "aggregator"

    #: True when this defense folds updates in O(param_dim) state instead of
    #: buffering the full round.  ``streaming="auto"`` on the server streams
    #: exactly when this is set.
    streaming = False

    #: True when the streaming fold decomposes elementwise over contiguous
    #: parameter slices (see the module docstring).  Shardable defenses can
    #: be wrapped in :class:`~repro.federated.engine.sharding.
    #: ShardedAggregator`; non-shardable ones fall back to the single-fold
    #: (or buffering) path unchanged.
    shardable = False

    #: True when the defense has no matrix path at all (its inputs only
    #: travel on :class:`~repro.federated.engine.plan.ClientUpdate`, e.g.
    #: per-client example counts).  The server and scenario validation fail
    #: fast when such a defense is configured with ``streaming="off"``
    #: instead of wasting a round of client training before the first
    #: aggregate call raises.
    streaming_only = False

    #: True when the defense's math inspects individual updates *across*
    #: clients — pairwise distances (Krum), coordinate statistics (median,
    #: trimmed mean), anomaly scores (detector, FLARE), per-client sign
    #: votes weighed against the cohort (RLR) — and therefore cannot run
    #: under secure aggregation, where the server only sees the masked sum.
    #: Per-update-*local* transforms (norm clipping, per-update DP noise
    #: prep, taking signs) do not count: a real deployment pushes that work
    #: to the client before masking, so clip/sign-then-sum defenses stay
    #: server-blind.  ``repro list defenses`` surfaces the complement of
    #: this flag as the ``server-blind`` capability.
    requires_plaintext_updates = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        # A subclass that replaces the matrix math without touching the
        # streaming machinery (e.g. a test double overriding ``aggregate`` on
        # top of MeanAggregator) would otherwise inherit a streaming fold
        # that no longer matches its own aggregate() — drop it back to the
        # buffering fallback, which delegates to the subclass's aggregate().
        overrides_matrix = "aggregate" in cls.__dict__
        touches_streaming = {
            "streaming", "shardable", "_begin", "_fold", "_finalize",
            "begin_round", "accumulate", "finalize",
            "prepare_update", "fold_aux", "fold_slice", "finalize_vector",
        } & cls.__dict__.keys()
        if overrides_matrix and not touches_streaming:
            cls.streaming = False
            cls.shardable = False
            cls._begin = Aggregator._begin
            cls._fold = Aggregator._fold
            cls._finalize = Aggregator._finalize

    # -- matrix protocol ---------------------------------------------------

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        raise NotImplementedError

    def __call__(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        if updates.ndim != 2:
            raise ValueError("updates must be a (clients, dim) matrix")
        if updates.shape[0] == 0:
            raise ValueError("cannot aggregate an empty round")
        if isinstance(ctx, np.random.Generator):
            # The PR 1-era bare-generator call path warned for 8 PRs and is
            # gone; fail loudly with the migration in the message.
            raise TypeError(
                "calling an Aggregator with a bare np.random.Generator is no "
                "longer supported; wrap it with AggregationContext.from_rng(rng)"
            )
        return self.aggregate(updates, global_params, ctx)

    # -- streaming protocol ------------------------------------------------

    def begin_round(self, ctx: AggregationContext) -> AggregationState:
        """Open a round; the returned state is threaded through accumulate."""
        return AggregationState(ctx=ctx, data=self._begin(ctx))

    def accumulate(self, state: AggregationState, update: "ClientUpdate") -> None:
        """Fold one client update into the round state.

        Updates may arrive in any completion order; they are folded in
        canonical sampled-slot order (0, 1, 2, …) so the result is
        bit-identical to the matrix protocol regardless of arrival order.
        An update whose predecessors have not arrived yet is parked in
        ``state.pending`` and folded as soon as the gap closes.
        """
        slot = update.slot
        if slot < state.cursor or slot in state.pending:
            raise ValueError(f"duplicate update for sampled slot {slot}")
        state.pending[slot] = update
        state.count += 1
        while state.cursor in state.pending:
            self._fold(state, state.pending.pop(state.cursor))
            state.cursor += 1

    def finalize(
        self,
        state: AggregationState,
        global_params: np.ndarray,
        ctx: AggregationContext | None = None,
    ) -> np.ndarray:
        """Close the round and return the aggregated update.

        Slots must cover ``0..n-1``: leading/interior gaps are detected from
        the parked arrivals, and when the context names the round's sampled
        clients (the server always does) the update count is checked against
        it, so a round that silently lost its highest slots fails loudly too.
        """
        ctx = ctx if ctx is not None else state.ctx
        if state.count == 0:
            raise ValueError("cannot aggregate an empty round")
        if state.pending:
            folded = set(range(state.cursor))
            missing = sorted(set(range(max(state.pending))) - state.pending.keys() - folded)
            raise ValueError(
                f"cannot finalize with unfolded updates: sampled slots "
                f"{missing} never arrived (slots must cover 0..n-1)"
            )
        expected = len(ctx.sampled_clients)
        if expected and state.count != expected:
            raise ValueError(
                f"round sampled {expected} clients (ctx.sampled_clients) but "
                f"only {state.count} updates were accumulated"
            )
        return self._finalize(state, global_params, ctx)

    def abort(self, state: AggregationState) -> None:
        """Discard an in-flight round's state without finalizing it.

        The server calls this when something raises mid-round — a hook
        failing in ``on_update``, a fold error — so aggregators holding
        live resources (the sharded fold's worker threads) release them
        instead of leaking a half-folded round.  The base implementation is
        a no-op: plain buffering/streaming state is garbage-collected with
        the abandoned :class:`AggregationState`.
        """

    # -- staleness (buffered-async aggregation) ----------------------------

    def discount_stale(
        self, update: "ClientUpdate", staleness: int, discount: float
    ) -> "ClientUpdate":
        """Staleness-weighted fold entry point for buffered-async rounds.

        Called once per carried update, immediately before it enters
        :meth:`accumulate` in its arrival round.  ``staleness`` is the
        number of rounds the update sat in the carry buffer (≥ 1);
        ``discount`` the server's configured per-round factor.  The default
        scales the update *vector* by ``discount ** staleness`` (FedBuff-style
        s(τ) weighting); defenses whose math weighs updates explicitly (the
        weighted mean, example-count schemes) may override to discount the
        aggregation weight instead of the vector.  Must return a new
        ``ClientUpdate`` — the buffered original is the server's record of
        what arrived.
        """
        if staleness <= 0:
            return update
        from dataclasses import replace

        factor = float(discount) ** int(staleness)
        return replace(
            update,
            update=update.update * factor,
            metadata={**update.metadata, "staleness": int(staleness)},
        )

    # -- streaming extension points (override these, not the protocol) -----

    def _begin(self, ctx: AggregationContext):
        """Fresh defense-specific accumulator (fallback: a buffer list)."""
        return None if self.shardable else []

    def _fold(self, state: AggregationState, update: "ClientUpdate") -> None:
        """Fold one update, called in slot order (fallback: buffer it)."""
        if self.shardable:
            aux = self.prepare_update(update)
            state.aux = self.fold_aux(state.aux, aux)
            state.data = self.fold_slice(state.data, update.update, aux)
        else:
            state.data.append(update)

    def _finalize(
        self,
        state: AggregationState,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        """Produce the aggregated update (fallback: stack + delegate)."""
        if self.shardable:
            return self.finalize_vector(state.data, state, global_params, ctx)
        stacked = np.stack([u.update for u in state.data])
        return self.aggregate(stacked, global_params, ctx)

    # -- slice-fold extension points (shardable streaming defenses) --------

    def prepare_update(self, update: "ClientUpdate"):
        """Whole-vector per-update precompute, run once in the coordinator.

        Anything the fold needs that reduces over the *full* update vector
        (the clipping norm, the aggregation weight) is computed here so
        :meth:`fold_slice` stays strictly elementwise — that property is
        what makes the sharded fold bit-identical to the single fold.
        """
        return None

    def fold_aux(self, carry, aux):
        """Slot-order fold of per-update aux values (coordinator-side).

        Round-level scalars (e.g. the weighted mean's total weight) are
        accumulated here rather than in the per-shard state, so they are
        computed exactly once regardless of the shard count.
        """
        return carry

    def fold_slice(self, acc, segment: np.ndarray, aux) -> np.ndarray:
        """Fold one contiguous slice of an update into a slice accumulator.

        ``acc`` is ``None`` on the first fold; ``segment`` is a view of the
        update restricted to this shard's slice (the full vector when
        unsharded).  Must be elementwise in ``segment`` given ``aux``.
        """
        raise NotImplementedError

    def finalize_vector(
        self,
        folded: np.ndarray,
        state: AggregationState,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        """Aggregated update from the slot-order-folded parameter vector.

        ``folded`` is the full-length fold result (shard accumulators are
        concatenated back before this is called); ``state`` carries the
        round's ``count`` and ``aux``.
        """
        raise NotImplementedError


@DEFENSES.register("mean")
class MeanAggregator(Aggregator):
    """Plain FedAvg mean of client updates (no defense)."""

    name = "mean"
    streaming = True
    shardable = True

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx: AggregationContext,
    ) -> np.ndarray:
        return updates.mean(axis=0)

    def fold_slice(self, acc, segment, aux):
        if acc is None:
            return np.array(segment, dtype=np.float64)
        acc += segment
        return acc

    def finalize_vector(self, folded, state, global_params, ctx):
        return folded / state.count


def clip_scale(update: np.ndarray, max_norm: float) -> np.ndarray:
    """Shape-``(1,)`` factor scaling ``update`` to at most ``max_norm`` (l2).

    Shared by the streaming norm-bounding and DP folds.  The norm is computed
    through the same ``axis=1`` reduction the matrix implementations use on
    the stacked array — ``np.linalg.norm(v)`` on a 1-D vector takes a BLAS
    path with different rounding, which would break the bit-identity
    guarantee between the streaming and buffered protocols.  The factor is
    whole-vector work, so clip-style defenses compute it in
    :meth:`Aggregator.prepare_update` and their slice folds stay elementwise.
    """
    norm = np.linalg.norm(update[None, :], axis=1)
    return np.minimum(1.0, max_norm / np.clip(norm, 1e-12, None))


def clip_to_norm(update: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``update`` to at most ``max_norm`` (l2), matrix-path-identical."""
    return update * clip_scale(update, max_norm)


def fold_scaled_sum(acc, segment: np.ndarray, scale) -> np.ndarray:
    """Fold ``segment * scale`` into a running-sum slice accumulator.

    The shared :meth:`Aggregator.fold_slice` body of the scale-then-average
    streaming defenses (norm bounding, DP, weighted mean); their finalize
    steps differ only in the noise/normalisation term.
    """
    scaled = segment * scale
    if acc is None:
        return scaled.astype(np.float64)
    acc += scaled
    return acc
