"""CRFL-style aggregation: parameter clipping plus smoothing noise (Xie et al., 2021).

CRFL clips the aggregated *model parameters* (not just the updates) and adds
Gaussian smoothing noise, which yields certified robustness radii in the
original work.  The reproduction implements the training-time mechanism
(clip + perturb); certification is out of scope but the knobs are the same.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("crfl")
class CRFL(Aggregator):
    """Aggregate by mean, then clip the resulting model and add noise."""

    name = "crfl"

    def __init__(self, param_clip: float = 25.0, noise_std: float = 0.001) -> None:
        if param_clip <= 0:
            raise ValueError("param_clip must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.param_clip = param_clip
        self.noise_std = noise_std

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        mean_update = updates.mean(axis=0)
        new_params = global_params + mean_update
        norm = float(np.linalg.norm(new_params))
        if norm > self.param_clip:
            new_params = new_params * (self.param_clip / norm)
        if self.noise_std > 0:
            new_params = new_params + ctx.rng.normal(0.0, self.noise_std, size=new_params.shape)
        # Return the equivalent update so the server's generic
        # ``θ ← θ + λ·aggregate`` step lands on the clipped, smoothed model.
        return new_params - global_params
