"""DP-optimizer defense: per-update clipping plus Gaussian noise.

The differential-privacy-style defense of Hong et al. (2020) / user-level DP:
clip every client update to a clipping bound and add Gaussian noise calibrated
to that bound to the average.  In the paper this defense barely slows
CollaPois (Attack SR ≈ 89%) unless the noise is large enough to also destroy
benign accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator, clip_scale, fold_scaled_sum
from repro.registry import DEFENSES


@DEFENSES.register("dp")
class DPAggregator(Aggregator):
    """Clip-and-noise aggregation (DP-optimizer style).

    Streams (and shards) like :class:`~repro.defenses.norm_bound.NormBound`:
    per-update clipping folds into one running vector, and the
    count-calibrated noise is drawn once at finalize.
    """

    name = "dp"
    streaming = True
    shardable = True

    def __init__(self, clip_norm: float = 1.0, noise_multiplier: float = 0.1) -> None:
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        n = updates.shape[0]
        norms = np.linalg.norm(updates, axis=1, keepdims=True)
        scale = np.minimum(1.0, self.clip_norm / np.clip(norms, 1e-12, None))
        clipped = updates * scale
        aggregated = clipped.mean(axis=0)
        if self.noise_multiplier > 0:
            sigma = self.noise_multiplier * self.clip_norm / n
            aggregated = aggregated + ctx.rng.normal(0.0, sigma, size=aggregated.shape)
        return aggregated

    def prepare_update(self, update):
        return clip_scale(update.update, self.clip_norm)

    def fold_slice(self, acc, segment, aux):
        return fold_scaled_sum(acc, segment, aux)

    def finalize_vector(self, folded, state, global_params, ctx):
        aggregated = folded / state.count
        if self.noise_multiplier > 0:
            sigma = self.noise_multiplier * self.clip_norm / state.count
            aggregated = aggregated + ctx.rng.normal(0.0, sigma, size=aggregated.shape)
        return aggregated
