"""Robust-aggregation defenses against backdoor poisoning.

Each defense implements the :class:`~repro.defenses.base.Aggregator`
interface: given the stack of client updates collected in a round it returns
the aggregated update the server applies.  Every defense also supports the
incremental ``begin_round``/``accumulate``/``finalize`` streaming protocol
(buffered automatically by the base class); ``mean``, ``weighted_mean``,
``norm_bound``, ``dp`` and ``signsgd`` additionally stream with O(param_dim)
round state and shard across a worker pool
(:mod:`repro.federated.engine.sharding`).  The catalogue mirrors Table I of
the paper plus the example-weighted FedAvg variant:

=====================  =====================================================
Defense                Module
=====================  =====================================================
FedAvg mean            :class:`~repro.defenses.base.MeanAggregator`
Weighted FedAvg        :class:`~repro.defenses.weighted_mean.WeightedMeanAggregator`
Krum / Multi-Krum      :class:`~repro.defenses.krum.Krum`
Coordinate-wise median :class:`~repro.defenses.median.CoordinateMedian`
Trimmed mean           :class:`~repro.defenses.trimmed_mean.TrimmedMean`
Norm bounding          :class:`~repro.defenses.norm_bound.NormBound`
DP-optimizer           :class:`~repro.defenses.dp.DPAggregator`
Robust learning rate   :class:`~repro.defenses.rlr.RobustLearningRate`
SignSGD majority vote  :class:`~repro.defenses.signsgd.SignSGDAggregator`
FLARE trust scores     :class:`~repro.defenses.flare.FLARE`
CRFL clip + smooth     :class:`~repro.defenses.crfl.CRFL`
Ditto personalisation  :class:`~repro.defenses.ditto.DittoPersonalizer`
MESAS-style detector   :class:`~repro.defenses.detector.StatisticalDetector`
=====================  =====================================================
"""

from repro.defenses.base import (
    AggregationContext,
    AggregationState,
    Aggregator,
    MeanAggregator,
    clip_to_norm,
)
from repro.defenses.crfl import CRFL
from repro.defenses.detector import StatisticalDetector
from repro.defenses.ditto import DittoPersonalizer
from repro.defenses.dp import DPAggregator
from repro.defenses.flare import FLARE
from repro.defenses.krum import Krum
from repro.defenses.median import CoordinateMedian
from repro.defenses.norm_bound import NormBound
from repro.defenses.registry import available_defenses, make_defense
from repro.defenses.rlr import RobustLearningRate
from repro.defenses.signsgd import SignSGDAggregator
from repro.defenses.trimmed_mean import TrimmedMean
from repro.defenses.weighted_mean import WeightedMeanAggregator

__all__ = [
    "AggregationContext",
    "AggregationState",
    "Aggregator",
    "MeanAggregator",
    "WeightedMeanAggregator",
    "clip_to_norm",
    "Krum",
    "CoordinateMedian",
    "TrimmedMean",
    "NormBound",
    "DPAggregator",
    "RobustLearningRate",
    "SignSGDAggregator",
    "FLARE",
    "CRFL",
    "DittoPersonalizer",
    "StatisticalDetector",
    "available_defenses",
    "make_defense",
]
