"""Krum and Multi-Krum robust aggregation (Blanchard et al., 2017).

Each update is scored by the sum of squared distances to its closest
``n − f − 2`` neighbours; Krum selects the single lowest-score update,
Multi-Krum averages the ``m`` lowest-score updates.  Krum is one of the
"effective but impractical" defenses in the paper: it suppresses backdoors
but sacrifices a lot of benign accuracy under non-IID data because it
discards most of the (legitimately diverse) client updates.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("krum")
class Krum(Aggregator):
    """Krum (``multi=1``) / Multi-Krum (``multi>1``) aggregation."""

    name = "krum"
    requires_plaintext_updates = True  # pairwise update distances

    def __init__(self, num_malicious: int = 1, multi: int = 1) -> None:
        if num_malicious < 0:
            raise ValueError("num_malicious must be non-negative")
        if multi <= 0:
            raise ValueError("multi must be positive")
        self.num_malicious = num_malicious
        self.multi = multi

    def scores(self, updates: np.ndarray) -> np.ndarray:
        """Krum score of each update (lower is more central)."""
        n = updates.shape[0]
        # Squared pairwise distances.
        sq_norms = np.sum(updates**2, axis=1)
        distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * updates @ updates.T
        np.fill_diagonal(distances, np.inf)
        distances = np.maximum(distances, 0.0)
        neighbors = max(1, n - self.num_malicious - 2)
        neighbors = min(neighbors, n - 1)
        sorted_d = np.sort(distances, axis=1)
        return sorted_d[:, :neighbors].sum(axis=1)

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        n = updates.shape[0]
        if n == 1:
            return updates[0]
        scores = self.scores(updates)
        chosen = np.argsort(scores)[: min(self.multi, n)]
        return updates[chosen].mean(axis=0)
