"""Defense registry: build any Table-I defense from its name or spec.

The family now lives in the unified component-registry layer
(:data:`repro.registry.DEFENSES`); each defense registers itself with a
``@DEFENSES.register("...")`` decorator in its own module.  This module keeps
the historical convenience API (:func:`available_defenses`,
:func:`make_defense`) used by the benchmark harness and the examples.
"""

from __future__ import annotations

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


def available_defenses() -> list[str]:
    """Names of every registered aggregation defense."""
    return DEFENSES.names()


def make_defense(name: str, **kwargs) -> Aggregator:
    """Instantiate a defense by name or spec with optional keyword overrides.

    ``name`` may be a bare name (``"krum"``) or a spec string carrying
    kwargs (``"krum:num_malicious=2,multi=3"``); explicit ``kwargs`` are
    applied first and spec-string arguments override them.
    """
    return DEFENSES.create(name, **kwargs)
