"""Defense registry: build any Table-I defense from its name.

Used by the benchmark harness and the examples to sweep over defenses with a
uniform interface.
"""

from __future__ import annotations

from repro.defenses.base import Aggregator, MeanAggregator
from repro.defenses.crfl import CRFL
from repro.defenses.detector import StatisticalDetector
from repro.defenses.dp import DPAggregator
from repro.defenses.flare import FLARE
from repro.defenses.krum import Krum
from repro.defenses.median import CoordinateMedian
from repro.defenses.norm_bound import NormBound
from repro.defenses.rlr import RobustLearningRate
from repro.defenses.signsgd import SignSGDAggregator
from repro.defenses.trimmed_mean import TrimmedMean

_DEFENSES: dict[str, type[Aggregator]] = {
    "mean": MeanAggregator,
    "krum": Krum,
    "median": CoordinateMedian,
    "trimmed_mean": TrimmedMean,
    "norm_bound": NormBound,
    "dp": DPAggregator,
    "rlr": RobustLearningRate,
    "signsgd": SignSGDAggregator,
    "flare": FLARE,
    "crfl": CRFL,
    "detector": StatisticalDetector,
}


def available_defenses() -> list[str]:
    """Names of every registered aggregation defense."""
    return sorted(_DEFENSES)


def make_defense(name: str, **kwargs) -> Aggregator:
    """Instantiate a defense by name with optional keyword overrides."""
    try:
        cls = _DEFENSES[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown defense {name!r}; available: {', '.join(available_defenses())}"
        ) from exc
    return cls(**kwargs)
