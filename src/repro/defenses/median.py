"""Coordinate-wise median aggregation (Yin et al., 2018)."""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("median")
class CoordinateMedian(Aggregator):
    """Element-wise median of the client updates."""

    name = "median"
    requires_plaintext_updates = True  # cross-client coordinate statistics

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        return np.median(updates, axis=0)
