"""Example-weighted FedAvg: average updates weighted by local dataset size.

The paper's ``mean`` baseline averages uniformly; this variant implements
the original FedAvg weighting (McMahan et al., 2017), where each client's
update counts proportionally to its number of local training examples.
``ClientUpdate.num_examples`` is populated by the execution engine from the
federation, so the defense is a pure streaming fold: weights ride on the
updates themselves and never need a side channel.

The matrix protocol cannot carry per-client example counts (its input is
just the stacked update array), so this defense is streaming-only:
``streaming="auto"`` (the default) always streams it, and forcing
``streaming="off"`` fails loudly instead of silently averaging uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator, fold_scaled_sum
from repro.registry import DEFENSES


@DEFENSES.register("weighted_mean")
class WeightedMeanAggregator(Aggregator):
    """FedAvg weighted by ``ClientUpdate.num_examples``.

    An update with an unknown example count (``num_examples == 0``)
    contributes weight 1.0, so synthetic rounds without dataset sizes
    degrade to the uniform mean.  The fold is an elementwise scaled sum with
    the total weight accumulated coordinator-side, so the defense shards.
    """

    name = "weighted_mean"
    streaming = True
    shardable = True
    streaming_only = True

    def aggregate(
        self,
        updates: np.ndarray,
        global_params: np.ndarray,
        ctx,
    ) -> np.ndarray:
        raise ValueError(
            "weighted_mean has no matrix path: per-client example counts "
            "travel on ClientUpdate, which only the streaming protocol "
            "sees — run with streaming='auto' or 'on'"
        )

    def prepare_update(self, update):
        return update.weight or 1.0

    def fold_aux(self, carry, aux):
        return (carry or 0.0) + aux

    def fold_slice(self, acc, segment, aux):
        return fold_scaled_sum(acc, segment, aux)

    def finalize_vector(self, folded, state, global_params, ctx):
        return folded / state.aux
