"""Robust learning rate (RLR) defense (Ozdayi et al., AAAI 2021).

For every parameter coordinate the server counts how many client updates
agree with the sign of the aggregate; coordinates whose agreement count falls
below a threshold get their learning rate *flipped* (multiplied by −1), which
undoes coordinated but minority pushes.  The paper finds RLR suppresses
backdoors but at a severe benign-accuracy cost under non-IID data, because
honest disagreement also triggers the flip.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("rlr")
class RobustLearningRate(Aggregator):
    """Sign-agreement-based per-coordinate learning-rate flipping."""

    name = "rlr"
    requires_plaintext_updates = True  # cohort-wide per-coordinate sign votes

    def __init__(self, threshold: int | None = None, threshold_fraction: float = 0.6) -> None:
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in (0, 1]")
        self.threshold = threshold
        self.threshold_fraction = threshold_fraction

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        n = updates.shape[0]
        threshold = self.threshold if self.threshold is not None else max(
            1, int(np.ceil(self.threshold_fraction * n))
        )
        signs = np.sign(updates)
        mean_update = updates.mean(axis=0)
        agreement = np.abs(signs.sum(axis=0))
        lr_sign = np.where(agreement >= threshold, 1.0, -1.0)
        return lr_sign * mean_update
