"""FLARE-style trust-score aggregation (Wang et al., ASIACCS 2022).

FLARE estimates a trust score per client update from the pairwise differences
between updates (the original uses penultimate-layer representations on probe
data; this reproduction uses the update vectors directly, which preserves the
mechanism: updates far from the crowd receive low trust).  Updates are then
averaged weighted by a softmax over negative average distances.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("flare")
class FLARE(Aggregator):
    """Trust-score-weighted aggregation based on pairwise update distances."""

    name = "flare"
    requires_plaintext_updates = True  # per-client latent-space probes

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def trust_scores(self, updates: np.ndarray) -> np.ndarray:
        n = updates.shape[0]
        if n == 1:
            return np.ones(1)
        sq_norms = np.sum(updates**2, axis=1)
        distances = np.sqrt(
            np.maximum(sq_norms[:, None] + sq_norms[None, :] - 2.0 * updates @ updates.T, 0.0)
        )
        avg_distance = distances.sum(axis=1) / (n - 1)
        spread = avg_distance.std()
        scaled = -avg_distance / (self.temperature * (spread + 1e-12))
        scaled -= scaled.max()
        weights = np.exp(scaled)
        return weights / weights.sum()

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        weights = self.trust_scores(updates)
        return (weights[:, None] * updates).sum(axis=0)
