"""Norm bounding defense (Sun et al., 2019).

Every client update is clipped to a maximum l2 norm before averaging,
optionally with Gaussian noise added to the aggregate.  The paper finds this
defense leaves FL highly vulnerable to CollaPois (Attack SR up to ~91%)
because CollaPois's clipped malicious updates stay inside the benign norm
range by construction.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator, clip_scale, fold_scaled_sum
from repro.registry import DEFENSES


@DEFENSES.register("norm_bound")
class NormBound(Aggregator):
    """Clip each update to ``max_norm``, then average (plus optional noise).

    Clipping is per-update and the average is a slot-ordered sum, so the
    defense streams: the round state is one running ``param_dim`` vector and
    noise is drawn once at finalize, exactly as in the matrix path.  The
    clipping norm is whole-vector work done in :meth:`prepare_update`; the
    fold itself is an elementwise scaled sum, so the defense also shards.
    """

    name = "norm_bound"
    streaming = True
    shardable = True

    def __init__(self, max_norm: float = 1.0, noise_std: float = 0.0) -> None:
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.max_norm = max_norm
        self.noise_std = noise_std

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        norms = np.linalg.norm(updates, axis=1, keepdims=True)
        scale = np.minimum(1.0, self.max_norm / np.clip(norms, 1e-12, None))
        clipped = updates * scale
        aggregated = clipped.mean(axis=0)
        if self.noise_std > 0:
            aggregated = aggregated + ctx.rng.normal(0.0, self.noise_std, size=aggregated.shape)
        return aggregated

    def prepare_update(self, update):
        return clip_scale(update.update, self.max_norm)

    def fold_slice(self, acc, segment, aux):
        return fold_scaled_sum(acc, segment, aux)

    def finalize_vector(self, folded, state, global_params, ctx):
        aggregated = folded / state.count
        if self.noise_std > 0:
            aggregated = aggregated + ctx.rng.normal(0.0, self.noise_std, size=aggregated.shape)
        return aggregated
