"""Ditto-style defensive personalisation (Li et al., ICML 2021).

Ditto is not an aggregation rule: each client fine-tunes the (possibly
corrupted) global model on its own private data with a proximal term, and
deploys the fine-tuned model.  We expose it as a personaliser that can wrap
any trained global model, used in the defense-sweep benchmarks to check how
much local fine-tuning erodes the backdoor.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.federated.client import LocalTrainingConfig, local_train


class DittoPersonalizer:
    """Per-client proximal fine-tuning of the global model."""

    name = "ditto"

    def __init__(self, epochs: int = 2, lr: float = 0.05, proximal_mu: float = 0.1,
                 batch_size: int = 16) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.config = LocalTrainingConfig(
            epochs=epochs, batch_size=batch_size, lr=lr, proximal_mu=proximal_mu
        )

    def personalize(
        self,
        model,
        global_params: np.ndarray,
        data: Dataset,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the client's fine-tuned parameter vector."""
        update, _ = local_train(model, global_params, data, self.config, rng)
        return global_params + update
