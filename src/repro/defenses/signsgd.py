"""SignSGD with majority vote (Bernstein et al., 2018).

Clients effectively vote on the sign of every coordinate; the server applies a
fixed-magnitude step in the majority direction.  Included for the Table I
catalogue and the defense-sweep benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("signsgd")
class SignSGDAggregator(Aggregator):
    """Majority-vote sign aggregation with a fixed step size.

    The vote is a coordinate-wise sum of per-update signs, so the round
    state streams as a single running tally vector (sign sums are exact
    small integers in float64, so fold order cannot even change rounding).
    """

    name = "signsgd"
    streaming = True

    def __init__(self, step_size: float = 0.01) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        vote = np.sign(np.sign(updates).sum(axis=0))
        return self.step_size * vote

    def _begin(self, ctx):
        return None  # running sign tally

    def _fold(self, state, update):
        if state.data is None:
            state.data = np.sign(update.update)
        else:
            state.data += np.sign(update.update)

    def _finalize(self, state, global_params, ctx):
        return self.step_size * np.sign(state.data)
