"""SignSGD with majority vote (Bernstein et al., 2018).

Clients effectively vote on the sign of every coordinate; the server applies a
fixed-magnitude step in the majority direction.  Included for the Table I
catalogue and the defense-sweep benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("signsgd")
class SignSGDAggregator(Aggregator):
    """Majority-vote sign aggregation with a fixed step size.

    The vote is a coordinate-wise sum of per-update signs, so the round
    state streams as a single running tally vector (sign sums are exact
    small integers in float64, so fold order cannot even change rounding).
    The tally is strictly elementwise, so the defense also shards.
    """

    name = "signsgd"
    streaming = True
    shardable = True

    def __init__(self, step_size: float = 0.01) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        vote = np.sign(np.sign(updates).sum(axis=0))
        return self.step_size * vote

    def fold_slice(self, acc, segment, aux):
        if acc is None:
            return np.sign(segment)
        acc += np.sign(segment)
        return acc

    def finalize_vector(self, folded, state, global_params, ctx):
        return self.step_size * np.sign(folded)
