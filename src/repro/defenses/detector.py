"""MESAS-style statistical poisoned-update detector (Krauß & Dmitrienko, CCS'23).

The detector computes per-update scalar features (l2 norm, angle to the
aggregate, angle variance contribution) and flags updates whose features are
statistical outliers relative to the round's population, using the same test
battery the paper reports CollaPois bypasses (t-test / Levene / KS on groups,
3σ rule per update).  It can be used standalone for analysis, or as an
aggregator that drops flagged updates before averaging.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.statistics import three_sigma_outliers
from repro.defenses.base import Aggregator
from repro.metrics.gradients import angles_to_reference
from repro.registry import DEFENSES


@DEFENSES.register("detector")
class StatisticalDetector(Aggregator):
    """Filter updates flagged as outliers on norm or angle, then average."""

    name = "detector"
    requires_plaintext_updates = True  # per-client anomaly scores

    def __init__(self, use_norm: bool = True, use_angle: bool = True) -> None:
        if not use_norm and not use_angle:
            raise ValueError("enable at least one feature")
        self.use_norm = use_norm
        self.use_angle = use_angle
        self.last_flags: np.ndarray | None = None

    def flag_updates(self, updates: np.ndarray) -> np.ndarray:
        """Boolean mask of updates considered suspicious this round."""
        n = updates.shape[0]
        flags = np.zeros(n, dtype=bool)
        if self.use_norm:
            norms = np.linalg.norm(updates, axis=1)
            flags |= three_sigma_outliers(norms)
        if self.use_angle:
            aggregate = updates.mean(axis=0)
            angles = angles_to_reference(updates, aggregate)
            flags |= three_sigma_outliers(angles)
        return flags

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        flags = self.flag_updates(updates)
        self.last_flags = flags
        kept = updates[~flags]
        if kept.shape[0] == 0:
            # Refusing to aggregate would stall training; fall back to the
            # coordinate-wise median of everything, the conservative choice.
            return np.median(updates, axis=0)
        return kept.mean(axis=0)

    def detection_report(self, updates: np.ndarray, malicious_mask: np.ndarray) -> dict[str, float]:
        """Precision/recall of the detector against ground-truth labels."""
        flags = self.flag_updates(updates)
        malicious_mask = np.asarray(malicious_mask, dtype=bool)
        true_positive = float(np.sum(flags & malicious_mask))
        flagged = float(np.sum(flags))
        actual = float(np.sum(malicious_mask))
        precision = true_positive / flagged if flagged else 0.0
        recall = true_positive / actual if actual else 0.0
        return {
            "flagged": flagged,
            "precision": precision,
            "recall": recall,
            "false_positive_rate": float(np.sum(flags & ~malicious_mask)) / max(
                1.0, float(np.sum(~malicious_mask))
            ),
        }
