"""α-trimmed-mean aggregation (Yin et al., 2018).

For every coordinate the largest and smallest ``trim_fraction`` of client
values are discarded and the remaining values averaged.
"""

from __future__ import annotations

import numpy as np

from repro.defenses.base import Aggregator
from repro.registry import DEFENSES


@DEFENSES.register("trimmed_mean")
class TrimmedMean(Aggregator):
    """Coordinate-wise trimmed mean."""

    name = "trimmed_mean"
    requires_plaintext_updates = True  # cross-client coordinate statistics

    def __init__(self, trim_fraction: float = 0.2) -> None:
        if not 0.0 <= trim_fraction < 0.5:
            raise ValueError("trim_fraction must be in [0, 0.5)")
        self.trim_fraction = trim_fraction

    def aggregate(self, updates, global_params, ctx) -> np.ndarray:
        n = updates.shape[0]
        k = int(np.floor(self.trim_fraction * n))
        if k == 0 or n - 2 * k <= 0:
            return updates.mean(axis=0)
        ordered = np.sort(updates, axis=0)
        return ordered[k : n - k].mean(axis=0)
