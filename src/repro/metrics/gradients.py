"""Gradient-geometry metrics: angles between client updates.

The paper's key observation (Fig. 3) is that benign clients' updates scatter
— the angles between them grow — as local data becomes more non-IID, while
CollaPois's malicious updates stay tightly aligned because they all point at
the same Trojaned model X.
"""

from __future__ import annotations

import numpy as np


def angle_between(u: np.ndarray, v: np.ndarray) -> float:
    """Angle in radians between two update vectors (0 if either is zero)."""
    u = np.asarray(u, dtype=np.float64).ravel()
    v = np.asarray(v, dtype=np.float64).ravel()
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        return 0.0
    cosine = float(np.clip(np.dot(u, v) / (nu * nv), -1.0, 1.0))
    return float(np.arccos(cosine))


def pairwise_angles(updates: np.ndarray) -> np.ndarray:
    """All pairwise angles among the rows of a ``(clients, dim)`` matrix."""
    updates = np.atleast_2d(np.asarray(updates, dtype=np.float64))
    n = updates.shape[0]
    if n < 2:
        return np.zeros(0, dtype=np.float64)
    norms = np.linalg.norm(updates, axis=1)
    safe = np.clip(norms, 1e-12, None)
    normalised = updates / safe[:, None]
    cosines = np.clip(normalised @ normalised.T, -1.0, 1.0)
    idx_i, idx_j = np.triu_indices(n, k=1)
    pair_cos = cosines[idx_i, idx_j]
    # Zero-norm rows produce meaningless angles; report 0 for those pairs.
    zero_mask = (norms[idx_i] == 0.0) | (norms[idx_j] == 0.0)
    angles = np.arccos(pair_cos)
    angles[zero_mask] = 0.0
    return angles


def angles_to_reference(updates: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Angle of every row of ``updates`` to a single reference vector."""
    updates = np.atleast_2d(np.asarray(updates, dtype=np.float64))
    return np.asarray([angle_between(row, reference) for row in updates])


def aggregate_angle_to_group(updates: np.ndarray, group: np.ndarray) -> np.ndarray:
    """Angles β_i between each update and the *aggregated* group update.

    This is the quantity Theorem 1 models as N(µ_α, σ²): the angle between a
    benign client's gradient and the sum of the compromised clients'
    malicious gradients.
    """
    group = np.atleast_2d(np.asarray(group, dtype=np.float64))
    aggregated = group.sum(axis=0)
    return angles_to_reference(updates, aggregated)


def angle_summary(updates: np.ndarray) -> dict[str, float]:
    """Mean/std/max of the pairwise angles of a group of updates (Fig. 3)."""
    angles = pairwise_angles(updates)
    if angles.size == 0:
        return {"mean": 0.0, "std": 0.0, "max": 0.0}
    return {
        "mean": float(np.mean(angles)),
        "std": float(np.std(angles)),
        "max": float(np.max(angles)),
    }
