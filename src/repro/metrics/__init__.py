"""Evaluation metrics: population-level and client-level.

* :mod:`repro.metrics.accuracy` — Benign AC and Attack SR (Section V), per
  client and averaged over the federation.
* :mod:`repro.metrics.client_level` — per-client scores (Eq. 8) and the
  top-k% infected-client clusters used by the client-level analysis.
* :mod:`repro.metrics.gradients` — gradient angle statistics (Fig. 3, Fig. 6).
* :mod:`repro.metrics.similarity` — cumulative-label-distribution cosine
  similarity to the attacker's auxiliary data (Eq. 9, Fig. 12).
"""

from repro.metrics.accuracy import ClientEvaluation, evaluate_clients, evaluate_global_model
from repro.metrics.client_level import cluster_clients_by_score, client_scores, top_k_metrics
from repro.metrics.gradients import (
    aggregate_angle_to_group,
    angle_between,
    angles_to_reference,
    pairwise_angles,
)
from repro.metrics.similarity import cumulative_label_cosine, cluster_similarity

__all__ = [
    "ClientEvaluation",
    "evaluate_clients",
    "evaluate_global_model",
    "client_scores",
    "cluster_clients_by_score",
    "top_k_metrics",
    "angle_between",
    "pairwise_angles",
    "angles_to_reference",
    "aggregate_angle_to_group",
    "cumulative_label_cosine",
    "cluster_similarity",
]
