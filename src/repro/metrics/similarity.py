"""Label-distribution similarity to the attacker's auxiliary data (Eq. 9).

The paper explains why some benign clients are hit harder than others: the
closer a client's cumulative label distribution is (in cosine similarity) to
the auxiliary data the Trojaned model X was trained on, the more its gradients
align with the malicious ones and the higher its Attack SR (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import cumulative_label_distribution


def cumulative_label_cosine(client_counts: np.ndarray, auxiliary_counts: np.ndarray) -> float:
    """Cosine similarity of two cumulative label distributions (Eq. 9)."""
    a = cumulative_label_distribution(client_counts)
    b = cumulative_label_distribution(auxiliary_counts)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def cluster_similarity(
    client_counts: np.ndarray,
    auxiliary_counts: np.ndarray,
    clusters: dict[str, np.ndarray],
) -> dict[str, float]:
    """Average CS_k of each infected-client cluster (Fig. 12).

    Parameters
    ----------
    client_counts:
        ``(num_clients, num_classes)`` matrix of per-client label counts.
    auxiliary_counts:
        Label-count vector of the attacker's auxiliary dataset Da.
    clusters:
        Output of :func:`repro.metrics.client_level.cluster_clients_by_score`,
        mapping cluster names to arrays of client positions.
    """
    client_counts = np.atleast_2d(client_counts)
    out: dict[str, float] = {}
    for name, members in clusters.items():
        if members.size == 0:
            out[name] = 0.0
            continue
        sims = [
            cumulative_label_cosine(client_counts[pos], auxiliary_counts) for pos in members
        ]
        out[name] = float(np.mean(sims))
    return out
