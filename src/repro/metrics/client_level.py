"""Client-level risk analysis: scores, top-k% clusters (Eq. 8, Figs. 10–12).

The paper argues that population averages hide the clients who are actually
hurt.  Each benign client gets a score — the sum of its Benign AC and Attack
SR (Eq. 8) — and clients are grouped into top-1%, top-25%, top-50% and
bottom-50% clusters; metrics are then reported per cluster.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.accuracy import ClientEvaluation


def client_scores(evaluation: ClientEvaluation) -> np.ndarray:
    """Eq. 8: per-client score = Benign AC + Attack SR."""
    return evaluation.benign_accuracy + evaluation.attack_success_rate


def top_k_metrics(evaluation: ClientEvaluation, k_percent: float) -> dict[str, float]:
    """Average Benign AC / Attack SR over the top-k% highest-score clients."""
    if not 0.0 < k_percent <= 100.0:
        raise ValueError("k_percent must be in (0, 100]")
    scores = client_scores(evaluation)
    n = scores.size
    if n == 0:
        return {"benign_accuracy": 0.0, "attack_success_rate": 0.0, "num_clients": 0}
    k = max(1, int(round(n * k_percent / 100.0)))
    top = np.argsort(scores)[::-1][:k]
    return {
        "benign_accuracy": float(evaluation.benign_accuracy[top].mean()),
        "attack_success_rate": float(evaluation.attack_success_rate[top].mean()),
        "num_clients": int(k),
    }


def cluster_clients_by_score(
    evaluation: ClientEvaluation,
    boundaries: tuple[float, ...] = (1.0, 25.0, 50.0),
) -> dict[str, np.ndarray]:
    """Partition clients into nested score clusters, as in Fig. 11/12.

    Returns a mapping from cluster name to the array of *positions* (indices
    into the evaluation arrays) belonging to that cluster.  The k%-cluster
    contains the top-k% clients *excluding* clients in all smaller clusters;
    the remaining clients form the ``bottom`` cluster.
    """
    scores = client_scores(evaluation)
    n = scores.size
    order = np.argsort(scores)[::-1]
    clusters: dict[str, np.ndarray] = {}
    previous_cutoff = 0
    for boundary in sorted(boundaries):
        cutoff = max(1, int(round(n * boundary / 100.0)))
        cutoff = min(cutoff, n)
        members = order[previous_cutoff:cutoff]
        clusters[f"top{boundary:g}%"] = members
        previous_cutoff = cutoff
    clusters["bottom"] = order[previous_cutoff:]
    return clusters


def cluster_metrics(
    evaluation: ClientEvaluation,
    clusters: dict[str, np.ndarray],
) -> dict[str, dict[str, float]]:
    """Mean Benign AC / Attack SR for each cluster produced above."""
    out: dict[str, dict[str, float]] = {}
    for name, members in clusters.items():
        if members.size == 0:
            out[name] = {"benign_accuracy": 0.0, "attack_success_rate": 0.0, "num_clients": 0}
            continue
        out[name] = {
            "benign_accuracy": float(evaluation.benign_accuracy[members].mean()),
            "attack_success_rate": float(evaluation.attack_success_rate[members].mean()),
            "num_clients": int(members.size),
        }
    return out
