"""Benign accuracy and attack success rate (Section V of the paper).

Benign AC is the accuracy of each client's (personalised) model on its own
clean test data; Attack SR is the fraction of that client's triggered test
samples classified as the attacker's target class.  Both are reported per
client and averaged over the federation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.triggers import Trigger
from repro.data.federated_data import FederatedDataset
from repro.nn.serialization import unflatten_params
from repro.registry import reject_unknown_keys


@dataclass
class ClientEvaluation:
    """Per-client and aggregate evaluation results."""

    benign_accuracy: np.ndarray
    attack_success_rate: np.ndarray
    client_ids: list[int] = field(default_factory=list)

    @property
    def mean_benign_accuracy(self) -> float:
        return float(np.mean(self.benign_accuracy)) if self.benign_accuracy.size else 0.0

    @property
    def mean_attack_success_rate(self) -> float:
        return float(np.mean(self.attack_success_rate)) if self.attack_success_rate.size else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "benign_accuracy": self.mean_benign_accuracy,
            "attack_success_rate": self.mean_attack_success_rate,
        }

    def to_dict(self) -> dict:
        """Full per-client JSON form (unlike :meth:`as_dict`, which averages).

        Float64 values survive the JSON round-trip losslessly (``repr``-based
        serialisation is shortest-round-trip exact).
        """
        return {
            "benign_accuracy": [float(v) for v in self.benign_accuracy],
            "attack_success_rate": [float(v) for v in self.attack_success_rate],
            "client_ids": [int(c) for c in self.client_ids],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClientEvaluation":
        reject_unknown_keys(
            data,
            {"benign_accuracy", "attack_success_rate", "client_ids"},
            "client-evaluation",
        )
        return cls(
            benign_accuracy=np.asarray(data.get("benign_accuracy", []), dtype=np.float64),
            attack_success_rate=np.asarray(
                data.get("attack_success_rate", []), dtype=np.float64
            ),
            client_ids=[int(c) for c in data.get("client_ids", [])],
        )


def _evaluate_params_on_client(
    model,
    params: np.ndarray,
    test_x: np.ndarray,
    test_y: np.ndarray,
    trigger: Trigger | None,
    target_class: int | None,
) -> tuple[float, float]:
    """(benign accuracy, attack success rate) for one client's test data."""
    if test_x.shape[0] == 0:
        return 0.0, 0.0
    unflatten_params(model, params)
    preds = model.predict(test_x)
    benign_acc = float((preds == test_y).mean())
    attack_sr = 0.0
    if trigger is not None and target_class is not None:
        # Exclude samples already belonging to the target class so the attack
        # success rate measures genuine label flips.
        mask = test_y != target_class
        if mask.any():
            triggered = trigger.apply(test_x[mask])
            troj_preds = model.predict(triggered)
            attack_sr = float((troj_preds == target_class).mean())
    return benign_acc, attack_sr


def evaluate_clients(
    dataset: FederatedDataset,
    model,
    params_fn,
    trigger: Trigger | None = None,
    target_class: int | None = None,
    client_ids: list[int] | None = None,
    max_test_samples: int | None = None,
) -> ClientEvaluation:
    """Evaluate every (benign) client with its own personalised parameters.

    Parameters
    ----------
    dataset:
        The federation.
    model:
        Reusable model instance whose parameters are overwritten per client.
    params_fn:
        Callable ``client_id -> flat parameter vector`` returning the model
        the client would deploy (global model for FedAvg, personalised model
        for FedDC/MetaFed).
    trigger, target_class:
        The backdoor trigger and target label; when omitted only Benign AC is
        computed.
    client_ids:
        Which clients to evaluate (default: all).
    max_test_samples:
        Optional cap on the number of test samples per client (keeps large
        sweeps fast).
    """
    ids = list(client_ids) if client_ids is not None else list(range(dataset.num_clients))
    benign = np.zeros(len(ids), dtype=np.float64)
    attack = np.zeros(len(ids), dtype=np.float64)
    for pos, client_id in enumerate(ids):
        client = dataset.client(client_id)
        test_x, test_y = client.test.x, client.test.y
        if max_test_samples is not None and test_x.shape[0] > max_test_samples:
            test_x = test_x[:max_test_samples]
            test_y = test_y[:max_test_samples]
        params = params_fn(client_id)
        benign[pos], attack[pos] = _evaluate_params_on_client(
            model, params, test_x, test_y, trigger, target_class
        )
    return ClientEvaluation(benign_accuracy=benign, attack_success_rate=attack, client_ids=ids)


def evaluate_global_model(
    dataset: FederatedDataset,
    model,
    global_params: np.ndarray,
    trigger: Trigger | None = None,
    target_class: int | None = None,
    client_ids: list[int] | None = None,
    max_test_samples: int | None = None,
) -> ClientEvaluation:
    """Evaluate the *global* model on every client's test data (FedAvg view)."""
    return evaluate_clients(
        dataset,
        model,
        params_fn=lambda _cid: global_params,
        trigger=trigger,
        target_class=target_class,
        client_ids=client_ids,
        max_test_samples=max_test_samples,
    )
