"""Non-IID partitioning of data across federated clients.

The paper models label-distribution skew with a symmetric Dirichlet
distribution: each client draws a class-proportion vector from
``Dir(α, …, α)``.  Small α concentrates a client's data in few classes
(high diversity / strongly non-IID); large α approaches a uniform, IID-like
distribution.  This module reproduces that partitioning exactly.
"""

from __future__ import annotations

import numpy as np


def partition_sizes(
    total_samples: int,
    num_clients: int,
    rng: np.random.Generator,
    imbalance: float = 0.3,
    min_samples: int = 8,
) -> np.ndarray:
    """Draw per-client dataset sizes summing approximately to ``total_samples``.

    Client sizes follow a lognormal spread around the even share, mimicking
    the heavy-tailed per-user sample counts of LEAF-style federated datasets.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    mean = total_samples / num_clients
    raw = rng.lognormal(mean=0.0, sigma=imbalance, size=num_clients)
    sizes = np.maximum(min_samples, np.round(raw / raw.sum() * total_samples)).astype(np.int64)
    return sizes


def dirichlet_label_partition(
    labels_per_client: np.ndarray,
    num_classes: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Draw per-client class-count vectors under a symmetric Dirichlet(α).

    Parameters
    ----------
    labels_per_client:
        Number of samples each client should receive.
    num_classes:
        Number of label classes.
    alpha:
        Dirichlet concentration; the paper sweeps α ∈ [0.01, 100].
    rng:
        Randomness source.

    Returns
    -------
    list of int arrays
        ``counts[i][c]`` is the number of class-``c`` samples for client ``i``;
        each row sums to ``labels_per_client[i]``.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if num_classes <= 1:
        raise ValueError("need at least two classes")
    counts: list[np.ndarray] = []
    for size in np.asarray(labels_per_client, dtype=np.int64):
        proportions = rng.dirichlet(np.full(num_classes, alpha))
        drawn = rng.multinomial(int(size), proportions)
        counts.append(drawn.astype(np.int64))
    return counts


def label_distribution(counts: np.ndarray) -> np.ndarray:
    """Normalise a class-count vector into a probability distribution."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return np.full_like(counts, 1.0 / counts.size)
    return counts / total


def cumulative_label_distribution(counts: np.ndarray) -> np.ndarray:
    """Cumulative label distribution ``P_CL`` used by Eq. 9 of the paper.

    ``P_CL(D)[j]`` is the total number of samples whose label is ≤ j.
    """
    counts = np.asarray(counts, dtype=np.float64)
    return np.cumsum(counts)


def non_iid_degree(counts_per_client: list[np.ndarray]) -> float:
    """Scalar summary of how non-IID a partition is.

    Computes the mean total-variation distance between each client's label
    distribution and the population label distribution.  0 means perfectly
    IID; values near 1 mean each client holds a single class.
    """
    if not counts_per_client:
        raise ValueError("empty partition")
    matrix = np.stack([label_distribution(c) for c in counts_per_client])
    population = label_distribution(np.sum(counts_per_client, axis=0))
    tv = 0.5 * np.abs(matrix - population).sum(axis=1)
    return float(tv.mean())
