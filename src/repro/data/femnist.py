"""Synthetic FEMNIST-like image data.

The real FEMNIST dataset (LEAF) contains handwritten characters from 3,400
writers and is not available offline.  This generator produces a *synthetic
equivalent* with the properties the paper's experiments depend on:

* a fixed number of classes, each with a distinctive prototype glyph;
* per-writer style variation (small affine jitter of the prototype) so that
  clients' data is genuinely heterogeneous beyond label skew;
* pixel noise so the classification task is non-trivial but learnable by a
  small LeNet/MLP;
* deterministic generation from a seed.

Images are returned in NCHW layout with values in [0, 1].
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset
from repro.registry import DATASETS


@DATASETS.register("femnist")
class SyntheticFEMNIST:
    """Generator of FEMNIST-like prototype+noise character images."""

    def __init__(
        self,
        num_classes: int = 10,
        image_size: int = 16,
        noise_std: float = 0.15,
        style_jitter: float = 0.12,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if image_size < 8:
            raise ValueError("image_size must be at least 8")
        self.num_classes = num_classes
        self.image_size = image_size
        self.noise_std = noise_std
        self.style_jitter = style_jitter
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._prototypes = self._build_prototypes()

    def _build_prototypes(self) -> np.ndarray:
        """One smooth, class-specific glyph per class.

        Each prototype is a sum of a few Gaussian blobs whose positions are
        drawn deterministically per class, low-pass filtered so the glyphs are
        smooth shapes rather than white noise.
        """
        protos = np.zeros((self.num_classes, self.image_size, self.image_size), dtype=np.float64)
        grid = np.arange(self.image_size)
        yy, xx = np.meshgrid(grid, grid, indexing="ij")
        for cls in range(self.num_classes):
            cls_rng = np.random.default_rng(self.seed * 1000 + cls)
            canvas = np.zeros((self.image_size, self.image_size), dtype=np.float64)
            for _ in range(4):
                cy, cx = cls_rng.uniform(2, self.image_size - 2, size=2)
                sigma = cls_rng.uniform(1.2, 2.5)
                canvas += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
            canvas = ndimage.gaussian_filter(canvas, sigma=0.6)
            canvas -= canvas.min()
            peak = canvas.max()
            if peak > 0:
                canvas /= peak
            protos[cls] = canvas
        return protos

    @property
    def prototypes(self) -> np.ndarray:
        """Class prototype images, shape ``(num_classes, H, W)``."""
        return self._prototypes.copy()

    def _writer_transform(self, image: np.ndarray, writer_rng: np.random.Generator) -> np.ndarray:
        """Apply a small writer-specific shift and scale to a prototype."""
        shift = writer_rng.uniform(-self.style_jitter * self.image_size / 4,
                                   self.style_jitter * self.image_size / 4, size=2)
        zoom = 1.0 + writer_rng.uniform(-self.style_jitter, self.style_jitter)
        shifted = ndimage.shift(image, shift, order=1, mode="constant", cval=0.0)
        center = (self.image_size - 1) / 2.0
        coords = np.meshgrid(np.arange(self.image_size), np.arange(self.image_size), indexing="ij")
        coords = [(c - center) / zoom + center for c in coords]
        return ndimage.map_coordinates(shifted, coords, order=1, mode="constant", cval=0.0)

    def sample_client(
        self,
        class_counts: np.ndarray,
        client_seed: int,
    ) -> Dataset:
        """Generate one client's dataset from a per-class count vector.

        Parameters
        ----------
        class_counts:
            Length-``num_classes`` integer vector (e.g. produced by
            :func:`repro.data.partition.dirichlet_label_partition`).
        client_seed:
            Seed controlling the client's writer style and sample noise.
        """
        class_counts = np.asarray(class_counts, dtype=np.int64)
        if class_counts.shape != (self.num_classes,):
            raise ValueError("class_counts must have one entry per class")
        writer_rng = np.random.default_rng(client_seed)
        styled = np.stack(
            [self._writer_transform(self._prototypes[c], writer_rng) for c in range(self.num_classes)]
        )
        images: list[np.ndarray] = []
        labels: list[int] = []
        for cls, count in enumerate(class_counts):
            for _ in range(int(count)):
                noisy = styled[cls] + writer_rng.normal(0.0, self.noise_std, size=styled[cls].shape)
                images.append(np.clip(noisy, 0.0, 1.0))
                labels.append(cls)
        if not images:
            x = np.zeros((0, 1, self.image_size, self.image_size), dtype=np.float64)
            y = np.zeros(0, dtype=np.int64)
            return Dataset(x, y)
        x = np.stack(images)[:, None, :, :]
        y = np.asarray(labels, dtype=np.int64)
        return Dataset(x, y)

    def sample_iid(self, num_samples: int, seed: int = 12345) -> Dataset:
        """Generate an IID dataset (uniform class mix) — used for global test sets."""
        rng = np.random.default_rng(seed)
        counts = np.bincount(rng.integers(0, self.num_classes, size=num_samples),
                             minlength=self.num_classes)
        return self.sample_client(counts, client_seed=seed)
