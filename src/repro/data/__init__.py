"""Data substrate: datasets, non-IID partitioning, and federated assembly.

The paper evaluates on FEMNIST (image) and Sentiment140 (text), partitioned
over thousands of clients with a symmetric Dirichlet(α) label-distribution
skew.  Neither dataset is available offline, so this package provides
*synthetic equivalents* that preserve the properties the attack exploits:

* class-separable, learnable inputs (prototype + noise images, class-
  conditional embedding clusters for text);
* exact symmetric-Dirichlet label skew across clients, controlled by the same
  concentration parameter α used in the paper;
* per-client train / test / validation splits (70 / 15 / 15) and an auxiliary
  set pooled from the compromised clients' validation data, as in Section V.
"""

from repro.data.dataset import Dataset, train_test_val_split
from repro.data.federated_data import ClientData, FederatedDataset, build_federated_dataset
from repro.data.femnist import SyntheticFEMNIST
from repro.data.partition import dirichlet_label_partition, label_distribution, partition_sizes
from repro.data.sentiment import SyntheticSentiment

__all__ = [
    "Dataset",
    "train_test_val_split",
    "ClientData",
    "FederatedDataset",
    "build_federated_dataset",
    "SyntheticFEMNIST",
    "SyntheticSentiment",
    "dirichlet_label_partition",
    "label_distribution",
    "partition_sizes",
]
