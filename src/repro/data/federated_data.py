"""Assembly of a full federated dataset: clients, splits, auxiliary data.

This module connects the synthetic data generators to the Dirichlet
partitioner and produces the per-client view used throughout the library:
each client holds train / test / validation splits, and the attacker's
auxiliary dataset is the union of the compromised clients' validation sets
(as specified in Section V of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset, train_test_val_split
from repro.data.partition import dirichlet_label_partition, partition_sizes


@dataclass
class ClientData:
    """All data belonging to a single federated client."""

    client_id: int
    train: Dataset
    test: Dataset
    val: Dataset
    class_counts: np.ndarray

    @property
    def num_samples(self) -> int:
        return len(self.train) + len(self.test) + len(self.val)


def pool_client_datasets(
    get_client, client_ids: list[int], source: str = "val"
) -> Dataset:
    """Pool one split of several clients into a single dataset.

    ``get_client`` maps a client id to its :class:`ClientData`; the helper is
    shared between the eager :class:`FederatedDataset` and the lazy
    :class:`~repro.federated.population.ClientPopulation` (which materialises
    each client on demand), so both build the attacker's auxiliary set
    through exactly the same concatenation order.
    """
    if not client_ids:
        raise ValueError("need at least one client to pool")
    if source not in {"val", "train", "all"}:
        raise ValueError("source must be 'val', 'train' or 'all'")
    parts: list[Dataset] = []
    for c in client_ids:
        client = get_client(c)
        if source == "val":
            parts.append(client.val)
        elif source == "train":
            parts.append(client.train)
        else:
            parts.append(client.train.concat(client.test).concat(client.val))
    pooled = parts[0]
    for part in parts[1:]:
        pooled = pooled.concat(part)
    return pooled


@dataclass
class FederatedDataset:
    """The complete federation: per-client data plus global metadata."""

    clients: list[ClientData]
    num_classes: int
    alpha: float
    input_shape: tuple[int, ...]
    metadata: dict = field(default_factory=dict)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def client(self, client_id: int) -> ClientData:
        return self.clients[client_id]

    def class_counts(self, client_id: int) -> np.ndarray:
        """Per-class sample counts of one client (cheap metadata access)."""
        return self.clients[client_id].class_counts

    def label_distributions(self) -> np.ndarray:
        """Stacked ``(num_clients, num_classes)`` class-count matrix.

        The supported way for algorithms/defenses to read the federation's
        label skew: lazy populations provide the same method without
        materialising any client data, so callers must not reach for
        ``dataset.clients`` directly.
        """
        return np.stack([c.class_counts for c in self.clients])

    def eval_client_ids(self) -> list[int]:
        """Client ids evaluated by the experiment runner (all of them here).

        Lazy populations override this with a deterministic capped subset so
        final evaluation stays O(evaluated clients) at 1e5+ scale.
        """
        return list(range(self.num_clients))

    def auxiliary_dataset(self, compromised_ids: list[int], source: str = "val") -> Dataset:
        """Pool the compromised clients' data into the attacker's auxiliary set Da.

        The paper pools the compromised clients' *validation* splits
        (``source="val"``).  At the reduced scale of this reproduction the
        validation splits alone can be only a handful of samples, so callers
        that need a trainable auxiliary set (e.g. CollaPois / MRepl training
        the Trojaned model X) may request ``source="all"`` — the union of the
        compromised clients' train, test and validation data, which matches
        the *relative* auxiliary-data size of the paper's setting.
        """
        if not compromised_ids:
            raise ValueError("need at least one compromised client")
        return pool_client_datasets(self.client, compromised_ids, source=source)

    def auxiliary_class_counts(self, compromised_ids: list[int], source: str = "val") -> np.ndarray:
        """Class-count vector of the attacker's auxiliary dataset."""
        aux = self.auxiliary_dataset(compromised_ids, source=source)
        return aux.class_counts(self.num_classes)

    def global_test_set(self, max_per_client: int | None = None) -> Dataset:
        """Union of all client test sets (optionally capped per client)."""
        parts = []
        for client in self.clients:
            test = client.test
            if max_per_client is not None and len(test) > max_per_client:
                test = test.subset(np.arange(max_per_client))
            parts.append(test)
        pooled = parts[0]
        for part in parts[1:]:
            pooled = pooled.concat(part)
        return pooled


def build_federated_dataset(
    generator,
    num_clients: int,
    samples_per_client: int,
    alpha: float,
    seed: int = 0,
    size_imbalance: float = 0.3,
) -> FederatedDataset:
    """Build a federation from a synthetic generator.

    Parameters
    ----------
    generator:
        A :class:`~repro.data.femnist.SyntheticFEMNIST` or
        :class:`~repro.data.sentiment.SyntheticSentiment` instance (anything
        exposing ``num_classes`` and ``sample_client``).
    num_clients:
        Number of federated clients.
    samples_per_client:
        Mean number of samples per client (actual sizes vary lognormally).
    alpha:
        Dirichlet concentration parameter controlling label skew.
    seed:
        Master seed; all per-client seeds derive from it.
    size_imbalance:
        Lognormal sigma of client dataset sizes.
    """
    if num_clients <= 0 or samples_per_client <= 0:
        raise ValueError("num_clients and samples_per_client must be positive")
    rng = np.random.default_rng(seed)
    sizes = partition_sizes(
        num_clients * samples_per_client, num_clients, rng, imbalance=size_imbalance
    )
    counts = dirichlet_label_partition(sizes, generator.num_classes, alpha, rng)
    clients: list[ClientData] = []
    for cid in range(num_clients):
        data = generator.sample_client(counts[cid], client_seed=seed * 100003 + cid)
        split_rng = np.random.default_rng(seed * 7919 + cid)
        train, test, val = train_test_val_split(data, rng=split_rng)
        clients.append(
            ClientData(
                client_id=cid,
                train=train,
                test=test,
                val=val,
                class_counts=np.asarray(counts[cid], dtype=np.int64),
            )
        )
    sample_shape = clients[0].train.x.shape[1:] if len(clients[0].train) else ()
    return FederatedDataset(
        clients=clients,
        num_classes=generator.num_classes,
        alpha=alpha,
        input_shape=tuple(sample_shape),
        metadata={"seed": seed, "samples_per_client": samples_per_client},
    )
