"""Synthetic Sentiment140-like text-feature data.

The paper's Sentiment task runs a frozen BERT tokenizer/encoder and trains
only a small fully connected head on the resulting features.  Reproducing
this offline requires neither BERT nor tweets: what the federated/backdoor
dynamics see is a *fixed feature vector per sample* with class structure.

This generator produces exactly that: each sample is a mean-pooled bag of
token embeddings, where token frequencies are class-conditional (positive and
negative "vocabulary" clusters) and the embedding table is a frozen random
projection.  A text Trojan (fixed trigger term, as in the paper's reference
[36]) corresponds to adding the trigger token's embedding to the pooled
feature — implemented by :class:`repro.attacks.triggers.TokenTrigger`.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.registry import DATASETS


@DATASETS.register("sentiment")
class SyntheticSentiment:
    """Generator of class-conditional bag-of-embedding text features."""

    def __init__(
        self,
        num_classes: int = 2,
        vocab_size: int = 200,
        embedding_dim: int = 32,
        tokens_per_sample: int = 12,
        class_sharpness: float = 3.0,
        noise_std: float = 0.05,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if vocab_size < num_classes * 4:
            raise ValueError("vocab_size too small for the number of classes")
        self.num_classes = num_classes
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.tokens_per_sample = tokens_per_sample
        self.noise_std = noise_std
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Frozen "pre-trained" embedding table (the BERT stand-in).
        self.embeddings = rng.normal(0.0, 1.0, size=(vocab_size, embedding_dim))
        # Class-conditional token distributions: each class prefers a
        # distinct slice of the vocabulary, with peakedness set by
        # class_sharpness.
        logits = rng.normal(0.0, 1.0, size=(num_classes, vocab_size))
        slice_size = vocab_size // num_classes
        for cls in range(num_classes):
            logits[cls, cls * slice_size : (cls + 1) * slice_size] += class_sharpness
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        self.token_probs = exp / exp.sum(axis=1, keepdims=True)
        # Reserve the last vocabulary index as the backdoor trigger token.
        self.trigger_token = vocab_size - 1

    def embed_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Mean-pool the embeddings of a token-id sequence."""
        return self.embeddings[np.asarray(tokens, dtype=np.int64)].mean(axis=0)

    def trigger_embedding(self) -> np.ndarray:
        """Embedding contribution of the fixed trigger term."""
        return self.embeddings[self.trigger_token] / self.tokens_per_sample

    def sample_client(self, class_counts: np.ndarray, client_seed: int) -> Dataset:
        """Generate one client's dataset from a per-class count vector."""
        class_counts = np.asarray(class_counts, dtype=np.int64)
        if class_counts.shape != (self.num_classes,):
            raise ValueError("class_counts must have one entry per class")
        rng = np.random.default_rng(client_seed)
        features: list[np.ndarray] = []
        labels: list[int] = []
        for cls, count in enumerate(class_counts):
            for _ in range(int(count)):
                tokens = rng.choice(self.vocab_size, size=self.tokens_per_sample,
                                    p=self.token_probs[cls])
                feat = self.embed_tokens(tokens)
                feat = feat + rng.normal(0.0, self.noise_std, size=feat.shape)
                features.append(feat)
                labels.append(cls)
        if not features:
            return Dataset(np.zeros((0, self.embedding_dim)), np.zeros(0, dtype=np.int64))
        return Dataset(np.stack(features), np.asarray(labels, dtype=np.int64))

    def sample_iid(self, num_samples: int, seed: int = 12345) -> Dataset:
        """Generate an IID dataset — used for global test sets."""
        rng = np.random.default_rng(seed)
        counts = np.bincount(rng.integers(0, self.num_classes, size=num_samples),
                             minlength=self.num_classes)
        return self.sample_client(counts, client_seed=seed)
