"""Lightweight dataset container and split utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """A supervised dataset: inputs ``x`` and integer labels ``y``.

    ``x`` may be 2-D (features) or 4-D (images, NCHW); ``y`` is always a 1-D
    integer array aligned with the first axis of ``x``.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"inputs and labels disagree on sample count: {self.x.shape[0]} vs {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """New dataset containing only the given sample indices."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(self.x[idx], self.y[idx])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Return a copy with samples in a random order."""
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield mini-batches ``(x, y)``; shuffles when an rng is provided."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = np.arange(len(self))
        if rng is not None:
            order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Number of samples per class, as a length-``num_classes`` vector."""
        return np.bincount(self.y, minlength=num_classes).astype(np.int64)

    def concat(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets along the sample axis."""
        return Dataset(np.concatenate([self.x, other.x]), np.concatenate([self.y, other.y]))


def train_test_val_split(
    data: Dataset,
    train_frac: float = 0.70,
    test_frac: float = 0.15,
    rng: np.random.Generator | None = None,
) -> tuple[Dataset, Dataset, Dataset]:
    """Split a dataset into train / test / validation parts.

    The paper uses 70% / 15% / 15% per client; the validation parts of the
    compromised clients are pooled into the attacker's auxiliary set.
    Every sample lands in exactly one split even for tiny datasets.
    """
    if not 0.0 < train_frac < 1.0 or not 0.0 < test_frac < 1.0:
        raise ValueError("split fractions must be in (0, 1)")
    if train_frac + test_frac >= 1.0:
        raise ValueError("train_frac + test_frac must be below 1")
    n = len(data)
    order = np.arange(n)
    if rng is not None:
        order = rng.permutation(n)
    n_train = max(1, int(round(train_frac * n))) if n else 0
    n_test = max(1, int(round(test_frac * n))) if n > 1 else 0
    n_train = min(n_train, n)
    n_test = min(n_test, n - n_train)
    train_idx = order[:n_train]
    test_idx = order[n_train : n_train + n_test]
    val_idx = order[n_train + n_test :]
    return data.subset(train_idx), data.subset(test_idx), data.subset(val_idx)
