"""Declarative experiment scenarios: validated, JSON-round-trippable specs.

A :class:`Scenario` is the single value object describing one federated
experiment — data, model, training algorithm, attack, defense and execution
backend.  It subsumes the historical ``ExperimentConfig`` (which remains as
a compatibility alias) and adds:

* **registry validation** — component names are checked against the unified
  registries (:mod:`repro.registry`), so error messages list what is
  actually available instead of hard-coding string sets;
* **component specs** — every component field accepts a spec carrying
  constructor kwargs (``defense="krum:num_malicious=2"``,
  ``defense=("krum", {"num_malicious": 2})``), normalised into the bare
  name plus the matching ``*_kwargs`` dict;
* **JSON round-trip** — :meth:`to_dict`/:meth:`from_dict` (and the
  ``json``/file variants) serialise a scenario losslessly; re-running a
  deserialised scenario reproduces the original ``TrainingHistory``
  bit-identically.  Unknown keys fail loudly with did-you-mean suggestions.

Dataset-modality normalisation (the sentiment task is binary and uses the
text head) happens in the explicit, documented :meth:`_normalize_modality`
step rather than as a silent ``__post_init__`` side effect scattered among
validations — the observable behaviour is unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.federated.client import LocalTrainingConfig
from repro.registry import (
    ALGORITHMS,
    ATTACKS,
    BACKENDS,
    DATASETS,
    DEFENSES,
    MODELS,
    PARTICIPATION,
    POPULATIONS,
    TRIGGERS,
    Registry,
    parse_spec,
    reject_unknown_keys,
)

# Component fields resolved against a registry, with the field holding the
# kwargs parsed out of a spec.  ``backend`` is handled separately because its
# only kwarg (``max_workers``) maps onto the ``backend_workers`` field.
# ``population`` and ``participation`` default to ``None`` (meaning "eager
# dataset" / "uniform from sample_rate"); normalisation and validation skip
# them when unset.
_COMPONENT_FIELDS: dict[str, tuple[Registry, str]] = {
    "dataset": (DATASETS, "dataset_kwargs"),
    "model": (MODELS, "model_kwargs"),
    "algorithm": (ALGORITHMS, "algorithm_kwargs"),
    "attack": (ATTACKS, "attack_kwargs"),
    "trigger": (TRIGGERS, "trigger_kwargs"),
    "defense": (DEFENSES, "defense_kwargs"),
    "population": (POPULATIONS, "population_kwargs"),
    "participation": (PARTICIPATION, "participation_kwargs"),
}


@dataclass
class Scenario:
    """Everything needed to run one federated-training experiment.

    Defaults are sized for laptop-scale smoke runs; the benchmark harness
    scales ``num_clients`` / ``rounds`` up and the paper-scale parameters
    are recorded in ``EXPERIMENTS.md``.
    """

    # Identity (optional, used by suites/CLI output)
    name: str | None = None

    # Data
    dataset: str = "femnist"
    dataset_kwargs: dict = field(default_factory=dict)
    num_clients: int = 30
    samples_per_client: int = 40
    alpha: float = 0.5                  # Dirichlet concentration (non-IID level)
    num_classes: int = 10
    image_size: int = 16
    data_seed: int = 0
    population: str | None = None       # lazy population spec (None = eager dataset)
    population_kwargs: dict = field(default_factory=dict)

    # Model
    model: str = "mlp"
    model_kwargs: dict = field(default_factory=dict)
    hidden: tuple[int, ...] = (64,)

    # Federated training
    algorithm: str = "fedavg"
    algorithm_kwargs: dict = field(default_factory=dict)
    rounds: int = 15
    sample_rate: float = 0.3            # uniform-q sugar; participation overrides
    participation: str | None = None    # participation-model spec (None = uniform)
    participation_kwargs: dict = field(default_factory=dict)
    aggregation_mode: str = "sync"      # "sync" | "buffered_async[:k=v,...]" spec
    server_lr: float = 1.0
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    seed: int = 0
    eval_every: int | None = None
    backend: str = "serial"
    backend_workers: int | None = None  # worker cap for parallel backends
    backend_kwargs: dict = field(default_factory=dict)  # extra backend ctor kwargs
    #   (e.g. distributed's connect="host:port,..."); max_workers stays on
    #   backend_workers so every backend shares one worker-cap field.
    streaming: str = "auto"             # fold updates online: auto|on|off
    num_shards: int = 1                 # split the streaming fold across shards
    secure_aggregation: bool = False    # pairwise-masked updates (server-blind)
    telemetry: bool = False             # out-of-band span/metric tracing

    # Attack
    attack: str = "none"
    attack_kwargs: dict = field(default_factory=dict)
    compromised_fraction: float = 0.1
    target_class: int = 0
    trigger: str = "warping"
    trigger_kwargs: dict = field(default_factory=dict)
    psi_low: float = 0.9
    psi_high: float = 1.0
    clip_bound: float | None = None
    trojan_epochs: int = 8

    # Defense
    defense: str = "mean"
    defense_kwargs: dict = field(default_factory=dict)

    # Evaluation
    max_test_samples: int | None = 40

    def __post_init__(self) -> None:
        self._normalize_components()
        self._normalize_modality()
        self._validate()

    # -- normalisation -----------------------------------------------------

    def _normalize_components(self) -> None:
        """Resolve component specs into bare names + ``*_kwargs`` dicts.

        A spec's kwargs are merged over the field's existing kwargs dict
        (the spec wins), so ``with_overrides(defense="krum:multi=3")`` works
        whether or not ``defense_kwargs`` was set before.
        """
        for component, (_registry, kwargs_field) in _COMPONENT_FIELDS.items():
            spec = getattr(self, component)
            if spec is None:
                continue  # optional component left unset
            if isinstance(spec, str) and ":" not in spec:
                continue  # bare name: nothing to do
            spec_name, spec_kwargs = parse_spec(spec)
            setattr(self, component, spec_name)
            if spec_kwargs:
                merged = {**getattr(self, kwargs_field), **spec_kwargs}
                setattr(self, kwargs_field, merged)
        backend_spec = self.backend
        if not isinstance(backend_spec, str) or ":" in backend_spec:
            spec_name, spec_kwargs = parse_spec(backend_spec)
            self.backend = spec_name
            workers = spec_kwargs.pop("max_workers", None)
            if workers is not None:
                self.backend_workers = workers
            if spec_kwargs:
                self.backend_kwargs = {**self.backend_kwargs, **spec_kwargs}
        self.backend_kwargs = _jsonify(self.backend_kwargs)
        if isinstance(self.hidden, list):
            self.hidden = tuple(self.hidden)
        if isinstance(self.local, dict):
            self.local = _local_config_from_dict(self.local)
        # Canonicalise kwargs dicts to their JSON form (tuples -> lists) so a
        # scenario equals its own JSON round-trip regardless of how the spec
        # was written ("mlp:hidden=(32,16)" and loaded JSON agree).
        for _component, (_registry, kwargs_field) in _COMPONENT_FIELDS.items():
            setattr(self, kwargs_field, _jsonify(getattr(self, kwargs_field)))

    def _normalize_modality(self) -> None:
        """Align model geometry with the dataset's modality.

        The text task is binary sentiment classification over frozen
        embeddings, so it forces ``num_classes = 2`` and replaces image
        architectures with the text head.  This is the one place scenario
        fields are rewritten; it runs before validation so a serialised
        scenario stores the *effective* values and round-trips unchanged.
        """
        if self.dataset == "sentiment":
            self.num_classes = 2
            if self.model not in {"text", "mlp"}:
                # The replaced architecture's kwargs do not apply to the head.
                self.model = "text"
                self.model_kwargs = {}

    # -- validation --------------------------------------------------------

    def _validate(self) -> None:
        for component, (registry, _kwargs_field) in _COMPONENT_FIELDS.items():
            value = getattr(self, component)
            if component == "attack" and value == "none":
                continue
            if value is None and component in ("population", "participation"):
                continue
            registry.validate(value)
        BACKENDS.validate(self.backend)
        if self.model == "text" and self.dataset != "sentiment":
            raise ValueError(
                "model 'text' is the frozen-embedding task head and requires "
                "a text dataset (dataset='sentiment')"
            )
        if not 0.0 <= self.compromised_fraction < 1.0:
            raise ValueError("compromised_fraction must be in [0, 1)")
        if self.attack != "none" and self.compromised_fraction <= 0.0:
            raise ValueError("an attack requires a positive compromised_fraction")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.backend_workers is not None and self.backend_workers <= 0:
            raise ValueError("backend_workers must be positive")
        if self.backend_workers is not None and self.backend in ("serial", "batched"):
            raise ValueError(
                "backend_workers requires a worker-pool backend "
                "('thread', 'process' or 'distributed')"
            )
        if not isinstance(self.backend_kwargs, dict):
            raise ValueError("backend_kwargs must be a dict")
        if self.backend_kwargs:
            accepted = {p.name for p in BACKENDS.describe(self.backend)}
            unknown = sorted(set(self.backend_kwargs) - (accepted - {"max_workers"}))
            if unknown:
                raise ValueError(
                    f"backend {self.backend!r} does not accept backend_kwargs "
                    f"{unknown} (max_workers belongs on backend_workers); "
                    f"accepted: {sorted(accepted - {'max_workers'}) or 'none'}"
                )
        if self.streaming not in ("auto", "on", "off"):
            raise ValueError("streaming must be 'auto', 'on' or 'off'")
        if self.streaming == "off" and getattr(
            DEFENSES.get(self.defense), "streaming_only", False
        ):
            raise ValueError(
                f"defense {self.defense!r} only supports the streaming update "
                "path; use streaming='auto' or 'on'"
            )
        if not isinstance(self.num_shards, int) or self.num_shards < 1:
            raise ValueError("num_shards must be a positive integer")
        mode, mode_kwargs = parse_spec(self.aggregation_mode)
        if mode not in ("sync", "buffered_async"):
            raise ValueError(
                f"aggregation_mode must be 'sync' or 'buffered_async', got {mode!r}"
            )
        if mode == "sync" and mode_kwargs:
            raise ValueError("aggregation_mode 'sync' takes no arguments")
        if mode == "buffered_async":
            unknown = sorted(set(mode_kwargs) - {"buffer_size", "staleness_discount"})
            if unknown:
                raise ValueError(
                    f"unknown buffered_async argument(s) {unknown}; "
                    "accepted: ['buffer_size', 'staleness_discount']"
                )
            if self.secure_aggregation:
                raise ValueError(
                    "buffered_async is incompatible with secure aggregation "
                    "(pairwise masks only cancel within one round's cohort)"
                )
            if self.streaming == "off":
                raise ValueError(
                    "buffered_async folds arrivals online; use "
                    "streaming='auto' or 'on'"
                )
        if not isinstance(self.telemetry, bool):
            raise ValueError("telemetry must be a bool")
        if self.secure_aggregation:
            from repro.federated.secagg import PlaintextRequiredError

            defense = DEFENSES.get(self.defense)
            if getattr(defense, "requires_plaintext_updates", False):
                raise PlaintextRequiredError(self.defense)
            if self.streaming == "off":
                raise ValueError(
                    "secure aggregation folds masked updates online and has no "
                    "matrix path; use streaming='auto' or 'on'"
                )

    # -- functional updates ------------------------------------------------

    def with_overrides(self, **kwargs) -> "Scenario":
        """Functional update: return a copy with the given fields replaced.

        Overriding a component field resets its ``*_kwargs`` companion
        (unless that companion is overridden too): the old component's
        kwargs do not apply to the new one, and any kwargs carried by the
        new spec are re-merged during normalisation.
        """
        for component, (_registry, kwargs_field) in _COMPONENT_FIELDS.items():
            if component in kwargs and kwargs_field not in kwargs:
                kwargs[kwargs_field] = {}
        return replace(self, **kwargs)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible, lossless)."""
        data = asdict(self)
        data["hidden"] = list(self.hidden)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Build a scenario from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise TypeError(f"scenario data must be a dict, got {type(data).__name__}")
        reject_unknown_keys(data, {f.name for f in fields(cls)}, "scenario")
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        return cls.from_json(Path(path).read_text())

    # -- execution ---------------------------------------------------------

    def data_signature(self) -> tuple:
        """Hashable key identifying the federation this scenario builds.

        Two scenarios with equal signatures build bit-identical federated
        datasets, which lets :class:`~repro.experiments.suite.Suite` share
        one built dataset across sweep cells.
        """
        return (
            self.dataset,
            json.dumps(self.dataset_kwargs, sort_keys=True),
            self.num_clients,
            self.samples_per_client,
            self.alpha,
            self.num_classes,
            self.image_size,
            self.data_seed,
            self.population,
            json.dumps(self.population_kwargs, sort_keys=True),
        )

    def run(self, hooks=None, prebuilt_data=None):
        """Run this scenario; see :func:`repro.experiments.runner.run_experiment`."""
        from repro.experiments.runner import run_experiment

        return run_experiment(self, hooks=hooks, prebuilt_data=prebuilt_data)


def _jsonify(value):
    """Recursively convert a kwargs value to its JSON-canonical form."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def _local_config_from_dict(data: dict) -> LocalTrainingConfig:
    reject_unknown_keys(
        data, {f.name for f in fields(LocalTrainingConfig)}, "local-training"
    )
    return LocalTrainingConfig(**data)


__all__ = ["Scenario"]
