"""Attack-comparison sweeps (Figs. 1, 8 and 15 of the paper).

* :func:`attack_comparison_sweep` — CollaPois vs DPois / MRepl / DBA across
  Dirichlet α values for a given training algorithm and dataset (Figs. 8/15).
* :func:`baseline_sensitivity_sweep` — DPois / MRepl at two compromised-client
  fractions across α, showing their insensitivity to both (Fig. 1).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def attack_comparison_sweep(
    base_config: ExperimentConfig,
    alphas: list[float],
    attacks: list[str] = ("collapois", "dpois", "mrepl", "dba"),
) -> list[dict]:
    """Benign AC and Attack SR for every (attack, α) pair.

    Returns one row per combination with keys ``attack``, ``alpha``,
    ``benign_accuracy``, ``attack_success_rate`` — the series plotted in
    Figs. 8 and 15.
    """
    rows: list[dict] = []
    for attack in attacks:
        for alpha in alphas:
            config = base_config.with_overrides(attack=attack, alpha=alpha)
            result = run_experiment(config)
            rows.append(
                {
                    "attack": attack,
                    "alpha": alpha,
                    "algorithm": config.algorithm,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
    return rows


def baseline_sensitivity_sweep(
    base_config: ExperimentConfig,
    alphas: list[float],
    fractions: list[float] = (0.05, 0.15),
    attacks: list[str] = ("dpois", "mrepl"),
) -> list[dict]:
    """Fig. 1: baseline attacks barely react to |C| or α.

    Returns one row per (attack, fraction, α) with the resulting Attack SR;
    the paper's point is that the spread across rows is modest for DPois and
    MRepl, which motivates CollaPois.
    """
    rows: list[dict] = []
    for attack in attacks:
        for fraction in fractions:
            for alpha in alphas:
                config = base_config.with_overrides(
                    attack=attack, alpha=alpha, compromised_fraction=fraction
                )
                result = run_experiment(config)
                rows.append(
                    {
                        "attack": attack,
                        "compromised_fraction": fraction,
                        "alpha": alpha,
                        "benign_accuracy": result.benign_accuracy,
                        "attack_success_rate": result.attack_success_rate,
                    }
                )
    return rows
