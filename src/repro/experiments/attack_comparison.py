"""Attack-comparison sweeps (Figs. 1, 8 and 15 of the paper).

* :func:`attack_comparison_sweep` — CollaPois vs DPois / MRepl / DBA across
  Dirichlet α values for a given training algorithm and dataset (Figs. 8/15).
* :func:`baseline_sensitivity_sweep` — DPois / MRepl at two compromised-client
  fractions across α, showing their insensitivity to both (Fig. 1).

Both are thin :class:`~repro.experiments.suite.Suite` grids; the row order
matches the historical nested loops (first axis outermost) and the values
are identical run for run.
"""

from __future__ import annotations

from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite


def attack_comparison_sweep(
    base_config: Scenario,
    alphas: list[float],
    attacks: list[str] = ("collapois", "dpois", "mrepl", "dba"),
) -> list[dict]:
    """Benign AC and Attack SR for every (attack, α) pair.

    Returns one row per combination with keys ``attack``, ``alpha``,
    ``benign_accuracy``, ``attack_success_rate`` — the series plotted in
    Figs. 8 and 15.
    """
    suite = Suite.grid(
        base_config, name="attack_comparison", attack=list(attacks), alpha=list(alphas)
    )
    return suite.rows("attack", "alpha", "algorithm")


def baseline_sensitivity_sweep(
    base_config: Scenario,
    alphas: list[float],
    fractions: list[float] = (0.05, 0.15),
    attacks: list[str] = ("dpois", "mrepl"),
) -> list[dict]:
    """Fig. 1: baseline attacks barely react to |C| or α.

    Returns one row per (attack, fraction, α) with the resulting Attack SR;
    the paper's point is that the spread across rows is modest for DPois and
    MRepl, which motivates CollaPois.
    """
    suite = Suite.grid(
        base_config,
        name="baseline_sensitivity",
        attack=list(attacks),
        compromised_fraction=list(fractions),
        alpha=list(alphas),
    )
    return suite.rows("attack", "compromised_fraction", "alpha")
