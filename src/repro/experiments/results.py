"""Experiment result container and plain-text table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.federated.history import TrainingHistory
from repro.metrics.accuracy import ClientEvaluation


@dataclass
class ExperimentResult:
    """Output of :func:`repro.experiments.runner.run_experiment`."""

    config: object
    evaluation: ClientEvaluation
    history: TrainingHistory
    compromised_ids: list[int] = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    @property
    def benign_accuracy(self) -> float:
        return self.evaluation.mean_benign_accuracy

    @property
    def attack_success_rate(self) -> float:
        return self.evaluation.mean_attack_success_rate

    def summary(self) -> dict[str, float]:
        return {
            "benign_accuracy": self.benign_accuracy,
            "attack_success_rate": self.attack_success_rate,
            "rounds": float(len(self.history)),
            "num_compromised": float(len(self.compromised_ids)),
        }


def format_table(rows: list[dict], columns: list[str] | None = None, floatfmt: str = ".3f") -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Used by the benchmark harness to print the regenerated figure series in a
    form directly comparable with the paper's plots.
    """
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"
