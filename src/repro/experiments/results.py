"""Experiment result container and plain-text table formatting."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.federated.engine.ledger import CommunicationLedger
from repro.federated.history import TrainingHistory
from repro.metrics.accuracy import ClientEvaluation
from repro.registry import reject_unknown_keys


@dataclass
class ExperimentResult:
    """Output of :func:`repro.experiments.runner.run_experiment`.

    Serialises losslessly through :meth:`to_dict`/:meth:`from_dict` (matching
    :class:`~repro.experiments.scenario.Scenario` and
    :class:`~repro.federated.history.TrainingHistory`), except for
    ``extras`` — live objects (dataset, server, attack) that exist only in
    the producing process and reload as an empty dict.  ``ledger`` is the
    run's :class:`~repro.federated.engine.ledger.CommunicationLedger`
    (``None`` for results produced before ledgers existed).  ``telemetry``
    is the serialised :class:`~repro.telemetry.core.RunTelemetry` of a
    ``telemetry=True`` run (``None`` otherwise) — the input of
    ``repro trace``.
    """

    config: object
    evaluation: ClientEvaluation
    history: TrainingHistory
    compromised_ids: list[int] = field(default_factory=list)
    extras: dict = field(default_factory=dict)
    ledger: CommunicationLedger | None = None
    telemetry: dict | None = None

    @property
    def benign_accuracy(self) -> float:
        return self.evaluation.mean_benign_accuracy

    @property
    def attack_success_rate(self) -> float:
        return self.evaluation.mean_attack_success_rate

    def summary(self) -> dict[str, float]:
        return {
            "benign_accuracy": self.benign_accuracy,
            "attack_success_rate": self.attack_success_rate,
            "rounds": float(len(self.history)),
            "num_compromised": float(len(self.compromised_ids)),
        }

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible plain-data form (``extras`` are not serialised)."""
        data = {
            "scenario": self.config.to_dict(),
            "summary": self.summary(),
            "evaluation": self.evaluation.to_dict(),
            "compromised_ids": [int(c) for c in self.compromised_ids],
            "history": self.history.to_dict(),
        }
        if self.ledger is not None:
            data["ledger"] = self.ledger.to_dict()
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``summary`` is derived state and therefore ignored on load (it is
        recomputed from the evaluation/history); unknown keys fail loudly.
        """
        from repro.experiments.scenario import Scenario

        reject_unknown_keys(
            data,
            {
                "scenario", "summary", "evaluation", "compromised_ids",
                "history", "ledger", "telemetry",
            },
            "experiment-result",
        )
        if "scenario" not in data:
            raise ValueError("experiment-result data needs a 'scenario' section")
        ledger = data.get("ledger")
        return cls(
            config=Scenario.from_dict(data["scenario"]),
            evaluation=ClientEvaluation.from_dict(data.get("evaluation", {})),
            history=TrainingHistory.from_dict(data.get("history", {})),
            compromised_ids=[int(c) for c in data.get("compromised_ids", [])],
            ledger=CommunicationLedger.from_dict(ledger) if ledger is not None else None,
            telemetry=data.get("telemetry"),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_json(Path(path).read_text())


def format_table(rows: list[dict], columns: list[str] | None = None, floatfmt: str = ".3f") -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Used by the benchmark harness to print the regenerated figure series in a
    form directly comparable with the paper's plots.  An explicit ``columns``
    list may name keys absent from every row — such columns render as empty
    cells sized to the header (an empty ``columns`` list is also allowed and
    produces an empty table skeleton).
    """
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    # The header always participates in the width so a column missing from
    # every row (or present only with short values) stays aligned.
    widths = [
        max([len(col)] + [len(line[i]) for line in rendered])
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"
