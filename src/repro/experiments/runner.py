"""Generic experiment runner: config → federation → training → evaluation."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.attacks.dba import DBAAttack
from repro.attacks.dpois import DPoisAttack
from repro.attacks.mrepl import MReplAttack
from repro.attacks.triggers import PixelPatchTrigger, TokenTrigger, WarpingTrigger
from repro.core.collapois import CollaPoisAttack
from repro.core.stealth import StealthConfig
from repro.data.federated_data import FederatedDataset, build_federated_dataset
from repro.data.femnist import SyntheticFEMNIST
from repro.data.sentiment import SyntheticSentiment
from repro.defenses.registry import make_defense
from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ExperimentResult
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.algorithms.metafed import MetaFed
from repro.federated.engine.backends import make_backend
from repro.federated.engine.hooks import RoundHook
from repro.federated.server import FederatedServer, ServerConfig
from repro.metrics.accuracy import evaluate_clients
from repro.nn.layers import Flatten
from repro.nn.model import Sequential, make_lenet, make_mlp, make_text_head


def build_dataset(config: ExperimentConfig) -> tuple[FederatedDataset, object]:
    """Build the federation and return it with its generator."""
    if config.dataset == "femnist":
        generator = SyntheticFEMNIST(
            num_classes=config.num_classes,
            image_size=config.image_size,
            seed=config.data_seed,
        )
    else:
        generator = SyntheticSentiment(num_classes=config.num_classes, seed=config.data_seed)
    dataset = build_federated_dataset(
        generator,
        num_clients=config.num_clients,
        samples_per_client=config.samples_per_client,
        alpha=config.alpha,
        seed=config.data_seed,
    )
    return dataset, generator


def build_model_factory(config: ExperimentConfig, generator):
    """Return a zero-argument callable producing fresh, identically-initialised models."""
    seed = config.seed
    if config.dataset == "sentiment":
        embedding_dim = generator.embedding_dim

        def factory():
            return make_text_head(
                embedding_dim=embedding_dim,
                hidden=config.hidden[0] if config.hidden else 64,
                num_classes=config.num_classes,
                seed=seed,
            )

        return factory
    if config.model == "lenet":

        def factory():
            return make_lenet(
                image_size=config.image_size,
                num_classes=config.num_classes,
                seed=seed,
            )

        return factory

    in_features = config.image_size * config.image_size

    def factory():
        mlp = make_mlp(in_features, config.hidden, config.num_classes, seed=seed)
        return Sequential([Flatten(), *mlp.layers])

    return factory


def build_trigger(config: ExperimentConfig, generator):
    """Instantiate the backdoor trigger matching the dataset modality."""
    if config.dataset == "sentiment":
        return TokenTrigger(generator.trigger_embedding(), scale=4.0)
    if config.trigger == "patch":
        return PixelPatchTrigger(config.image_size, patch_size=3)
    return WarpingTrigger(config.image_size, strength=2.0, seed=config.seed + 7)


def select_compromised_clients(
    num_clients: int, fraction: float, seed: int = 0
) -> list[int]:
    """Randomly choose ``round(fraction · N)`` compromised clients (at least 1)."""
    if fraction <= 0.0:
        return []
    rng = np.random.default_rng(seed + 424242)
    count = max(1, int(round(fraction * num_clients)))
    count = min(count, num_clients - 1) if num_clients > 1 else 1
    return sorted(int(c) for c in rng.choice(num_clients, size=count, replace=False))


def build_attack(config: ExperimentConfig):
    """Instantiate the configured attack object (or None)."""
    if config.attack == "none":
        return None
    if config.attack == "collapois":
        return CollaPoisAttack(
            stealth=StealthConfig(
                psi_low=config.psi_low,
                psi_high=config.psi_high,
                clip_bound=config.clip_bound,
            ),
            trojan_epochs=config.trojan_epochs,
        )
    if config.attack == "dpois":
        return DPoisAttack()
    if config.attack == "mrepl":
        return MReplAttack(trojan_epochs=config.trojan_epochs)
    if config.attack == "dba":
        return DBAAttack()
    raise ValueError(f"unknown attack {config.attack!r}")


def build_algorithm(config: ExperimentConfig):
    if config.algorithm == "fedavg":
        return FedAvg()
    if config.algorithm == "feddc":
        return FedDC()
    return MetaFed()


def build_backend(config: ExperimentConfig):
    """Instantiate the configured execution backend."""
    if config.backend_workers is not None:
        return make_backend(config.backend, max_workers=config.backend_workers)
    return make_backend(config.backend)


def run_experiment(
    config: ExperimentConfig,
    hooks: Sequence[RoundHook] | None = None,
) -> ExperimentResult:
    """Run a full experiment: build, train, evaluate at the client level.

    ``hooks`` are extra round hooks registered on the server's pipeline —
    the supported way to instrument a run (the evaluation hook derived from
    ``config.eval_every`` is always registered through the constructor).
    """
    dataset, generator = build_dataset(config)
    model_factory = build_model_factory(config, generator)
    trigger = build_trigger(config, generator)
    algorithm = build_algorithm(config)
    attack = build_attack(config)
    compromised = (
        select_compromised_clients(config.num_clients, config.compromised_fraction, config.seed)
        if attack is not None
        else []
    )
    if attack is not None:
        attack.setup(
            dataset,
            compromised,
            model_factory,
            trigger,
            config.target_class,
            local_config=config.local,
            seed=config.seed,
        )

    eval_model = model_factory()
    compromised_set = set(compromised)
    benign_ids = [c for c in range(dataset.num_clients) if c not in compromised_set]

    server_config = ServerConfig(
        rounds=config.rounds,
        sample_rate=config.sample_rate,
        server_lr=config.server_lr,
        seed=config.seed,
        local=config.local,
        eval_every=config.eval_every,
    )

    eval_fn = None
    if config.eval_every:

        def eval_fn(global_params, round_idx):
            evaluation = evaluate_clients(
                dataset,
                eval_model,
                params_fn=lambda _cid: global_params,
                trigger=trigger,
                target_class=config.target_class,
                client_ids=benign_ids,
                max_test_samples=config.max_test_samples,
            )
            return evaluation.as_dict()

    server = FederatedServer(
        dataset,
        model_factory,
        algorithm,
        server_config,
        aggregator=make_defense(config.defense, **config.defense_kwargs),
        attack=attack,
        compromised_ids=compromised,
        eval_fn=eval_fn,
        backend=build_backend(config),
        hooks=hooks,
    )

    try:
        server.run()
    finally:
        server.close()
    evaluation = evaluate_clients(
        dataset,
        eval_model,
        params_fn=server.personalized_params,
        trigger=trigger,
        target_class=config.target_class,
        client_ids=benign_ids,
        max_test_samples=config.max_test_samples,
    )
    extras = {"dataset": dataset, "server": server, "trigger": trigger, "attack": attack}
    return ExperimentResult(
        config=config,
        evaluation=evaluation,
        history=server.history,
        compromised_ids=compromised,
        extras=extras,
    )
