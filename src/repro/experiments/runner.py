"""Generic experiment runner: scenario → federation → training → evaluation.

Every component is resolved through the unified registries
(:mod:`repro.registry`): the builders below only *wire* scenario fields into
constructor kwargs — which components exist, and which kwargs they accept,
lives with the components themselves.  Adding a new attack/defense/dataset
therefore means registering it, not editing this module.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.stealth import StealthConfig
from repro.data.federated_data import FederatedDataset, build_federated_dataset
from repro.defenses.registry import make_defense
from repro.experiments.results import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.federated.engine.backends import make_backend
from repro.federated.engine.hooks import RoundHook
from repro.federated.engine.ledger import CommunicationLedger, LedgerHook
from repro.federated.server import FederatedServer, ServerConfig
from repro.metrics.accuracy import evaluate_clients
from repro.nn.layers import Flatten
from repro.nn.model import Sequential
from repro.registry import ALGORITHMS, ATTACKS, DATASETS, MODELS, POPULATIONS, TRIGGERS


def build_dataset(config: Scenario) -> tuple[FederatedDataset, object]:
    """Build the federation and return it with its generator.

    Geometry fields (``num_classes``, ``image_size``, ``data_seed``) are
    forwarded to the generator when its constructor accepts them, so new
    registered datasets pick up exactly the fields they understand;
    ``dataset_kwargs`` overrides win.

    With ``config.population`` set, the eager federation is replaced by a
    lazy :class:`~repro.federated.population.ClientPopulation` built over
    the same generator — the scenario's data geometry becomes the
    population's defaults, ``population_kwargs`` (cache size, eval cap)
    override.  The returned object duck-types ``FederatedDataset``.
    """
    accepted = {p.name for p in DATASETS.describe(config.dataset)}
    common = {
        "num_classes": config.num_classes,
        "image_size": config.image_size,
        "seed": config.data_seed,
    }
    kwargs = {k: v for k, v in common.items() if k in accepted}
    kwargs.update(config.dataset_kwargs)
    generator = DATASETS.create(config.dataset, **kwargs)
    if config.population is not None:
        population = POPULATIONS.create(
            (config.population, config.population_kwargs),
            dataset=generator,
            num_clients=config.num_clients,
            samples_per_client=config.samples_per_client,
            alpha=config.alpha,
            seed=config.data_seed,
        )
        return population, generator
    dataset = build_federated_dataset(
        generator,
        num_clients=config.num_clients,
        samples_per_client=config.samples_per_client,
        alpha=config.alpha,
        seed=config.data_seed,
    )
    return dataset, generator


def _is_text_modality(generator) -> bool:
    """Text generators expose pooled-embedding features, not images."""
    return hasattr(generator, "embedding_dim")


def build_model_factory(config: Scenario, generator):
    """Return a zero-argument callable producing fresh, identically-initialised models."""
    seed = config.seed
    if _is_text_modality(generator):
        kwargs = {
            "embedding_dim": generator.embedding_dim,
            "hidden": config.hidden[0] if config.hidden else 64,
            "num_classes": config.num_classes,
            "seed": seed,
        }
        kwargs.update(config.model_kwargs)
        make_text = MODELS.get("text")
        return lambda: make_text(**kwargs)
    if config.model == "lenet":
        kwargs = {
            "image_size": config.image_size,
            "num_classes": config.num_classes,
            "seed": seed,
        }
        kwargs.update(config.model_kwargs)
        make_lenet = MODELS.get("lenet")
        return lambda: make_lenet(**kwargs)
    kwargs = {
        "in_features": config.image_size * config.image_size,
        "hidden": config.hidden,
        "num_classes": config.num_classes,
        "seed": seed,
    }
    kwargs.update(config.model_kwargs)
    make_mlp = MODELS.get(config.model)

    def factory():
        mlp = make_mlp(**kwargs)
        return Sequential([Flatten(), *mlp.layers])

    return factory


def build_trigger(config: Scenario, generator):
    """Instantiate the backdoor trigger matching the dataset modality."""
    if _is_text_modality(generator):
        return TRIGGERS.create(
            "token",
            trigger_embedding=generator.trigger_embedding(),
            scale=4.0,
            **config.trigger_kwargs,
        )
    common = {
        "patch": {"image_size": config.image_size, "patch_size": 3},
        "warping": {
            "image_size": config.image_size,
            "strength": 2.0,
            "seed": config.seed + 7,
        },
    }.get(config.trigger, {"image_size": config.image_size})
    common.update(config.trigger_kwargs)
    return TRIGGERS.create(config.trigger, **common)


def select_compromised_clients(
    num_clients: int, fraction: float, seed: int = 0
) -> list[int]:
    """Randomly choose ``round(fraction · N)`` compromised clients (at least 1)."""
    if fraction <= 0.0:
        return []
    rng = np.random.default_rng(seed + 424242)
    count = max(1, int(round(fraction * num_clients)))
    count = min(count, num_clients - 1) if num_clients > 1 else 1
    return sorted(int(c) for c in rng.choice(num_clients, size=count, replace=False))


def build_attack(config: Scenario):
    """Instantiate the configured attack object (or None).

    Scenario fields provide each attack's conventional kwargs (the stealth
    envelope for CollaPois, ``trojan_epochs`` for the model-level attacks);
    ``attack_kwargs`` overrides and extends them.
    """
    if config.attack == "none":
        return None
    common = {
        "collapois": {
            "stealth": StealthConfig(
                psi_low=config.psi_low,
                psi_high=config.psi_high,
                clip_bound=config.clip_bound,
            ),
            "trojan_epochs": config.trojan_epochs,
        },
        "mrepl": {"trojan_epochs": config.trojan_epochs},
    }.get(config.attack, {})
    common.update(config.attack_kwargs)
    return ATTACKS.create(config.attack, **common)


def build_algorithm(config: Scenario):
    """Instantiate the configured federated-training algorithm."""
    return ALGORITHMS.create(config.algorithm, **config.algorithm_kwargs)


def build_backend(config: Scenario):
    """Instantiate the configured execution backend.

    Backends that execute on separate interpreters (``distributed``) expose
    ``configure_scenario``; they get the scenario itself so their workers
    can rebuild the execution context remotely.
    """
    kwargs = dict(config.backend_kwargs)
    if config.secure_aggregation:
        # Backends with a construction-time secagg check (the distributed
        # coordinator rejecting lossy wire formats) get the flag; in-process
        # backends are driven purely by the server's engine context.
        from repro.registry import BACKENDS

        accepted = {p.name for p in BACKENDS.describe(config.backend)}
        if "secure_aggregation" in accepted:
            kwargs.setdefault("secure_aggregation", True)
    backend = make_backend(
        config.backend, max_workers=config.backend_workers, **kwargs
    )
    configure = getattr(backend, "configure_scenario", None)
    if configure is not None:
        configure(config)
    return backend


def run_experiment(
    config: Scenario,
    hooks: Sequence[RoundHook] | None = None,
    prebuilt_data: tuple[FederatedDataset, object] | None = None,
) -> ExperimentResult:
    """Run a full experiment: build, train, evaluate at the client level.

    ``hooks`` are extra round hooks registered on the server's pipeline —
    the supported way to instrument a run (the evaluation hook derived from
    ``config.eval_every`` is always registered through the constructor).
    ``prebuilt_data`` optionally supplies an already-built
    ``(dataset, generator)`` pair whose construction parameters match the
    scenario — :class:`~repro.experiments.suite.Suite` uses this to share
    one federation across sweep cells; results are identical either way
    because dataset construction is deterministic in ``data_seed``.
    """
    if prebuilt_data is not None:
        dataset, generator = prebuilt_data
    else:
        dataset, generator = build_dataset(config)
    model_factory = build_model_factory(config, generator)
    trigger = build_trigger(config, generator)
    algorithm = build_algorithm(config)
    attack = build_attack(config)
    compromised = (
        select_compromised_clients(config.num_clients, config.compromised_fraction, config.seed)
        if attack is not None
        else []
    )
    if attack is not None:
        attack.setup(
            dataset,
            compromised,
            model_factory,
            trigger,
            config.target_class,
            local_config=config.local,
            seed=config.seed,
        )

    eval_model = model_factory()
    compromised_set = set(compromised)
    # eval_client_ids() is the whole federation on an eager dataset and a
    # deterministic capped subset on a lazy population, keeping the final
    # evaluation O(evaluated clients) at 1e5+ scale.
    benign_ids = [c for c in dataset.eval_client_ids() if c not in compromised_set]

    # The scenario's participation spec wins; the sample_rate field is sugar
    # for the uniform model (the model's min_clients default of 4 matches the
    # historical ServerConfig floor, keeping seeded histories bit-identical).
    participation = (
        (config.participation, config.participation_kwargs)
        if config.participation is not None
        else ("uniform", {"sample_rate": config.sample_rate})
    )
    server_config = ServerConfig(
        rounds=config.rounds,
        participation=participation,
        aggregation_mode=config.aggregation_mode,
        server_lr=config.server_lr,
        seed=config.seed,
        local=config.local,
        eval_every=config.eval_every,
        streaming=config.streaming,
        num_shards=config.num_shards,
        secure_aggregation=config.secure_aggregation,
        telemetry=config.telemetry,
    )

    eval_fn = None
    if config.eval_every:

        def eval_fn(global_params, round_idx):
            evaluation = evaluate_clients(
                dataset,
                eval_model,
                params_fn=lambda _cid: global_params,
                trigger=trigger,
                target_class=config.target_class,
                client_ids=benign_ids,
                max_test_samples=config.max_test_samples,
            )
            return evaluation.as_dict()

    backend = build_backend(config)
    # Every run carries a communication ledger: the LedgerHook accounts the
    # logical client↔server model traffic on any backend, and a backend with
    # a real transport (the distributed coordinator) meters its wire frames
    # into the same ledger.
    ledger = CommunicationLedger()
    backend.ledger = ledger
    ledger_hook = LedgerHook(
        ledger, wire_dtype=getattr(backend, "wire_dtype", "float64")
    )
    server = FederatedServer(
        dataset,
        model_factory,
        algorithm,
        server_config,
        aggregator=make_defense(config.defense, **config.defense_kwargs),
        attack=attack,
        compromised_ids=compromised,
        eval_fn=eval_fn,
        backend=backend,
        hooks=[ledger_hook, *(hooks or ())],
    )

    # Context manager: worker processes and shard pools are released even
    # when a round raises; driver-side helpers stay usable afterwards.
    with server:
        server.run()
    evaluation = evaluate_clients(
        dataset,
        eval_model,
        params_fn=server.personalized_params,
        trigger=trigger,
        target_class=config.target_class,
        client_ids=benign_ids,
        max_test_samples=config.max_test_samples,
    )
    extras = {"dataset": dataset, "server": server, "trigger": trigger, "attack": attack}
    return ExperimentResult(
        config=config,
        evaluation=evaluation,
        history=server.history,
        compromised_ids=compromised,
        extras=extras,
        ledger=ledger,
        telemetry=server.telemetry.to_dict() if server.telemetry is not None else None,
    )

