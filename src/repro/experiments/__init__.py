"""Experiment harness: declarative configs and per-figure runners.

Every figure in the paper's evaluation section has a corresponding function
here that sweeps the relevant parameter (Dirichlet α, compromised fraction,
defense, training algorithm, …) and returns the series the figure plots.
The benchmark suite under ``benchmarks/`` calls these functions and prints
the regenerated rows; ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.experiments.attack_comparison import attack_comparison_sweep, baseline_sensitivity_sweep
from repro.experiments.client_level import client_cluster_analysis, label_similarity_analysis
from repro.experiments.config import ExperimentConfig
from repro.experiments.defense_evaluation import compromised_fraction_sweep, defense_sweep
from repro.experiments.gradient_geometry import gradient_angle_analysis, stealth_angle_analysis
from repro.experiments.longevity import longevity_analysis
from repro.experiments.results import ExperimentResult, format_table
from repro.experiments.runner import (
    build_attack,
    build_dataset,
    build_model_factory,
    run_experiment,
    select_compromised_clients,
)
from repro.experiments.scenario import Scenario
from repro.experiments.suite import CellResult, Suite
from repro.experiments.theory_figs import (
    bound_approximation_error_sweep,
    bound_surface,
    estimation_error_over_rounds,
)

__all__ = [
    "Scenario",
    "Suite",
    "CellResult",
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "run_experiment",
    "build_dataset",
    "build_model_factory",
    "build_attack",
    "select_compromised_clients",
    "attack_comparison_sweep",
    "baseline_sensitivity_sweep",
    "defense_sweep",
    "compromised_fraction_sweep",
    "gradient_angle_analysis",
    "stealth_angle_analysis",
    "bound_approximation_error_sweep",
    "bound_surface",
    "estimation_error_over_rounds",
    "client_cluster_analysis",
    "label_similarity_analysis",
    "longevity_analysis",
]
