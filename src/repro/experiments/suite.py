"""Declarative sweep suites: grids of scenarios run as one unit.

A :class:`Suite` is a base :class:`~repro.experiments.scenario.Scenario`
plus a list of per-cell override dicts — usually produced by
:meth:`Suite.grid`, which expands keyword axes into their Cartesian product
in axis order (first axis outermost, matching a nested ``for`` loop)::

    Suite.grid(base, defense=[("dp", {...}), ("krum", {...})],
               alpha=[0.1, 0.5], seed=range(3))

Axis values may be any value the scenario field accepts — component fields
take specs (``"krum:num_malicious=2"``, ``(name, kwargs)``), so a defense
axis carries its kwargs without a parallel ``defense_kwargs`` axis.

Running a suite adds three things over a hand-rolled loop:

* **shared-dataset reuse** — cells whose data-defining fields agree (same
  :meth:`Scenario.data_signature`) share one built federation; dataset
  construction is deterministic, so results are identical to rebuilding.
* **engine-backend fan-out** — ``run(backend=..., backend_workers=...)``
  points every cell at a parallel client-execution backend, and
  ``cell_workers`` additionally runs whole cells concurrently on threads
  (each cell keeps its own RNG streams, so per-cell results are unchanged;
  the returned list is always in grid order).
* **JSON round-trip** — a suite serialises to ``{"base": ..., "grid": ...}``
  (or explicit ``"cells"``) and back, so sweeps are runnable from the CLI
  (``python -m repro sweep suite.json``) without writing Python.
"""

from __future__ import annotations

import itertools
import json
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.results import ExperimentResult
from repro.experiments.scenario import Scenario
from repro.registry import reject_unknown_keys


@dataclass
class CellResult:
    """Outcome of one suite cell."""

    scenario: Scenario
    overrides: dict
    result: ExperimentResult
    hooks: Sequence = field(default_factory=tuple)


class Suite:
    """A named sweep: one base scenario, many override cells."""

    def __init__(
        self,
        base: Scenario,
        cells: Sequence[dict] | None = None,
        name: str | None = None,
        grid: dict[str, list] | None = None,
    ) -> None:
        if cells is not None and grid is not None:
            raise ValueError("pass either cells or grid, not both")
        self.base = base
        self.name = name
        self._grid = {k: list(v) for k, v in grid.items()} if grid else None
        if self._grid is not None:
            cells = [
                dict(zip(self._grid, combo, strict=True))
                for combo in itertools.product(*self._grid.values())
            ]
        # An explicitly empty cell list (e.g. an empty grid axis, or filter()
        # dropping everything) stays empty; only *omitting* cells means
        # "run the base scenario once".
        self.cells: list[dict] = [{}] if cells is None else [dict(c) for c in cells]

    @classmethod
    def grid(cls, base: Scenario, name: str | None = None, **axes: Iterable) -> "Suite":
        """Cartesian-product suite; axes expand in keyword order."""
        if not axes:
            raise ValueError("grid needs at least one axis")
        return cls(base, name=name, grid={k: list(v) for k, v in axes.items()})

    # -- derived views -----------------------------------------------------

    def scenarios(self) -> list[Scenario]:
        """The resolved scenario of every cell, in grid order."""
        return [self.base.with_overrides(**cell) for cell in self.cells]

    def filter(self, predicate: Callable[[Scenario], bool]) -> "Suite":
        """Keep only cells whose resolved scenario satisfies ``predicate``."""
        kept = [
            cell
            for cell in self.cells
            if predicate(self.base.with_overrides(**cell))
        ]
        return Suite(self.base, cells=kept, name=self.name)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.scenarios())

    # -- execution ---------------------------------------------------------

    def run(
        self,
        backend: str | None = None,
        backend_workers: int | None = None,
        hooks_factory: Callable[[Scenario], Sequence] | None = None,
        cell_workers: int = 1,
        reuse_datasets: bool = True,
    ) -> list[CellResult]:
        """Run every cell and return its results in grid order.

        ``backend``/``backend_workers`` override the client-execution
        backend of every cell; ``hooks_factory`` builds per-cell round hooks
        (returned on the :class:`CellResult` for collection);
        ``cell_workers > 1`` runs cells concurrently on threads.
        """
        from repro.experiments.runner import build_dataset, run_experiment

        if cell_workers <= 0:
            raise ValueError("cell_workers must be positive")
        scenarios = self.scenarios()
        if backend is not None:
            scenarios = [s.with_overrides(backend=backend) for s in scenarios]
        if backend_workers is not None:
            scenarios = [
                s.with_overrides(backend_workers=backend_workers) for s in scenarios
            ]

        datasets: dict[tuple, tuple] = {}
        if reuse_datasets:
            for scenario in scenarios:
                signature = scenario.data_signature()
                if signature not in datasets:
                    datasets[signature] = build_dataset(scenario)

        def run_cell(scenario: Scenario, overrides: dict) -> CellResult:
            hooks = list(hooks_factory(scenario)) if hooks_factory is not None else None
            result = run_experiment(
                scenario,
                hooks=hooks,
                prebuilt_data=datasets.get(scenario.data_signature()),
            )
            return CellResult(
                scenario=scenario,
                overrides=overrides,
                result=result,
                hooks=tuple(hooks or ()),
            )

        jobs = list(zip(scenarios, self.cells, strict=True))
        if cell_workers == 1 or len(jobs) <= 1:
            return [run_cell(scenario, overrides) for scenario, overrides in jobs]
        with ThreadPoolExecutor(
            max_workers=cell_workers, thread_name_prefix="suite-cell"
        ) as pool:
            futures = [pool.submit(run_cell, s, o) for s, o in jobs]
            return [f.result() for f in futures]

    @staticmethod
    def cell_rows(
        cells: Sequence[CellResult],
        *cell_fields: str,
        metrics: Sequence[str] = ("benign_accuracy", "attack_success_rate"),
    ) -> list[dict]:
        """Flatten already-run cells into table rows.

        Each row carries the requested scenario fields followed by the
        requested result metrics — the shape the figure sweeps and
        :func:`repro.experiments.results.format_table` consume.  Callers
        that need the :class:`CellResult` objects as well (e.g. the CLI,
        which also serialises the full per-cell results) run the suite once
        and build rows from the cells.
        """
        return [
            {
                **{name: getattr(cr.scenario, name) for name in cell_fields},
                **{name: getattr(cr.result, name) for name in metrics},
            }
            for cr in cells
        ]

    def rows(
        self,
        *cell_fields: str,
        metrics: Sequence[str] = ("benign_accuracy", "attack_success_rate"),
        **run_kwargs,
    ) -> list[dict]:
        """Run the suite and flatten it into table rows (see :meth:`cell_rows`)."""
        return self.cell_rows(self.run(**run_kwargs), *cell_fields, metrics=metrics)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {"base": self.base.to_dict()}
        if self.name is not None:
            data["name"] = self.name
        if self._grid is not None:
            data["grid"] = {k: list(v) for k, v in self._grid.items()}
        else:
            data["cells"] = [dict(c) for c in self.cells]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Suite":
        reject_unknown_keys(data, {"base", "grid", "cells", "name"}, "suite")
        if "base" not in data:
            raise ValueError("a suite needs a 'base' scenario")
        base = Scenario.from_dict(data["base"])
        return cls(
            base,
            cells=data.get("cells"),
            grid=data.get("grid"),
            name=data.get("name"),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Suite":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Suite":
        return cls.from_json(Path(path).read_text())


__all__ = ["CellResult", "Suite"]
