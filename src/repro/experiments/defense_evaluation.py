"""Defense-evaluation sweeps (Figs. 9, 10, 16–25 of the paper).

* :func:`defense_sweep` — CollaPois against the four headline defenses
  (DP, NormBound, Krum, RLR) plus undefended FedAvg, across α (Figs. 9/16).
* :func:`compromised_fraction_sweep` — reducing the compromised fraction and
  reporting both the population average and the top-k% most affected clients
  (Figs. 10, 17–25).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.client_level import top_k_metrics

DEFAULT_DEFENSES: dict[str, dict] = {
    "mean": {},
    "dp": {"clip_norm": 2.0, "noise_multiplier": 0.002},
    "norm_bound": {"max_norm": 2.0, "noise_std": 0.0},
    "krum": {"num_malicious": 1, "multi": 3},
    "rlr": {"threshold_fraction": 0.6},
}


def defense_sweep(
    base_config: ExperimentConfig,
    alphas: list[float],
    defenses: dict[str, dict] | None = None,
    backend: str | None = None,
) -> list[dict]:
    """Benign AC and Attack SR of CollaPois under each defense at each α.

    ``backend`` optionally overrides the execution backend for every run of
    the sweep (e.g. ``"thread"`` to parallelise client training per round).
    """
    defenses = defenses if defenses is not None else DEFAULT_DEFENSES
    if backend is not None:
        base_config = base_config.with_overrides(backend=backend)
    rows: list[dict] = []
    for name, kwargs in defenses.items():
        if name in {"krum", "rlr"} and base_config.algorithm == "metafed":
            # Krum and RLR are "not applicable for MetaFed" (Fig. 9 caption).
            continue
        for alpha in alphas:
            config = base_config.with_overrides(
                defense=name, defense_kwargs=dict(kwargs), alpha=alpha
            )
            result = run_experiment(config)
            rows.append(
                {
                    "defense": name,
                    "alpha": alpha,
                    "algorithm": config.algorithm,
                    "benign_accuracy": result.benign_accuracy,
                    "attack_success_rate": result.attack_success_rate,
                }
            )
    return rows


def compromised_fraction_sweep(
    base_config: ExperimentConfig,
    fractions: list[float],
    top_k_percents: list[float] = (1.0, 25.0, 50.0, 100.0),
    defense: str = "dp",
    defense_kwargs: dict | None = None,
    backend: str | None = None,
) -> list[dict]:
    """Attack SR at several compromised fractions, overall and for top-k% clients."""
    if backend is not None:
        base_config = base_config.with_overrides(backend=backend)
    rows: list[dict] = []
    for fraction in fractions:
        config = base_config.with_overrides(
            compromised_fraction=fraction,
            defense=defense,
            defense_kwargs=dict(defense_kwargs or DEFAULT_DEFENSES.get(defense, {})),
        )
        result = run_experiment(config)
        for k in top_k_percents:
            metrics = top_k_metrics(result.evaluation, k)
            rows.append(
                {
                    "compromised_fraction": fraction,
                    "defense": defense,
                    "top_k_percent": k,
                    "benign_accuracy": metrics["benign_accuracy"],
                    "attack_success_rate": metrics["attack_success_rate"],
                    "num_clients": metrics["num_clients"],
                }
            )
    return rows
