"""Defense-evaluation sweeps (Figs. 9, 10, 16–25 of the paper).

* :func:`defense_sweep` — CollaPois against the four headline defenses
  (DP, NormBound, Krum, RLR) plus undefended FedAvg, across α (Figs. 9/16).
* :func:`compromised_fraction_sweep` — reducing the compromised fraction and
  reporting both the population average and the top-k% most affected clients
  (Figs. 10, 17–25).

Both are :class:`~repro.experiments.suite.Suite` grids; the defense axis
carries each defense's kwargs as a component spec, and the MetaFed
exclusions of Fig. 9 are a suite ``filter``.
"""

from __future__ import annotations

from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite
from repro.metrics.client_level import top_k_metrics

DEFAULT_DEFENSES: dict[str, dict] = {
    "mean": {},
    "dp": {"clip_norm": 2.0, "noise_multiplier": 0.002},
    "norm_bound": {"max_norm": 2.0, "noise_std": 0.0},
    "krum": {"num_malicious": 1, "multi": 3},
    "rlr": {"threshold_fraction": 0.6},
}

# Krum and RLR are "not applicable for MetaFed" (Fig. 9 caption).
_METAFED_EXCLUDED = {"krum", "rlr"}


def defense_sweep(
    base_config: Scenario,
    alphas: list[float],
    defenses: dict[str, dict] | None = None,
    backend: str | None = None,
) -> list[dict]:
    """Benign AC and Attack SR of CollaPois under each defense at each α.

    ``backend`` optionally overrides the execution backend for every run of
    the sweep (e.g. ``"thread"`` to parallelise client training per round).
    """
    defenses = defenses if defenses is not None else DEFAULT_DEFENSES
    suite = Suite.grid(
        base_config,
        name="defense_evaluation",
        defense=[(name, dict(kwargs)) for name, kwargs in defenses.items()],
        alpha=list(alphas),
    ).filter(
        lambda s: not (s.algorithm == "metafed" and s.defense in _METAFED_EXCLUDED)
    )
    return suite.rows("defense", "alpha", "algorithm", backend=backend)


def compromised_fraction_sweep(
    base_config: Scenario,
    fractions: list[float],
    top_k_percents: list[float] = (1.0, 25.0, 50.0, 100.0),
    defense: str = "dp",
    defense_kwargs: dict | None = None,
    backend: str | None = None,
) -> list[dict]:
    """Attack SR at several compromised fractions, overall and for top-k% clients."""
    base = base_config.with_overrides(
        defense=defense,
        defense_kwargs=dict(defense_kwargs or DEFAULT_DEFENSES.get(defense, {})),
    )
    suite = Suite.grid(
        base, name="compromised_fraction", compromised_fraction=list(fractions)
    )
    rows: list[dict] = []
    for cell in suite.run(backend=backend):
        for k in top_k_percents:
            metrics = top_k_metrics(cell.result.evaluation, k)
            rows.append(
                {
                    "compromised_fraction": cell.scenario.compromised_fraction,
                    "defense": cell.scenario.defense,
                    "top_k_percent": k,
                    "benign_accuracy": metrics["benign_accuracy"],
                    "attack_success_rate": metrics["attack_success_rate"],
                    "num_clients": metrics["num_clients"],
                }
            )
    return rows
