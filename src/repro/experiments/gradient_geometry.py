"""Gradient-geometry experiments (Figs. 3 and 6 of the paper).

These experiments inspect *one* federated round at several Dirichlet α values
and measure the angles among benign updates, among malicious updates, and
between the two groups — the empirical backbone of Theorem 1 and of the
stealthiness argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.stealth import blend_statistics
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_attack,
    build_dataset,
    build_model_factory,
    build_trigger,
    select_compromised_clients,
)
from repro.federated.client import local_train
from repro.metrics.gradients import aggregate_angle_to_group, angle_summary
from repro.nn.serialization import flatten_params


def _collect_round_updates(config: ExperimentConfig, attack_name: str) -> dict:
    """Run one synchronous round and return benign + malicious updates."""
    config = config.with_overrides(attack=attack_name)
    dataset, generator = build_dataset(config)
    model_factory = build_model_factory(config, generator)
    trigger = build_trigger(config, generator)
    compromised = select_compromised_clients(
        config.num_clients, config.compromised_fraction, config.seed
    )
    attack = build_attack(config)
    attack.setup(
        dataset, compromised, model_factory, trigger, config.target_class,
        local_config=config.local, seed=config.seed,
    )
    model = model_factory()
    global_params = flatten_params(model_factory())
    benign_updates = []
    benign_ids = [c for c in range(dataset.num_clients) if c not in set(compromised)]
    for client_id in benign_ids:
        rng = np.random.default_rng(config.seed * 97 + client_id)
        update, _ = local_train(
            model, global_params, dataset.client(client_id).train, config.local, rng
        )
        benign_updates.append(update)
    malicious_updates = []
    for client_id in compromised:
        rng = np.random.default_rng(config.seed * 131 + client_id)
        malicious_updates.append(
            attack.compute_update(client_id, global_params, 0, model, rng)
        )
    return {
        "benign": np.stack(benign_updates),
        "malicious": np.stack(malicious_updates),
        "dataset": dataset,
        "compromised": compromised,
    }


def gradient_angle_analysis(
    base_config: ExperimentConfig,
    alphas: list[float],
    attack: str = "collapois",
    baseline_attack: str = "dpois",
) -> list[dict]:
    """Fig. 3: angle statistics of benign vs malicious updates across α.

    For every α the row reports the mean pairwise angle among benign updates,
    among the given attack's malicious updates, among the baseline attack's
    malicious updates, and the mean angle β between benign updates and the
    aggregated malicious update (the Theorem-1 quantity).
    """
    rows: list[dict] = []
    for alpha in alphas:
        config = base_config.with_overrides(alpha=alpha)
        primary = _collect_round_updates(config, attack)
        baseline = _collect_round_updates(config, baseline_attack)
        beta = aggregate_angle_to_group(primary["benign"], primary["malicious"])
        rows.append(
            {
                "alpha": alpha,
                "benign_angle_mean": angle_summary(primary["benign"])["mean"],
                "collapois_malicious_angle_mean": angle_summary(primary["malicious"])["mean"],
                "dpois_malicious_angle_mean": angle_summary(baseline["malicious"])["mean"],
                "beta_mean": float(np.mean(beta)),
                "beta_std": float(np.std(beta)),
            }
        )
    return rows


def stealth_angle_analysis(
    base_config: ExperimentConfig,
    psi_ranges: list[tuple[float, float]] = ((0.95, 0.99), (0.5, 1.0)),
) -> list[dict]:
    """Fig. 6: how the ψ range blends malicious angles into the benign background."""
    rows: list[dict] = []
    for psi_low, psi_high in psi_ranges:
        config = base_config.with_overrides(psi_low=psi_low, psi_high=psi_high)
        collected = _collect_round_updates(config, "collapois")
        stats = blend_statistics(collected["malicious"], collected["benign"])
        stats["psi_low"] = psi_low
        stats["psi_high"] = psi_high
        rows.append(stats)
    return rows
