"""Backward-compatibility alias for the declarative experiment spec.

The experiment-construction API was redesigned around
:class:`repro.experiments.scenario.Scenario` (registry-validated,
JSON-round-trippable, spec-string aware).  ``ExperimentConfig`` remains as a
thin alias so existing code and serialised references keep working; new code
should import :class:`Scenario` directly.
"""

from __future__ import annotations

from repro.experiments.scenario import Scenario

ExperimentConfig = Scenario

__all__ = ["ExperimentConfig"]
