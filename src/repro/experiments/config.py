"""Declarative experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.backends import available_backends


@dataclass
class ExperimentConfig:
    """Everything needed to run one federated-training experiment.

    Defaults are sized for laptop-scale smoke runs; the benchmark harness
    scales ``num_clients`` / ``rounds`` up and the paper-scale parameters are
    recorded in ``EXPERIMENTS.md``.
    """

    # Data
    dataset: str = "femnist"            # "femnist" | "sentiment"
    num_clients: int = 30
    samples_per_client: int = 40
    alpha: float = 0.5                  # Dirichlet concentration (non-IID level)
    num_classes: int = 10
    image_size: int = 16
    data_seed: int = 0

    # Model
    model: str = "mlp"                  # "mlp" | "lenet" | "text"
    hidden: tuple[int, ...] = (64,)

    # Federated training
    algorithm: str = "fedavg"           # "fedavg" | "feddc" | "metafed"
    rounds: int = 15
    sample_rate: float = 0.3
    server_lr: float = 1.0
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    seed: int = 0
    eval_every: int | None = None
    backend: str = "serial"             # execution backend: "serial" | "thread" | "process"
    backend_workers: int | None = None  # worker cap for parallel backends

    # Attack
    attack: str = "none"                # "none" | "collapois" | "dpois" | "mrepl" | "dba"
    compromised_fraction: float = 0.1
    target_class: int = 0
    trigger: str = "warping"            # "warping" | "patch" | "token"
    psi_low: float = 0.9
    psi_high: float = 1.0
    clip_bound: float | None = None
    trojan_epochs: int = 8

    # Defense
    defense: str = "mean"
    defense_kwargs: dict = field(default_factory=dict)

    # Evaluation
    max_test_samples: int | None = 40

    def __post_init__(self) -> None:
        if self.dataset not in {"femnist", "sentiment"}:
            raise ValueError("dataset must be 'femnist' or 'sentiment'")
        if self.algorithm not in {"fedavg", "feddc", "metafed"}:
            raise ValueError("algorithm must be one of fedavg/feddc/metafed")
        if self.attack not in {"none", "collapois", "dpois", "mrepl", "dba"}:
            raise ValueError("unknown attack")
        if not 0.0 <= self.compromised_fraction < 1.0:
            raise ValueError("compromised_fraction must be in [0, 1)")
        if self.attack != "none" and self.compromised_fraction <= 0.0:
            raise ValueError("an attack requires a positive compromised_fraction")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.backend not in available_backends():
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {available_backends()}"
            )
        if self.backend_workers is not None and self.backend_workers <= 0:
            raise ValueError("backend_workers must be positive")
        if self.backend_workers is not None and self.backend == "serial":
            raise ValueError("backend_workers requires a parallel backend ('thread' or 'process')")
        if self.dataset == "sentiment":
            # The text task is binary sentiment; force the matching geometry.
            self.num_classes = 2
            if self.model not in {"text", "mlp"}:
                self.model = "text"

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Functional update: return a copy with the given fields replaced."""
        return replace(self, **kwargs)
