"""Client-level risk experiments (Figs. 11 and 12 of the paper).

These experiments answer the paper's central question — *which* clients are
infected and *why* — by clustering benign clients on their Eq.-8 scores and
relating each cluster's Attack SR to the cosine similarity between its label
distribution and the attacker's auxiliary data.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.client_level import cluster_clients_by_score, cluster_metrics
from repro.metrics.similarity import cluster_similarity


def client_cluster_analysis(config: ExperimentConfig) -> dict:
    """Fig. 11: per-client Benign AC / Attack SR plus cluster averages."""
    result = run_experiment(config)
    clusters = cluster_clients_by_score(result.evaluation)
    metrics = cluster_metrics(result.evaluation, clusters)
    return {
        "per_client_benign_accuracy": result.evaluation.benign_accuracy,
        "per_client_attack_success_rate": result.evaluation.attack_success_rate,
        "clusters": clusters,
        "cluster_metrics": metrics,
        "result": result,
    }


def label_similarity_analysis(config: ExperimentConfig) -> list[dict]:
    """Fig. 12: cluster-level cosine similarity to Da vs cluster Attack SR.

    The expected shape (which the benchmark asserts) is monotone: clusters
    with higher similarity to the auxiliary data have higher Attack SR.
    """
    analysis = client_cluster_analysis(config)
    result = analysis["result"]
    dataset = result.extras["dataset"]
    benign_ids = result.evaluation.client_ids
    client_counts = np.stack([dataset.client(c).class_counts for c in benign_ids])
    auxiliary_counts = dataset.auxiliary_class_counts(result.compromised_ids)
    similarity = cluster_similarity(client_counts, auxiliary_counts, analysis["clusters"])
    rows: list[dict] = []
    for name, metrics in analysis["cluster_metrics"].items():
        rows.append(
            {
                "cluster": name,
                "cosine_similarity": similarity[name],
                "attack_success_rate": metrics["attack_success_rate"],
                "benign_accuracy": metrics["benign_accuracy"],
                "num_clients": metrics["num_clients"],
            }
        )
    return rows
