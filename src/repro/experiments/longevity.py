"""Longevity / stability experiment (Fig. 13 of the paper).

Tracks Benign AC and Attack SR round by round for CollaPois and MRepl.  The
paper's observation: MRepl causes an abrupt shift when its replacement round
fires and then decays, whereas CollaPois rises steadily and persists.

The sweep is a one-axis :class:`~repro.experiments.suite.Suite`; the
per-round series is collected through the server's typed hook pipeline (a
:class:`RoundSeriesHook` built per cell by the suite's ``hooks_factory``)
rather than by scraping the history afterwards.
"""

from __future__ import annotations

from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite
from repro.federated.engine.hooks import RoundHook


class RoundSeriesHook(RoundHook):
    """Collects the per-round evaluation series as it is produced.

    Runs after the server's :class:`~repro.federated.engine.hooks.EvaluationHook`
    (constructor hooks are registered first), so the record already carries
    the round's metrics when this hook sees it.
    """

    def __init__(self) -> None:
        self.rows: list[dict] = []

    def on_round_end(self, server, plan, record) -> None:
        if record.benign_accuracy is None:
            return
        self.rows.append(
            {
                "round": record.round_idx,
                "benign_accuracy": record.benign_accuracy,
                "attack_success_rate": record.attack_success_rate,
            }
        )


def longevity_analysis(
    base_config: Scenario,
    attacks: list[str] = ("collapois", "mrepl"),
    eval_every: int = 1,
    backend: str | None = None,
) -> dict[str, list[dict]]:
    """Per-round Benign AC / Attack SR series for each attack."""
    suite = Suite.grid(
        base_config.with_overrides(eval_every=eval_every),
        name="longevity",
        attack=list(attacks),
    )
    results = suite.run(backend=backend, hooks_factory=lambda _s: [RoundSeriesHook()])
    return {cell.scenario.attack: cell.hooks[0].rows for cell in results}
