"""Longevity / stability experiment (Fig. 13 of the paper).

Tracks Benign AC and Attack SR round by round for CollaPois and MRepl.  The
paper's observation: MRepl causes an abrupt shift when its replacement round
fires and then decays, whereas CollaPois rises steadily and persists.

The per-round series is collected through the server's typed hook pipeline
(a :class:`RoundSeriesHook` registered on top of the evaluation hook) rather
than by scraping the history afterwards.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.federated.engine.hooks import RoundHook


class RoundSeriesHook(RoundHook):
    """Collects the per-round evaluation series as it is produced.

    Runs after the server's :class:`~repro.federated.engine.hooks.EvaluationHook`
    (constructor hooks are registered first), so the record already carries
    the round's metrics when this hook sees it.
    """

    def __init__(self) -> None:
        self.rows: list[dict] = []

    def on_round_end(self, server, plan, record) -> None:
        if record.benign_accuracy is None:
            return
        self.rows.append(
            {
                "round": record.round_idx,
                "benign_accuracy": record.benign_accuracy,
                "attack_success_rate": record.attack_success_rate,
            }
        )


def longevity_analysis(
    base_config: ExperimentConfig,
    attacks: list[str] = ("collapois", "mrepl"),
    eval_every: int = 1,
    backend: str | None = None,
) -> dict[str, list[dict]]:
    """Per-round Benign AC / Attack SR series for each attack."""
    if backend is not None:
        base_config = base_config.with_overrides(backend=backend)
    series: dict[str, list[dict]] = {}
    for attack in attacks:
        config = base_config.with_overrides(attack=attack, eval_every=eval_every)
        collector = RoundSeriesHook()
        run_experiment(config, hooks=[collector])
        series[attack] = collector.rows
    return series
