"""Longevity / stability experiment (Fig. 13 of the paper).

Tracks Benign AC and Attack SR round by round for CollaPois and MRepl.  The
paper's observation: MRepl causes an abrupt shift when its replacement round
fires and then decays, whereas CollaPois rises steadily and persists.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def longevity_analysis(
    base_config: ExperimentConfig,
    attacks: list[str] = ("collapois", "mrepl"),
    eval_every: int = 1,
) -> dict[str, list[dict]]:
    """Per-round Benign AC / Attack SR series for each attack."""
    series: dict[str, list[dict]] = {}
    for attack in attacks:
        config = base_config.with_overrides(attack=attack, eval_every=eval_every)
        result = run_experiment(config)
        rows = []
        for record in result.history.records:
            if record.benign_accuracy is None:
                continue
            rows.append(
                {
                    "round": record.round_idx,
                    "benign_accuracy": record.benign_accuracy,
                    "attack_success_rate": record.attack_success_rate,
                }
            )
        series[attack] = rows
    return series
