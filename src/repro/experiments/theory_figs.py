"""Theory-driven figures (Figs. 4, 5 and 7 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.core.theory import (
    approximate_lower_bound,
    compromised_fraction_surface,
    estimation_error_bounds,
    expected_angle_statistics,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.gradient_geometry import _collect_round_updates
from repro.experiments.runner import run_experiment
from repro.metrics.gradients import aggregate_angle_to_group


def bound_approximation_error_sweep(
    base_config: ExperimentConfig,
    alphas: list[float],
) -> list[dict]:
    """Fig. 4: relative approximation error of the Theorem-1 bound vs α.

    The angles β_i are measured from one real federated round per α; the
    theorem's approximation replaces their empirical second moment by the
    Gaussian-model expectation.
    """
    rows: list[dict] = []
    for alpha in alphas:
        config = base_config.with_overrides(alpha=alpha)
        collected = _collect_round_updates(config, "collapois")
        beta = aggregate_angle_to_group(collected["benign"], collected["malicious"])
        # The attacker only observes a proxy sample of the benign angle
        # distribution (derived from the compromised clients' own data); the
        # approximation error of Theorem 1 is the gap between the bound
        # computed from that finite sample and the bound computed from the
        # full benign population.
        rng = np.random.default_rng(config.seed + int(alpha * 1000))
        half = max(2, beta.size // 2)
        attacker_view = rng.choice(beta, size=half, replace=False)
        report = approximate_lower_bound(
            attacker_view, num_clients=config.num_clients,
            psi_low=config.psi_low, psi_high=config.psi_high,
        )
        exact = approximate_lower_bound(
            beta, num_clients=config.num_clients,
            psi_low=config.psi_low, psi_high=config.psi_high,
        )["exact_bound"]
        if exact > 0:
            report["relative_error"] = abs(report["approximate_bound"] - exact) / exact
        report["exact_bound"] = exact
        report["alpha"] = alpha
        rows.append(report)
    return rows


def bound_surface(
    mu_range: tuple[float, float] = (0.0, 1.4),
    sigma_range: tuple[float, float] = (0.0, 0.8),
    resolution: int = 15,
    psi_low: float = 0.9,
    psi_high: float = 1.0,
) -> dict:
    """Fig. 5: the |C|/|N| lower-bound surface over the (µ_α, σ) grid."""
    mu_values = np.linspace(mu_range[0], mu_range[1], resolution)
    sigma_values = np.linspace(sigma_range[0], sigma_range[1], resolution)
    surface = compromised_fraction_surface(mu_values, sigma_values, psi_low, psi_high)
    return {"mu": mu_values, "sigma": sigma_values, "surface": surface}


def alpha_to_bound(alphas: list[float], num_clients: int = 1000,
                   psi_low: float = 0.9, psi_high: float = 1.0) -> list[dict]:
    """Analytic companion: Theorem-1 bound as a function of α directly."""
    from repro.core.theory import min_compromised_clients

    rows = []
    for alpha in alphas:
        mu, sigma = expected_angle_statistics(alpha)
        bound = min_compromised_clients(mu, sigma, num_clients, psi_low, psi_high)
        rows.append({"alpha": alpha, "mu_alpha": mu, "sigma": sigma,
                     "min_compromised": bound, "fraction": bound / num_clients})
    return rows


def estimation_error_over_rounds(
    base_config: ExperimentConfig,
    checkpoints: list[int] = (2, 5, 10, 15),
    precision: float = 1.0,
) -> list[dict]:
    """Fig. 7: the server's estimation error of X as training progresses.

    Runs a single CollaPois experiment and, at each checkpoint round, computes
    the Theorem-3 lower/upper bounds and the realised error of the naive
    estimator (mean of the suspected clients' models).
    """
    config = base_config.with_overrides(attack="collapois", rounds=max(checkpoints))
    rows: list[dict] = []
    result = None
    # Re-run progressively so every checkpoint reflects the state at that round.
    for rounds in sorted(checkpoints):
        config_r = config.with_overrides(rounds=rounds)
        result = run_experiment(config_r)
        attack = result.extras["attack"]
        server = result.extras["server"]
        dataset = result.extras["dataset"]
        global_params = server.global_params
        malicious_updates = np.stack(
            [
                attack.compute_update(c, global_params, rounds, server._worker_model,
                                      np.random.default_rng(c))
                for c in result.compromised_ids
            ]
        )
        # The server's candidate "client models" are global + last benign updates.
        client_params = np.stack(
            [server.personalized_params(c) for c in range(min(dataset.num_clients, 10))]
        )
        bounds = estimation_error_bounds(
            malicious_updates,
            client_params,
            attack.trojan_params,
            precision=precision,
            num_compromised=len(result.compromised_ids),
            psi_high=config.psi_high,
        )
        bounds["round"] = rounds
        bounds["distance_to_trojan"] = attack.distance_to_trojan(global_params)
        rows.append(bounds)
    return rows
