"""Unified component registries: one generic ``Registry`` for every family.

Every pluggable component family in the library — datasets, models,
federated-training algorithms, attacks, triggers, aggregation defenses and
execution backends — registers its members in a family :class:`Registry`.
The pattern generalises the original defense registry: components register
themselves with a decorator, callers build them from *specs*, and the CLI
and the :class:`~repro.experiments.scenario.Scenario` layer introspect the
registered constructors for validation and ``--help``-style listings.

A **spec** names a component together with optional constructor kwargs and
comes in three interchangeable forms::

    "krum"                                  # bare name
    "krum:num_malicious=2,multi=3"          # name:kwargs spec string
    ("krum", {"num_malicious": 2})          # (name, kwargs) pair
    {"name": "krum", "num_malicious": 2}    # dict with a "name" key

Spec-string values are parsed as Python/JSON literals (``3``, ``0.5``,
``true``/``True``, ``none``/``null``, quoted strings) and fall back to raw
strings, so ``"norm_bound:max_norm=2.0"`` works from a shell as well as from
JSON.

Registries are *lazy*: each family knows which modules define its members
(``load_from``) and imports them on first lookup, so ``repro.registry`` can
be imported from anywhere without dragging the whole library in — and
without import-order sensitivity for the decorator registrations.

This module depends only on the standard library; component modules import
*it*, never the other way around.
"""

from __future__ import annotations

import ast
import difflib
import importlib
import inspect
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from typing import Any, ClassVar


@dataclass(frozen=True)
class ParamSpec:
    """Introspected metadata of one constructor parameter."""

    name: str
    required: bool
    default: Any = None
    annotation: str | None = None

    def __str__(self) -> str:
        if self.required:
            return f"{self.name} (required)"
        return f"{self.name}={self.default!r}"


def parse_literal(text: str) -> Any:
    """Parse one spec-string value: Python/JSON literal, else the raw string."""
    lowered = text.strip()
    aliases = {"true": True, "false": False, "null": None, "none": None}
    if lowered.lower() in aliases:
        return aliases[lowered.lower()]
    try:
        return ast.literal_eval(lowered)
    except (ValueError, SyntaxError):
        return lowered


def _split_spec_args(args: str) -> list[str]:
    """Split ``k=v,k2=v2`` on top-level commas only.

    Commas inside brackets or quotes belong to a compound literal value
    (``hidden=(64,32)``), not to the argument separator.
    """
    parts: list[str] = []
    buf: list[str] = []
    depth = 0
    quote: str | None = None
    for ch in args:
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            buf.append(ch)
        elif ch in "([{":
            depth += 1
            buf.append(ch)
        elif ch in ")]}":
            depth -= 1
            buf.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return parts


def parse_spec(spec: Any) -> tuple[str, dict[str, Any]]:
    """Normalise any accepted spec form into a ``(name, kwargs)`` pair."""
    if isinstance(spec, str):
        name, sep, args = spec.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"component spec {spec!r} has an empty name")
        kwargs: dict[str, Any] = {}
        if sep and args.strip():
            for item in _split_spec_args(args):
                key, eq, value = item.partition("=")
                if not eq or not key.strip():
                    raise ValueError(
                        f"malformed spec argument {item!r} in {spec!r}; "
                        "expected key=value"
                    )
                kwargs[key.strip()] = parse_literal(value)
        return name, kwargs
    if isinstance(spec, (tuple, list)):
        if len(spec) == 1:
            return parse_spec(spec[0])
        if len(spec) == 2 and isinstance(spec[0], str) and isinstance(spec[1], dict):
            return spec[0], dict(spec[1])
        raise ValueError(f"component spec {spec!r} must be (name, kwargs)")
    if isinstance(spec, dict):
        if "name" not in spec:
            raise ValueError(f"component spec dict {spec!r} needs a 'name' key")
        kwargs = {k: v for k, v in spec.items() if k != "name"}
        # Allow the nested form {"name": ..., "kwargs": {...}} too.
        nested = kwargs.pop("kwargs", None)
        if nested is not None:
            if not isinstance(nested, dict):
                raise ValueError(f"'kwargs' of spec {spec!r} must be a dict")
            kwargs.update(nested)
        return str(spec["name"]), kwargs
    raise TypeError(f"unsupported component spec type {type(spec).__name__!r}")


def suggest(name: str, candidates: list[str]) -> str:
    """Did-you-mean hint (`` (did you mean 'x'?)`` or ``""``) for error text."""
    matches = difflib.get_close_matches(name, candidates, n=2, cutoff=0.6)
    return f" (did you mean {' or '.join(repr(m) for m in matches)}?)" if matches else ""


def reject_unknown_keys(data: dict, known: Iterable[str], what: str) -> None:
    """Raise ``ValueError`` with did-you-mean hints for keys outside ``known``.

    Shared by every ``from_dict`` deserialiser (scenarios, suites, local
    training configs, round records) so unknown-key errors read the same
    everywhere.
    """
    known = sorted(known)
    unknown = sorted(set(data) - set(known))
    if unknown:
        hints = [f"{key}{suggest(key, known)}" for key in unknown]
        raise ValueError(
            f"unknown {what} key(s): {', '.join(hints)}; "
            f"known keys: {', '.join(known)}"
        )


class Registry:
    """A named family of constructable components.

    Members are registered with the :meth:`register` decorator and built by
    name or spec with :meth:`create`.  ``load_from`` lists the modules whose
    import populates the family; they are imported lazily on first lookup.
    """

    _families: ClassVar[dict[str, "Registry"]] = {}

    def __init__(self, family: str, load_from: tuple[str, ...] = ()) -> None:
        self.family = family
        self._entries: dict[str, Callable[..., Any]] = {}
        self._load_from = tuple(load_from)
        self._loaded = not load_from
        self._loading = False
        Registry._families[family] = self

    # -- family lookup -----------------------------------------------------

    @classmethod
    def families(cls) -> list[str]:
        """Names of every component family."""
        return sorted(cls._families)

    @classmethod
    def family(cls, name: str) -> "Registry":
        """The registry of one family (``'defense'``, ``'attack'``, …)."""
        # Accept plural CLI spellings ("defenses") as a convenience.
        candidates = {name, name.rstrip("s"), name + "s"}
        for candidate in candidates:
            if candidate in cls._families:
                return cls._families[candidate]
        raise ValueError(
            f"unknown component family {name!r}; available: "
            f"{', '.join(cls.families())}{suggest(name, cls.families())}"
        )

    # -- registration ------------------------------------------------------

    def register(self, name: str, *, overwrite: bool = False):
        """Class/function decorator registering the target under ``name``."""

        def decorator(target: Callable[..., Any]) -> Callable[..., Any]:
            if not overwrite and name in self._entries:
                raise ValueError(
                    f"{self.family} {name!r} is already registered "
                    f"({self._entries[name]!r})"
                )
            self._entries[name] = target
            return target

        return decorator

    def _ensure_loaded(self) -> None:
        # _loaded flips only after every module imported: a failed component
        # import must surface again on the next lookup instead of leaving the
        # family silently half-populated.  _loading guards re-entrancy while
        # the imports themselves run.
        if self._loaded or self._loading:
            return
        self._loading = True
        try:
            for module in self._load_from:
                importlib.import_module(module)
            self._loaded = True
        finally:
            self._loading = False

    # -- lookup ------------------------------------------------------------

    def names(self) -> list[str]:
        """Sorted names of every registered member."""
        self._ensure_loaded()
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def get(self, name: str) -> Callable[..., Any]:
        """The registered class/factory, with a did-you-mean error message."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.family} {name!r}; available: "
                f"{', '.join(self.names())}{suggest(name, self.names())}"
            ) from None

    def validate(self, name: str) -> str:
        """Check that ``name`` is registered and return it (for validators)."""
        self.get(name)
        return name

    # -- construction ------------------------------------------------------

    def create(self, spec: Any, /, **common_kwargs: Any) -> Any:
        """Build a component from a spec.

        ``common_kwargs`` are defaults that the spec's own kwargs override —
        callers use them for context-derived arguments (e.g. the experiment
        runner wiring ``trojan_epochs`` from the scenario while a spec string
        may still override it).
        """
        name, kwargs = parse_spec(spec)
        target = self.get(name)
        merged = {**common_kwargs, **kwargs}
        self._check_kwargs(name, target, merged)
        return target(**merged)

    def _check_kwargs(self, name: str, target: Callable, kwargs: dict) -> None:
        try:
            signature = inspect.signature(target)
        except (TypeError, ValueError):  # builtins without introspectable sigs
            return
        try:
            signature.bind_partial(**kwargs)
        except TypeError:
            accepted = [p.name for p in self._describable_params(signature)]
            unknown = sorted(set(kwargs) - set(accepted))
            raise ValueError(
                f"{self.family} {name!r} got unexpected argument(s) "
                f"{', '.join(repr(u) for u in unknown) or repr(kwargs)}; "
                f"accepted: {', '.join(accepted) or '(none)'}"
            ) from None

    # -- introspection -----------------------------------------------------

    @staticmethod
    def _describable_params(signature: inspect.Signature) -> list[inspect.Parameter]:
        return [
            p
            for p in signature.parameters.values()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ]

    def describe(self, name: str) -> list[ParamSpec]:
        """Constructor parameter metadata of one registered member."""
        target = self.get(name)
        try:
            signature = inspect.signature(target)
        except (TypeError, ValueError):
            return []
        specs = []
        for param in self._describable_params(signature):
            required = param.default is inspect.Parameter.empty
            annotation = (
                None
                if param.annotation is inspect.Parameter.empty
                else str(param.annotation)
            )
            specs.append(
                ParamSpec(
                    name=param.name,
                    required=required,
                    default=None if required else param.default,
                    annotation=annotation,
                )
            )
        return specs


# ---------------------------------------------------------------------------
# The component families.  ``load_from`` lists the modules whose import
# registers the family's members; they are imported lazily on first lookup.
# ---------------------------------------------------------------------------

DATASETS = Registry(
    "dataset",
    load_from=("repro.data.femnist", "repro.data.sentiment"),
)

MODELS = Registry(
    "model",
    load_from=("repro.nn.model",),
)

ALGORITHMS = Registry(
    "algorithm",
    load_from=(
        "repro.federated.algorithms.fedavg",
        "repro.federated.algorithms.feddc",
        "repro.federated.algorithms.metafed",
    ),
)

ATTACKS = Registry(
    "attack",
    load_from=(
        "repro.core.collapois",
        "repro.attacks.dpois",
        "repro.attacks.mrepl",
        "repro.attacks.dba",
    ),
)

TRIGGERS = Registry(
    "trigger",
    load_from=("repro.attacks.triggers",),
)

DEFENSES = Registry(
    "defense",
    load_from=(
        "repro.defenses.base",
        "repro.defenses.crfl",
        "repro.defenses.detector",
        "repro.defenses.dp",
        "repro.defenses.flare",
        "repro.defenses.krum",
        "repro.defenses.median",
        "repro.defenses.norm_bound",
        "repro.defenses.rlr",
        "repro.defenses.signsgd",
        "repro.defenses.trimmed_mean",
    ),
)

BACKENDS = Registry(
    "backend",
    load_from=(
        "repro.federated.engine.backends",
        "repro.federated.engine.batched",
        "repro.federated.engine.distributed.coordinator",
    ),
)

POPULATIONS = Registry(
    "population",
    load_from=("repro.federated.population.base",),
)

PARTICIPATION = Registry(
    "participation",
    load_from=("repro.federated.population.participation",),
)

CHECKERS = Registry(
    "checker",
    load_from=(
        "repro.lint.checkers.rng_discipline",
        "repro.lint.checkers.shared_state",
        "repro.lint.checkers.fold_determinism",
        "repro.lint.checkers.wire_protocol",
        "repro.lint.checkers.registry_completeness",
    ),
)

__all__ = [
    "ParamSpec",
    "Registry",
    "parse_spec",
    "parse_literal",
    "suggest",
    "reject_unknown_keys",
    "DATASETS",
    "MODELS",
    "ALGORITHMS",
    "ATTACKS",
    "TRIGGERS",
    "DEFENSES",
    "BACKENDS",
    "POPULATIONS",
    "PARTICIPATION",
    "CHECKERS",
]
