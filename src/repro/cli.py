"""``python -m repro`` — run scenarios and sweeps without writing Python.

Seven subcommands::

    python -m repro list [family]        # registered components + params
    python -m repro run scenario.json    # run one scenario
    python -m repro sweep suite.json     # run a sweep suite
    python -m repro ledger results.json  # communication-ledger summary table
    python -m repro trace results.json   # telemetry phase-breakdown report
    python -m repro worker --listen :0   # standalone distributed worker
    python -m repro lint [paths]         # project-specific static analysis

``run`` accepts ``--set key=value`` overrides (values parsed as literals,
component fields accept spec strings like ``--set defense=krum:multi=3``),
``--streaming auto|on|off`` to pick the update-aggregation path,
``--shards N`` to fold shard-capable defenses across a worker pool,
``--telemetry on|off`` to record out-of-band span/metric telemetry, and
``--out results.json`` to write the full
:class:`~repro.experiments.results.ExperimentResult` as JSON — the file
reloads losslessly via ``ExperimentResult.load()`` and re-running the
embedded scenario reproduces the history bit-identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.results import format_table
from repro.experiments.scenario import Scenario
from repro.experiments.suite import Suite
from repro.registry import BACKENDS, DEFENSES, Registry, parse_literal


def _add_run_overrides(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a scenario field (repeatable); values are parsed as "
        "literals, component fields accept spec strings",
    )
    parser.add_argument(
        "--backend", help="override the client-execution backend for every run"
    )
    parser.add_argument(
        "--workers", type=int, help="worker cap for parallel backends"
    )
    parser.add_argument(
        "--streaming",
        choices=("auto", "on", "off"),
        help="fold client updates into the aggregator online (default auto)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        help="split the streaming fold across this many parameter shards "
        "(shard-capable defenses only; others keep the single fold)",
    )
    parser.add_argument(
        "--secagg",
        action="store_true",
        help="run under pairwise-masked secure aggregation (server-blind "
        "defenses only; histories stay bit-identical to plaintext)",
    )
    parser.add_argument(
        "--telemetry",
        choices=("on", "off"),
        help="record out-of-band run telemetry — span traces, engine "
        "metrics, worker-side profiling (default off; histories are "
        "bit-identical either way)",
    )
    parser.add_argument("--out", type=Path, help="write results as JSON")


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        key, eq, value = pair.partition("=")
        if not eq or not key:
            raise SystemExit(f"error: malformed --set {pair!r}; expected key=value")
        overrides[key.strip()] = parse_literal(value)
    return overrides


def _cmd_list(args: argparse.Namespace) -> int:
    if args.family is None:
        rows = [
            {
                "family": family,
                "components": ", ".join(Registry.family(family).names()),
            }
            for family in Registry.families()
        ]
        print(format_table(rows))
        return 0
    registry = Registry.family(args.family)
    rows = []
    for name in registry.names():
        params = ", ".join(str(p) for p in registry.describe(name))
        row = {registry.family: name, "params": params or "(none)"}
        if registry is DEFENSES:
            # Aggregation capabilities: which update path(s) the defense can
            # take (streaming O(param_dim) fold, sharded worker-pool fold),
            # and whether it runs under secure aggregation (server-blind =
            # its math never inspects an individual client update).
            component = registry.get(name)
            caps = [
                flag
                for flag in ("streaming", "shardable")
                if getattr(component, flag, False)
            ] or ["buffered"]
            if not getattr(component, "requires_plaintext_updates", False):
                caps.append("server-blind")
            row["caps"] = ", ".join(caps)
        elif registry is BACKENDS:
            # Execution capabilities: does iter_updates stream (vs per-round
            # barrier), does client work run in separate processes, can the
            # workers live on other hosts.
            component = registry.get(name)
            caps = ["streaming" if getattr(component, "streaming_updates", False) else "barrier"]
            if getattr(component, "process_isolation", False):
                caps.append("processes")
            if getattr(component, "distributed", False):
                caps.append("multi-host")
            if getattr(component, "batched_execution", False):
                caps.append("batched")
            row["caps"] = ", ".join(caps)
        rows.append(row)
    print(format_table(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = Scenario.load(args.scenario)
    overrides = _parse_overrides(args.overrides)
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        overrides["backend_workers"] = args.workers
    if args.streaming is not None:
        overrides["streaming"] = args.streaming
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    if args.secagg:
        overrides["secure_aggregation"] = True
    if args.telemetry is not None:
        overrides["telemetry"] = args.telemetry == "on"
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    label = scenario.name or Path(args.scenario).stem
    print(f"Running scenario {label!r} ({scenario.rounds} rounds, "
          f"{scenario.num_clients} clients, backend={scenario.backend}) ...")
    result = scenario.run()
    print(format_table([{"scenario": label, **result.summary()}]))
    if args.out is not None:
        # The full ExperimentResult round-trip: the written file reloads
        # losslessly via ExperimentResult.load()/from_dict().
        result.save(args.out)
        print(f"Wrote {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    suite = Suite.load(args.suite)
    label = suite.name or Path(args.suite).stem
    print(f"Running suite {label!r}: {len(suite)} cells ...")
    cell_fields = sorted({key for cell in suite.cells for key in cell})
    cells = suite.run(
        backend=args.backend,
        backend_workers=args.workers,
        cell_workers=args.cell_workers,
    )
    rows = Suite.cell_rows(cells, *cell_fields)
    print(format_table(rows))
    if args.out is not None:
        # ``results`` carries the full per-cell ExperimentResult payloads in
        # grid order; each reloads losslessly via ExperimentResult.from_dict.
        payload = {
            "suite": suite.to_dict(),
            "rows": rows,
            "results": [cell.result.to_dict() for cell in cells],
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"Wrote {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the lint stack is pure stdlib but irrelevant to runs.
    from repro.lint.base import Project
    from repro.lint.baseline import DEFAULT_BASELINE, load_baseline, write_baseline
    from repro.lint.engine import (
        lint_project,
        render_json,
        render_text,
        resolve_checkers,
        run_lint,
    )

    if args.list:
        rows = []
        for checker in resolve_checkers():
            for rule, text in sorted(checker.rules.items()):
                rows.append({"checker": checker.name, "rule": rule, "what": text})
        print(format_table(rows))
        return 0
    paths = args.paths or [Path(__file__).resolve().parent]
    if args.write_baseline:
        # Regenerate from the *unsuppressed* findings, so stale baseline
        # entries drop out; reasons already recorded are carried over.
        target = args.baseline if args.baseline is not None else DEFAULT_BASELINE
        project = Project.collect(paths)
        checkers = resolve_checkers(args.select or None, args.ignore or None)
        report = lint_project(project, checkers, baseline=None)
        reasons = load_baseline(target) if Path(target).exists() else {}
        count = write_baseline(target, report.findings, reasons)
        print(f"Wrote {count} suppression(s) to {target}")
        return 0
    report = run_lint(
        paths,
        select=args.select or None,
        ignore=args.ignore or None,
        baseline_path=args.baseline,
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def _cmd_ledger(args: argparse.Namespace) -> int:
    """Summarise the communication ledger of a saved results JSON."""
    from repro.federated.engine.ledger import CommunicationLedger

    data = json.loads(Path(args.results).read_text())
    # Accept a bare ledger dict too (e.g. extracted by other tooling).
    ledger_data = data.get("ledger") if "ledger" in data else data
    if not isinstance(ledger_data, dict) or "entries" not in ledger_data:
        print(
            f"error: {args.results} carries no communication ledger "
            "(re-run with a version that records one)",
            file=sys.stderr,
        )
        return 2
    ledger = CommunicationLedger.from_dict(ledger_data)
    rows = [
        {
            "round": row["round"],
            "channel": row["channel"],
            "dir": row["direction"],
            "links": row["links"],
            "frames": row["frames"],
            "header_B": row["header_bytes"],
            "payload_B": row["payload_bytes"],
        }
        for row in ledger.round_rows()
    ]
    print(format_table(rows))
    totals = ledger.totals()
    dtypes = ", ".join(f"{ch}={dt}" for ch, dt in sorted(ledger.dtypes.items()))
    print(
        f"total: {totals['frames']} frames, {totals['bytes']} bytes "
        f"({totals['header_bytes']} header + {totals['payload_bytes']} payload)"
        + (f"; wire dtypes: {dtypes}" if dtypes else "")
    )
    # Known channels a ledger may carry; a results file without one (e.g. a
    # serial run has no 'wire' frames) renders fine — note the absence so
    # the reader doesn't mistake it for zero traffic.
    recorded = {row["channel"] for row in rows}
    notes = {
        "model": "no logical client-server traffic was metered",
        "wire": "recorded only by backend='distributed'",
    }
    for channel, why in notes.items():
        if channel not in recorded:
            print(f"(channel '{channel}' absent — {why})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Render the telemetry trace of a saved results JSON."""
    from repro.telemetry import render_trace

    data = json.loads(Path(args.results).read_text())
    # Accept a bare RunTelemetry dict too (e.g. extracted by other tooling).
    telemetry = data.get("telemetry") if "telemetry" in data else data
    if not isinstance(telemetry, dict) or "spans" not in telemetry:
        print(
            f"error: {args.results} carries no telemetry "
            "(re-run with --telemetry on)",
            file=sys.stderr,
        )
        return 2
    print(render_trace(telemetry, top=args.top))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    # Imported lazily: the worker pulls in the whole experiments stack.
    from repro.federated.engine.distributed.worker import run_worker

    return run_worker(listen=args.listen, once=args.once)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run CollaPois reproduction scenarios from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered components of a family"
    )
    list_parser.add_argument(
        "family",
        nargs="?",
        help="component family (defenses, attacks, datasets, models, "
        "algorithms, triggers, backends, checkers); omit to list families",
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one scenario JSON file")
    run_parser.add_argument("scenario", type=Path, help="path to a scenario JSON")
    _add_run_overrides(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="run a sweep-suite JSON file")
    sweep_parser.add_argument("suite", type=Path, help="path to a suite JSON")
    sweep_parser.add_argument(
        "--backend", help="override the client-execution backend for every cell"
    )
    sweep_parser.add_argument(
        "--workers", type=int, help="worker cap for parallel backends"
    )
    sweep_parser.add_argument(
        "--cell-workers",
        type=int,
        default=1,
        help="run this many sweep cells concurrently (default 1)",
    )
    sweep_parser.add_argument("--out", type=Path, help="write results as JSON")
    sweep_parser.set_defaults(func=_cmd_sweep)

    ledger_parser = sub.add_parser(
        "ledger",
        help="summarise the communication ledger of a results JSON",
        description="Render the per-round frame/byte table of the "
        "communication ledger embedded in a `repro run --out` results file "
        "(channel 'model' = logical client-server traffic on any backend; "
        "'wire' = actual coordinator-worker frames of backend='distributed').",
    )
    ledger_parser.add_argument(
        "results", type=Path, help="path to a results JSON with a ledger"
    )
    ledger_parser.set_defaults(func=_cmd_ledger)

    trace_parser = sub.add_parser(
        "trace",
        help="render the telemetry trace of a results JSON",
        description="Render the per-round phase breakdown, slowest "
        "client-training tasks, engine metrics and worker clock offsets of "
        "the telemetry embedded in a `repro run --telemetry on --out "
        "results.json` file (also accepts a bare telemetry dict).",
    )
    trace_parser.add_argument(
        "results", type=Path, help="path to a results JSON with telemetry"
    )
    trace_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many slowest client-training tasks to list (default 10)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    worker_parser = sub.add_parser(
        "worker",
        help="start a standalone distributed-execution worker",
        description="Start a worker process for backend='distributed'. The "
        "worker listens for a coordinator, prints 'REPRO-WORKER LISTENING "
        "<host> <port>' on stdout once bound, and serves coordinators until "
        "interrupted. Point a run at it with "
        "backend=\"distributed:connect='host:port'\".",
    )
    worker_parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:0 = loopback, ephemeral port)",
    )
    worker_parser.add_argument(
        "--once",
        action="store_true",
        help="exit after serving one coordinator (what spawned workers use)",
    )
    worker_parser.set_defaults(func=_cmd_worker)

    lint_parser = sub.add_parser(
        "lint",
        help="run the project-specific static analysis",
        description="Run the repo's own lint checkers (seed discipline, "
        "backend shared-state, fold determinism, wire-protocol versioning, "
        "registry completeness) over Python sources. With no paths, lints "
        "the installed repro package. Exit status: 0 clean, 1 findings, "
        "2 usage error.",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CHECKER",
        help="run only these checkers (repeatable; accepts registry specs "
        "like \"rng-discipline:allow=('repro/legacy/*',)\")",
    )
    lint_parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CHECKER",
        help="skip these checkers (repeatable)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    lint_parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline file of suppressed findings (default: the baseline "
        "committed with the package)",
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit",
    )
    lint_parser.add_argument(
        "--list",
        action="store_true",
        help="list the available checkers and their rules",
    )
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
