"""Local client-side training.

``local_train`` is the single routine every benign client (and the DPois
baseline attack) uses to turn a global parameter vector into a local update
``Δθ = θ_local − θ_global`` after ``K`` epochs of mini-batch SGD — exactly
lines 6–11 of Algorithm 1 in the paper.

The ``model`` argument is a *scratch* instance: its parameters are
overwritten with ``global_params`` before training, so execution backends
(:mod:`repro.federated.engine.backends`) can freely reuse one model per
worker thread/process.  Training randomness (batch shuffling) comes from the
caller-provided ``rng`` stream.  Caveat: a model containing layers with
internal RNG state (``Dropout``) additionally draws from that layer's own
generator, whose consumption order depends on the execution backend — such
models are only run-to-run deterministic on the serial backend.  Every model
built by the experiment runner is dropout-free by default.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import BatchedSoftmaxCrossEntropy, SoftmaxCrossEntropy
from repro.nn.optim import SGD, BatchedSGD
from repro.nn.serialization import flatten_params, unflatten_params


@dataclass
class LocalTrainingConfig:
    """Hyper-parameters of a client's local training.

    Defaults follow Section V of the paper: SGD with learning rate 0.001 for
    local models, one local epoch, small mini-batches.
    """

    epochs: int = 1
    batch_size: int = 16
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    proximal_mu: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.proximal_mu < 0:
            raise ValueError("proximal_mu must be non-negative")


def local_train(
    model,
    global_params: np.ndarray,
    data: Dataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
    drift_correction: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Run local SGD from the global model and return ``(Δθ, final loss)``.

    Parameters
    ----------
    model:
        A model instance (reused across calls to avoid re-allocation); its
        parameters are overwritten with ``global_params`` before training.
    global_params:
        Flat global parameter vector θ_t received from the server.
    data:
        The client's local training dataset.
    config:
        Local optimisation hyper-parameters.  ``proximal_mu`` adds a FedProx /
        FedDC-style proximal term pulling local weights toward the global
        model.
    rng:
        Randomness source for mini-batch shuffling.
    drift_correction:
        Optional FedDC per-client drift vector added to the parameter vector
        seen by the proximal term (see :class:`repro.federated.algorithms.feddc.FedDC`).

    Returns
    -------
    (update, loss):
        ``update`` is the flat local update Δθ = θ_local − θ_global; ``loss``
        is the mean training loss of the final epoch.
    """
    if len(data) == 0:
        return np.zeros_like(global_params), 0.0
    unflatten_params(model, global_params)
    optimiser = SGD(model, lr=config.lr, momentum=config.momentum,
                    weight_decay=config.weight_decay)
    criterion = SoftmaxCrossEntropy()
    anchor = global_params if drift_correction is None else global_params - drift_correction
    last_epoch_losses: list[float] = []
    for _epoch in range(config.epochs):
        epoch_losses: list[float] = []
        for batch_x, batch_y in data.batches(config.batch_size, rng=rng):
            optimiser.zero_grad()
            logits = model.forward(batch_x, training=True)
            loss = criterion.forward(logits, batch_y)
            grad = criterion.backward()
            model.backward(grad)
            if config.proximal_mu > 0.0:
                _add_proximal_gradient(model, anchor, config.proximal_mu)
            optimiser.step()
            epoch_losses.append(loss)
        last_epoch_losses = epoch_losses
    local_params = flatten_params(model)
    mean_loss = float(np.mean(last_epoch_losses)) if last_epoch_losses else 0.0
    return local_params - global_params, mean_loss


def _plan_step_runs(
    sizes: Sequence[int], batch_size: int
) -> list[tuple[int, list[tuple[int, int, int]]]]:
    """Partition size-sorted clients into per-step runs of equal batch size.

    ``sizes`` must be non-increasing.  For every mini-batch step ``t`` (batch
    rows ``[t*bs, t*bs + bs)`` of each client's shuffled epoch), the clients
    still holding data at that offset form a prefix of the stack, and clients
    sharing the same (possibly partial, end-of-dataset) batch size form
    contiguous runs within it.  Returns ``[(start, [(a, b, size), ...]), ...]``
    — one entry per step, each run covering client rows ``[a, b)`` training
    on ``size`` samples.
    """
    runs_per_step = []
    max_n = sizes[0]
    for start in range(0, max_n, batch_size):
        runs = []
        a = 0
        while a < len(sizes) and sizes[a] > start:
            size_a = min(batch_size, sizes[a] - start)
            b = a + 1
            while b < len(sizes) and min(batch_size, max(sizes[b] - start, 0)) == size_a:
                b += 1
            runs.append((a, b, size_a))
            a = b
        runs_per_step.append((start, runs))
    return runs_per_step


def local_train_batched(
    model,
    global_params: np.ndarray,
    datasets: Sequence[Dataset],
    config: LocalTrainingConfig,
    rngs: Sequence[np.random.Generator],
    drift_corrections: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run :func:`local_train` for many clients as one stacked computation.

    ``model`` is a :class:`~repro.nn.model.BatchedSequential` sized for
    ``len(datasets)`` clients; datasets must be non-empty and ordered by
    non-increasing size (the batched runner sorts its groups so this holds),
    and every client trains under the same ``config``.  Clients of *different*
    sizes batch together: each mini-batch step runs over the contiguous runs
    of clients sharing a batch size at that offset (see
    :func:`_plan_step_runs`), through sliced views of the stacked parameter
    planes — clients that exhaust their data simply drop out of later steps,
    exactly as their serial loop would have ended.

    Per-client randomness comes from ``rngs`` — each generator is consumed
    exactly as the serial path consumes it (one permutation per epoch), so
    the returned rows are *bitwise* equal to the serial per-client results:

    * forward/backward matmuls run one BLAS GEMM per client slice with the
      serial shapes and strides (see :mod:`repro.nn.layers`);
    * bias/weight-gradient reductions and per-client loss means reduce the
      same contiguous memory the serial reductions do;
    * the SGD step, proximal term and ``Δθ`` subtraction are elementwise and
      touch only the rows of clients that trained on the step.

    Returns
    -------
    (updates, losses):
        ``updates`` is ``(clients, dim)`` — row ``c`` is client ``c``'s
        ``Δθ`` — and ``losses`` the per-client mean final-epoch loss.
    """
    clients = model.num_clients
    if len(datasets) != clients or len(rngs) != clients:
        raise ValueError(
            f"batched model is sized for {clients} clients, got "
            f"{len(datasets)} datasets and {len(rngs)} rng streams"
        )
    if drift_corrections is not None and drift_corrections.shape[0] != clients:
        raise ValueError("drift_corrections must carry one row per client")
    sizes = [len(data) for data in datasets]
    if any(n == 0 for n in sizes):
        raise ValueError("batched clients must have non-empty datasets")
    if any(sizes[i] < sizes[i + 1] for i in range(clients - 1)):
        raise ValueError("datasets must be ordered by non-increasing size")
    model.load_global(global_params)
    optimiser = BatchedSGD(model, lr=config.lr, momentum=config.momentum,
                           weight_decay=config.weight_decay)
    criterion = BatchedSoftmaxCrossEntropy()
    anchor_planes = None
    if config.proximal_mu > 0.0:
        if drift_corrections is None:
            anchors = np.broadcast_to(global_params, (clients, global_params.shape[0]))
        else:
            anchors = global_params[None, :] - drift_corrections
        anchor_planes = []
        offset = 0
        for name, plane in model.named_parameters():
            size = plane[0].size
            anchor_planes.append(
                (name, anchors[:, offset : offset + size].reshape(plane.shape))
            )
            offset += size
    max_n = sizes[0]
    step_runs = _plan_step_runs(sizes, config.batch_size)
    # One shuffled-epoch gather buffer: row ``c`` holds client ``c``'s
    # permuted samples (padded rows stay untouched past ``sizes[c]``).  Step
    # slices of it are views, so the per-step stacking cost of the naive
    # approach — one fancy-index copy per client per step — disappears; the
    # same bytes are gathered once per epoch, matching the serial path's
    # total copy volume.
    x_epoch = np.empty((clients, max_n) + datasets[0].x.shape[1:], dtype=datasets[0].x.dtype)
    y_epoch = np.empty((clients, max_n), dtype=datasets[0].y.dtype)
    last_epoch_losses: list[list[float]] = [[] for _ in range(clients)]
    for _epoch in range(config.epochs):
        for c, data in enumerate(datasets):
            order = rngs[c].permutation(sizes[c])
            x_epoch[c, : sizes[c]] = data.x[order]
            y_epoch[c, : sizes[c]] = data.y[order]
        epoch_losses: list[list[float]] = [[] for _ in range(clients)]
        for start, runs in step_runs:
            for a, b, size in runs:
                sub = model.view(a, b)
                logits = sub.forward(x_epoch[a:b, start : start + size], training=True)
                step_losses = criterion.forward(logits, y_epoch[a:b, start : start + size])
                grad = criterion.backward()
                sub.backward(grad)
                if anchor_planes is not None:
                    grads = dict(sub.named_gradients())
                    params = dict(sub.named_parameters())
                    for name, anchor_plane in anchor_planes:
                        grads[name] += config.proximal_mu * (
                            params[name] - anchor_plane[a:b]
                        )
                optimiser.step_slice(a, b)
                for i in range(b - a):
                    epoch_losses[a + i].append(float(step_losses[i]))
        last_epoch_losses = epoch_losses
    updates = model.flatten_per_client()
    updates -= global_params[None, :]
    # Per-client mean over a list of python floats — the exact reduction the
    # serial path's ``float(np.mean(last_epoch_losses))`` performs.
    mean_losses = np.array(
        [float(np.mean(losses)) for losses in last_epoch_losses],
        dtype=np.float64,
    )
    return updates, mean_losses


def _add_proximal_gradient(model, anchor: np.ndarray, mu: float) -> None:
    """Add ``mu * (θ − anchor)`` to the model's parameter gradients in place."""
    offset = 0
    anchor = np.asarray(anchor)
    grads = dict(model.named_gradients())
    for name, param in model.named_parameters():
        size = param.size
        anchor_slice = anchor[offset : offset + size].reshape(param.shape)
        grads[name] += mu * (param - anchor_slice)
        offset += size


def evaluate_model(model, params: np.ndarray, data: Dataset) -> float:
    """Accuracy of ``params`` (loaded into ``model``) on a dataset."""
    if len(data) == 0:
        return 0.0
    unflatten_params(model, params)
    preds = model.predict(data.x)
    return float((preds == data.y).mean())
