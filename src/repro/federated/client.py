"""Local client-side training.

``local_train`` is the single routine every benign client (and the DPois
baseline attack) uses to turn a global parameter vector into a local update
``Δθ = θ_local − θ_global`` after ``K`` epochs of mini-batch SGD — exactly
lines 6–11 of Algorithm 1 in the paper.

The ``model`` argument is a *scratch* instance: its parameters are
overwritten with ``global_params`` before training, so execution backends
(:mod:`repro.federated.engine.backends`) can freely reuse one model per
worker thread/process.  Training randomness (batch shuffling) comes from the
caller-provided ``rng`` stream.  Caveat: a model containing layers with
internal RNG state (``Dropout``) additionally draws from that layer's own
generator, whose consumption order depends on the execution backend — such
models are only run-to-run deterministic on the serial backend.  Every model
built by the experiment runner is dropout-free by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.nn.serialization import flatten_params, unflatten_params


@dataclass
class LocalTrainingConfig:
    """Hyper-parameters of a client's local training.

    Defaults follow Section V of the paper: SGD with learning rate 0.001 for
    local models, one local epoch, small mini-batches.
    """

    epochs: int = 1
    batch_size: int = 16
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    proximal_mu: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.proximal_mu < 0:
            raise ValueError("proximal_mu must be non-negative")


def local_train(
    model,
    global_params: np.ndarray,
    data: Dataset,
    config: LocalTrainingConfig,
    rng: np.random.Generator,
    drift_correction: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Run local SGD from the global model and return ``(Δθ, final loss)``.

    Parameters
    ----------
    model:
        A model instance (reused across calls to avoid re-allocation); its
        parameters are overwritten with ``global_params`` before training.
    global_params:
        Flat global parameter vector θ_t received from the server.
    data:
        The client's local training dataset.
    config:
        Local optimisation hyper-parameters.  ``proximal_mu`` adds a FedProx /
        FedDC-style proximal term pulling local weights toward the global
        model.
    rng:
        Randomness source for mini-batch shuffling.
    drift_correction:
        Optional FedDC per-client drift vector added to the parameter vector
        seen by the proximal term (see :class:`repro.federated.algorithms.feddc.FedDC`).

    Returns
    -------
    (update, loss):
        ``update`` is the flat local update Δθ = θ_local − θ_global; ``loss``
        is the mean training loss of the final epoch.
    """
    if len(data) == 0:
        return np.zeros_like(global_params), 0.0
    unflatten_params(model, global_params)
    optimiser = SGD(model, lr=config.lr, momentum=config.momentum,
                    weight_decay=config.weight_decay)
    criterion = SoftmaxCrossEntropy()
    anchor = global_params if drift_correction is None else global_params - drift_correction
    last_epoch_losses: list[float] = []
    for epoch in range(config.epochs):
        epoch_losses: list[float] = []
        for batch_x, batch_y in data.batches(config.batch_size, rng=rng):
            optimiser.zero_grad()
            logits = model.forward(batch_x, training=True)
            loss = criterion.forward(logits, batch_y)
            grad = criterion.backward()
            model.backward(grad)
            if config.proximal_mu > 0.0:
                _add_proximal_gradient(model, anchor, config.proximal_mu)
            optimiser.step()
            epoch_losses.append(loss)
        last_epoch_losses = epoch_losses
    local_params = flatten_params(model)
    mean_loss = float(np.mean(last_epoch_losses)) if last_epoch_losses else 0.0
    return local_params - global_params, mean_loss


def _add_proximal_gradient(model, anchor: np.ndarray, mu: float) -> None:
    """Add ``mu * (θ − anchor)`` to the model's parameter gradients in place."""
    offset = 0
    anchor = np.asarray(anchor)
    grads = dict(model.named_gradients())
    for name, param in model.named_parameters():
        size = param.size
        anchor_slice = anchor[offset : offset + size].reshape(param.shape)
        grads[name] += mu * (param - anchor_slice)
        offset += size


def evaluate_model(model, params: np.ndarray, data: Dataset) -> float:
    """Accuracy of ``params`` (loaded into ``model``) on a dataset."""
    if len(data) == 0:
        return 0.0
    unflatten_params(model, params)
    preds = model.predict(data.x)
    return float((preds == data.y).mean())
