"""FedDC: federated learning with local drift decoupling and correction.

FedDC (Gao et al., CVPR 2022) is the regularisation-based personalised FL
method used in the paper.  Each client keeps a *local drift* vector capturing
how far its own optimum sits from the global model.  During local training a
proximal penalty anchors the client near the drift-corrected global model; at
evaluation time the personalised model is the global model shifted by the
client's drift, so every client adapts to its own data distribution.

This reproduction keeps the two properties the paper's analysis relies on:

* personalisation pulls a benign client's effective model toward its own data
  distribution, which *mitigates* poorly-integrated backdoors (DPois / MRepl /
  DBA under FedDC in Figs. 8 and 15);
* when the global model is trapped in the low-loss region around the Trojaned
  model X (CollaPois), the bounded drift cannot escape that region, so the
  backdoor survives personalisation.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig, local_train
from repro.registry import ALGORITHMS


@ALGORITHMS.register("feddc")
class FedDC(FederatedAlgorithm):
    """Drift-decoupling personalised federated learning."""

    name = "feddc"

    def __init__(self, drift_lr: float = 0.5, proximal_mu: float = 0.1, drift_clip: float = 5.0) -> None:
        if not 0.0 < drift_lr <= 1.0:
            raise ValueError("drift_lr must be in (0, 1]")
        if proximal_mu < 0.0:
            raise ValueError("proximal_mu must be non-negative")
        if drift_clip <= 0.0:
            raise ValueError("drift_clip must be positive")
        self.drift_lr = drift_lr
        self.proximal_mu = proximal_mu
        self.drift_clip = drift_clip
        self._drift: np.ndarray | None = None

    def init_state(self, num_clients: int, param_dim: int) -> None:
        self._drift = np.zeros((num_clients, param_dim), dtype=np.float64)

    @property
    def drift(self) -> np.ndarray:
        if self._drift is None:
            raise RuntimeError("init_state has not been called")
        return self._drift

    def client_benign_state(self, client_id: int) -> np.ndarray:
        # benign_update reads the client's drift row; shipping it with the
        # task keeps distributed workers bit-identical to the driver.
        return self.drift[client_id]

    def set_client_benign_state(self, client_id: int, state: np.ndarray) -> None:
        self.drift[client_id] = state

    def benign_update(
        self,
        client_id: int,
        model,
        global_params: np.ndarray,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        drift = self.drift[client_id]
        local_config = LocalTrainingConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            proximal_mu=self.proximal_mu,
        )
        update, loss = local_train(
            model, global_params, data, local_config, rng, drift_correction=drift
        )
        return update, loss

    def benign_batch_spec(
        self, client_id: int, config: LocalTrainingConfig
    ) -> tuple[LocalTrainingConfig, np.ndarray]:
        # Mirrors benign_update: same effective config (the algorithm's
        # proximal_mu wins) and the client's current drift row.
        local_config = LocalTrainingConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            proximal_mu=self.proximal_mu,
        )
        return local_config, self.drift[client_id]

    def post_aggregate(
        self,
        global_params: np.ndarray,
        updates_by_client: dict[int, np.ndarray],
    ) -> None:
        """Track each participating client's drift as an EMA of its own updates."""
        for client_id, update in updates_by_client.items():
            drift = self.drift[client_id]
            drift = (1.0 - self.drift_lr) * drift + self.drift_lr * update
            norm = np.linalg.norm(drift)
            if norm > self.drift_clip:
                drift = drift * (self.drift_clip / norm)
            self.drift[client_id] = drift

    def personalized_params(
        self,
        client_id: int,
        global_params: np.ndarray,
        model,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return global_params + self.drift[client_id]
