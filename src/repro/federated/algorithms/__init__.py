"""Federated training algorithms (FedAvg, FedDC, MetaFed)."""

from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.feddc import FedDC
from repro.federated.algorithms.metafed import MetaFed

__all__ = ["FederatedAlgorithm", "FedAvg", "FedDC", "MetaFed"]
