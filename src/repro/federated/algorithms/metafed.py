"""MetaFed: federated learning with cyclic knowledge distillation.

MetaFed (Chen et al., 2023) builds personalised models by passing knowledge
cyclically between "neighbouring" clients (federations) via distillation
rather than by averaging into a single global model.  This reproduction keeps
the two behaviours the paper highlights:

* a client's personalised model blends the global model, its own local
  fine-tuning, and knowledge distilled from neighbours with *similar label
  distributions*;
* in highly non-IID settings (small α) neighbours are sparse/dissimilar, so
  knowledge transfer weakens — which in the paper slightly *reduces* the
  backdoor's ability to spread at small α (Attack SR rises mildly with α for
  MetaFed, the opposite of FedAvg/FedDC).

Neighbour similarity is measured on the clients' label-count vectors, which
the algorithm learns once from the federation metadata (the server in the
paper orchestrates the cyclic schedule and therefore knows participation
order; no raw data is shared).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig, local_train
from repro.registry import ALGORITHMS


@ALGORITHMS.register("metafed")
class MetaFed(FederatedAlgorithm):
    """Cyclic knowledge-distillation personalised federated learning."""

    name = "metafed"

    def __init__(
        self,
        num_neighbors: int = 3,
        distill_weight: float = 0.5,
        similarity_threshold: float = 0.75,
        finetune_epochs: int = 1,
    ) -> None:
        if num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        if not 0.0 <= distill_weight <= 1.0:
            raise ValueError("distill_weight must be in [0, 1]")
        if finetune_epochs <= 0:
            raise ValueError("finetune_epochs must be positive")
        self.num_neighbors = num_neighbors
        self.distill_weight = distill_weight
        self.similarity_threshold = similarity_threshold
        self.finetune_epochs = finetune_epochs
        self._personal: np.ndarray | None = None
        self._has_personal: np.ndarray | None = None
        self._label_similarity: np.ndarray | None = None

    def init_state(self, num_clients: int, param_dim: int) -> None:
        self._personal = np.zeros((num_clients, param_dim), dtype=np.float64)
        self._has_personal = np.zeros(num_clients, dtype=bool)

    def set_label_distributions(self, class_counts: np.ndarray) -> None:
        """Provide per-client label-count vectors to derive the neighbour graph."""
        counts = np.asarray(class_counts, dtype=np.float64)
        norms = np.linalg.norm(counts, axis=1, keepdims=True)
        normalised = counts / np.clip(norms, 1e-12, None)
        self._label_similarity = normalised @ normalised.T

    def neighbors(self, client_id: int) -> np.ndarray:
        """Ids of the client's nearest neighbours in label-distribution space."""
        if self._label_similarity is None:
            return np.zeros(0, dtype=np.int64)
        sims = self._label_similarity[client_id].copy()
        sims[client_id] = -np.inf
        order = np.argsort(sims)[::-1]
        top = order[: self.num_neighbors]
        # Only keep neighbours that are actually similar: in highly non-IID
        # settings this prunes most of them, weakening knowledge transfer.
        return top[self._label_similarity[client_id, top] >= self.similarity_threshold]

    def benign_batch_spec(
        self, client_id: int, config: LocalTrainingConfig
    ) -> tuple[LocalTrainingConfig, None]:
        # The benign path is plain local_train (distillation happens in the
        # driver-side personalisation step, not during the round).
        return config, None

    def benign_update(
        self,
        client_id: int,
        model,
        global_params: np.ndarray,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        update, loss = local_train(model, global_params, data, config, rng)
        return update, loss

    def post_aggregate(
        self,
        global_params: np.ndarray,
        updates_by_client: dict[int, np.ndarray],
    ) -> None:
        if self._personal is None or self._has_personal is None:
            raise RuntimeError("init_state has not been called")
        for client_id, update in updates_by_client.items():
            self._personal[client_id] = global_params + update
            self._has_personal[client_id] = True

    def personalized_params(
        self,
        client_id: int,
        global_params: np.ndarray,
        model,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self._personal is None or self._has_personal is None:
            raise RuntimeError("init_state has not been called")
        # Start from the client's own fine-tuned model (meta-test adaptation).
        finetune_config = LocalTrainingConfig(
            epochs=self.finetune_epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            momentum=config.momentum,
        )
        update, _ = local_train(model, global_params, data, finetune_config, rng)
        own = global_params + update
        neighbor_ids = [n for n in self.neighbors(client_id) if self._has_personal[n]]
        if not neighbor_ids:
            return own
        neighbor_mean = self._personal[neighbor_ids].mean(axis=0)
        return (1.0 - self.distill_weight) * own + self.distill_weight * neighbor_mean
