"""FedAvg: plain federated averaging (McMahan et al., 2017).

Benign clients run local SGD from the global model; the personalised model of
every client *is* the global model (no personalisation).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig, local_train
from repro.registry import ALGORITHMS


@ALGORITHMS.register("fedavg")
class FedAvg(FederatedAlgorithm):
    """Federated averaging without personalisation."""

    name = "fedavg"

    def benign_update(
        self,
        client_id: int,
        model,
        global_params: np.ndarray,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        return local_train(model, global_params, data, config, rng)

    def benign_batch_spec(
        self, client_id: int, config: LocalTrainingConfig
    ) -> tuple[LocalTrainingConfig, np.ndarray | None]:
        # The benign path is plain local_train on the shared config.
        return config, None

    def personalized_params(
        self,
        client_id: int,
        global_params: np.ndarray,
        model,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return global_params.copy()
