"""Interface shared by the federated training algorithms.

The server round loop (:mod:`repro.federated.server`) is algorithm-agnostic:
an algorithm decides (a) how a *benign* client turns the global model into a
local update, (b) what per-client state it keeps across rounds, and (c) how a
client's *personalised* model — the one the paper evaluates Benign AC and
Attack SR on — is derived from the global model at evaluation time.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.federated.client import LocalTrainingConfig


class FederatedAlgorithm:
    """Base class for FedAvg / FedDC / MetaFed."""

    name = "base"

    def init_state(self, num_clients: int, param_dim: int) -> None:
        """Allocate per-client state (called once before training)."""

    def benign_update(
        self,
        client_id: int,
        model,
        global_params: np.ndarray,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float]:
        """Compute a benign client's local update ``Δθ`` and training loss."""
        raise NotImplementedError

    def benign_batch_spec(
        self, client_id: int, config: LocalTrainingConfig
    ) -> tuple[LocalTrainingConfig, np.ndarray | None] | None:
        """Describe how this client's benign update maps onto batched training.

        The batched execution path (:mod:`repro.federated.engine.batched`)
        replaces per-client :meth:`benign_update` calls with one stacked
        :func:`~repro.federated.client.local_train_batched` call.  That is
        only valid when the algorithm's benign path *is* ``local_train`` —
        algorithms whose benign path does something else return ``None``
        (the default) and the runner falls back to per-client execution.
        Otherwise the return value is the ``(local_config, drift)`` pair
        :meth:`benign_update` would hand to ``local_train`` for this client.
        """
        return None

    def client_benign_state(self, client_id: int) -> np.ndarray | None:
        """Per-client state that :meth:`benign_update` reads, or ``None``.

        Algorithms whose benign path is a pure function of the global
        parameters (FedAvg, MetaFed — their per-client state only feeds
        ``post_aggregate``/``personalized_params``, which run in the driver)
        return ``None``.  Algorithms like FedDC, whose local training reads
        mutable per-client state, return that client's state vector so the
        distributed backend can ship it with the task and a remote worker
        reproduces the driver's computation bit-for-bit.
        """
        return None

    def set_client_benign_state(self, client_id: int, state: np.ndarray) -> None:
        """Install a shipped per-client state vector (worker side).

        Only called with vectors produced by :meth:`client_benign_state`, so
        the default (stateless) implementation never runs.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares no per-client benign state"
        )

    def post_aggregate(
        self,
        global_params: np.ndarray,
        updates_by_client: dict[int, np.ndarray],
    ) -> None:
        """Update per-client state after the server aggregated a round."""

    def personalized_params(
        self,
        client_id: int,
        global_params: np.ndarray,
        model,
        data: Dataset,
        config: LocalTrainingConfig,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Parameters of the client's personalised model used for evaluation."""
        raise NotImplementedError
