"""Federated server: the synchronous round loop of Algorithm 1.

Each round the server samples clients, collects benign updates from the
active training algorithm and malicious updates from the active attack
(if any), aggregates them through the configured aggregator (plain mean or a
robust defense), and applies the aggregated update with the server learning
rate.  Per-round statistics are recorded in a :class:`TrainingHistory`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data.federated_data import FederatedDataset
from repro.defenses.base import Aggregator, MeanAggregator
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.sampling import sample_clients
from repro.nn.serialization import flatten_params


@dataclass
class ServerConfig:
    """Hyper-parameters of the federated training run."""

    rounds: int = 20
    sample_rate: float = 0.2
    server_lr: float = 1.0
    seed: int = 0
    min_sampled_clients: int = 4
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    eval_every: int | None = None

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if self.server_lr <= 0:
            raise ValueError("server_lr must be positive")


class FederatedServer:
    """Runs federated training, optionally under attack and/or defense."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_factory: Callable[[], object],
        algorithm: FederatedAlgorithm,
        config: ServerConfig,
        aggregator: Aggregator | None = None,
        attack=None,
        compromised_ids: list[int] | None = None,
        eval_fn: Callable[[np.ndarray, int], dict] | None = None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.algorithm = algorithm
        self.config = config
        self.aggregator = aggregator or MeanAggregator()
        self.attack = attack
        self.compromised_ids = set(compromised_ids or [])
        if self.attack is not None and not self.compromised_ids:
            raise ValueError("an attack requires at least one compromised client")
        self.eval_fn = eval_fn
        self._rng = np.random.default_rng(config.seed)
        # A single model instance is reused for all local training to avoid
        # repeated allocation; its parameters are overwritten on each use.
        self._worker_model = model_factory()
        self.global_params = flatten_params(self.model_factory())
        self.algorithm.init_state(dataset.num_clients, self.global_params.shape[0])
        if hasattr(self.algorithm, "set_label_distributions"):
            self.algorithm.set_label_distributions(
                np.stack([c.class_counts for c in dataset.clients])
            )
        self.history = TrainingHistory()

    def run(self, rounds: int | None = None) -> TrainingHistory:
        """Execute the configured number of federated rounds."""
        total = rounds if rounds is not None else self.config.rounds
        for _ in range(total):
            self.run_round()
        return self.history

    def run_round(self) -> RoundRecord:
        """Execute a single federated round and return its record."""
        round_idx = len(self.history)
        sampled = sample_clients(
            self.dataset.num_clients,
            self.config.sample_rate,
            self._rng,
            min_clients=self.config.min_sampled_clients,
        )
        updates: list[np.ndarray] = []
        benign_losses: list[float] = []
        benign_updates_by_client: dict[int, np.ndarray] = {}
        compromised_sampled: list[int] = []
        for client_id in sampled:
            client_id = int(client_id)
            client_rng = np.random.default_rng(
                self.config.seed * 1_000_003 + round_idx * 1_009 + client_id
            )
            if self.attack is not None and client_id in self.compromised_ids:
                update = self.attack.compute_update(
                    client_id=client_id,
                    global_params=self.global_params,
                    round_idx=round_idx,
                    model=self._worker_model,
                    rng=client_rng,
                )
                compromised_sampled.append(client_id)
            else:
                update, loss = self.algorithm.benign_update(
                    client_id,
                    self._worker_model,
                    self.global_params,
                    self.dataset.client(client_id).train,
                    self.config.local,
                    client_rng,
                )
                benign_losses.append(loss)
                benign_updates_by_client[client_id] = update
            updates.append(update)

        stacked = np.stack(updates)
        aggregated = self.aggregator(stacked, self.global_params, self._rng)
        self.global_params = self.global_params + self.config.server_lr * aggregated
        self.algorithm.post_aggregate(self.global_params, benign_updates_by_client)

        record = RoundRecord(
            round_idx=round_idx,
            sampled_clients=[int(c) for c in sampled],
            compromised_sampled=compromised_sampled,
            mean_benign_loss=float(np.mean(benign_losses)) if benign_losses else 0.0,
            update_norm=float(np.linalg.norm(aggregated)),
        )
        if self.eval_fn is not None and self.config.eval_every:
            if (round_idx + 1) % self.config.eval_every == 0:
                metrics = self.eval_fn(self.global_params, round_idx)
                record.benign_accuracy = metrics.get("benign_accuracy")
                record.attack_success_rate = metrics.get("attack_success_rate")
                record.extras.update(metrics)
        self.history.append(record)
        return record

    def personalized_params(self, client_id: int, rng_seed: int | None = None) -> np.ndarray:
        """Personalised parameters of one client under the active algorithm."""
        rng = np.random.default_rng(
            rng_seed if rng_seed is not None else self.config.seed * 31 + client_id
        )
        return self.algorithm.personalized_params(
            client_id,
            self.global_params,
            self._worker_model,
            self.dataset.client(client_id).train,
            self.config.local,
            rng,
        )
