"""Federated server: the synchronous round loop of Algorithm 1.

Each round the server samples clients, builds a :class:`RoundPlan`, hands it
to the configured :class:`~repro.federated.engine.backends.ExecutionBackend`
(serial by default; thread/process pools for parallel client execution),
aggregates the collected updates through the configured aggregator (plain
mean or a robust defense), and applies the aggregated update with the server
learning rate.  Instrumentation — evaluation, logging, custom probes — is
attached through the typed hook pipeline
(:mod:`repro.federated.engine.hooks`) rather than baked into the loop.
Per-round statistics are recorded in a :class:`TrainingHistory`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.federated_data import FederatedDataset
from repro.defenses.base import AggregationContext, Aggregator, MeanAggregator
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.backends import EngineContext, ExecutionBackend, make_backend
from repro.federated.engine.hooks import EvaluationHook, HookPipeline, RoundHook
from repro.federated.engine.plan import ClientUpdate, build_round_plan
from repro.federated.engine.sharding import maybe_shard
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.population.participation import (
    ParticipationContext,
    ParticipationModel,
)
from repro.federated.rng import personalization_seed
from repro.nn.serialization import flatten_params
from repro.registry import PARTICIPATION, parse_spec


#: Aggregation-mode spec kwargs accepted by ``buffered_async``.
_BUFFERED_ASYNC_KWARGS = {"buffer_size", "staleness_discount"}


@dataclass
class ServerConfig:
    """Hyper-parameters of the federated training run.

    ``participation`` selects the round-sampling model as a registry spec
    (``"uniform:sample_rate=0.1"``, ``("tiered", {...})`` — see
    ``repro list participation``).  The historical ``sample_rate`` /
    ``min_sampled_clients`` scalars are deprecated shims: setting either
    warns and builds the equivalent ``uniform`` spec (they cannot be
    combined with ``participation``).  Leaving everything unset means
    ``uniform`` with the historical defaults (q = 0.2, floor 4), which is —
    and must remain — bit-identical to every pre-participation-API history.

    ``aggregation_mode`` is ``"sync"`` (the paper's Algorithm 1: every
    sampled update folds into its own round) or a ``"buffered_async"`` spec
    (FedBuff-style): each round folds the carried updates from the previous
    round plus the first ``buffer_size`` arrivals — arrival order given by
    the participation model's latency draws — and carries the stragglers
    into the next round, down-weighted by ``staleness_discount ** staleness``
    (:meth:`~repro.defenses.base.Aggregator.discount_stale`).  Buffered
    rounds always use the streaming fold and are bit-identical per seed on
    every backend; secure aggregation is rejected (pairwise masks only
    cancel within one round's full cohort).

    ``streaming`` picks how client updates reach the aggregator:
    ``"off"`` buffers the whole round and aggregates the stacked matrix
    (the historical path), ``"on"`` folds each update into the aggregator as
    it arrives (:meth:`~repro.defenses.base.Aggregator.accumulate`), and
    ``"auto"`` (default) streams exactly when the configured aggregator has
    a true streaming implementation (``aggregator.streaming``) and buffers
    otherwise.  Both paths are bit-identical for the same seed.

    ``num_shards`` splits the streaming fold across that many contiguous
    parameter-vector shards folded by a concurrent worker pool
    (:mod:`repro.federated.engine.sharding`) when the aggregator supports it
    (``aggregator.shardable``); other defenses keep the single-fold path.
    ``shards=N`` is bit-identical to ``shards=1`` for the same seed on every
    backend.

    ``secure_aggregation`` runs the round under pairwise additive masking
    (:mod:`repro.federated.secagg`): every update leaving the execution
    engine is masked, and the aggregator is wrapped in the sealed
    :class:`~repro.federated.secagg.aggregator.SecureAggregator` layer, so
    the server only observes masked bytes or the finished fold.  Histories
    are bit-identical with masking on or off for server-blind defenses;
    defenses that inspect individual updates raise
    :class:`~repro.federated.secagg.aggregator.PlaintextRequiredError` at
    construction.

    ``telemetry`` turns on out-of-band run telemetry
    (:mod:`repro.telemetry`): span tracing of every round phase, an engine
    metrics registry, and — on the distributed backend — worker-side
    profiling merged over the wire.  Strictly observational: telemetry uses
    only the monotonic clock, draws no RNG, and never touches the
    :class:`TrainingHistory`, so histories with telemetry on are
    bit-identical to telemetry off, per seed, on every backend.
    """

    rounds: int = 20
    sample_rate: float | None = None
    server_lr: float = 1.0
    seed: int = 0
    min_sampled_clients: int | None = None
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    eval_every: int | None = None
    streaming: str = "auto"
    num_shards: int = 1
    secure_aggregation: bool = False
    participation: object | None = None
    aggregation_mode: object = "sync"
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        legacy_scalars = self.sample_rate is not None or self.min_sampled_clients is not None
        if legacy_scalars and self.participation is not None:
            raise ValueError(
                "pass either a participation spec or the deprecated "
                "sample_rate/min_sampled_clients scalars, not both"
            )
        if legacy_scalars:
            # stacklevel 3: warn → __post_init__ → generated __init__ → caller.
            warnings.warn(
                "ServerConfig.sample_rate/min_sampled_clients are deprecated; "
                "use participation='uniform:sample_rate=...,min_clients=...'",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.sample_rate is not None and not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if self.min_sampled_clients is not None and self.min_sampled_clients < 1:
            raise ValueError("min_sampled_clients must be at least 1")
        if self.participation is not None:
            parse_spec(self.participation)  # fail fast on malformed specs
        if self.server_lr <= 0:
            raise ValueError("server_lr must be positive")
        if self.streaming not in ("auto", "on", "off"):
            raise ValueError("streaming must be 'auto', 'on' or 'off'")
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")
        mode, mode_kwargs = self.aggregation_spec()
        if mode not in ("sync", "buffered_async"):
            raise ValueError(
                f"aggregation_mode must be 'sync' or 'buffered_async', got {mode!r}"
            )
        unknown = sorted(set(mode_kwargs) - _BUFFERED_ASYNC_KWARGS)
        if mode == "sync" and mode_kwargs:
            raise ValueError("aggregation_mode 'sync' takes no arguments")
        if unknown:
            raise ValueError(
                f"unknown buffered_async argument(s) {unknown}; "
                f"accepted: {sorted(_BUFFERED_ASYNC_KWARGS)}"
            )
        buffer_size = mode_kwargs.get("buffer_size")
        if buffer_size is not None and (
            not isinstance(buffer_size, int) or buffer_size < 1
        ):
            raise ValueError("buffer_size must be a positive integer")
        discount = mode_kwargs.get("staleness_discount", 0.5)
        if not 0.0 < float(discount) <= 1.0:
            raise ValueError("staleness_discount must be in (0, 1]")
        if mode == "buffered_async":
            if self.secure_aggregation:
                raise ValueError(
                    "buffered_async is incompatible with secure aggregation: "
                    "pairwise masks only cancel within one round's full "
                    "cohort, and carried updates fold in a later round"
                )
            if self.streaming == "off":
                raise ValueError(
                    "buffered_async folds arrivals online and has no matrix "
                    "path; use streaming='auto' or 'on'"
                )

    def participation_spec(self) -> tuple[str, dict]:
        """Normalised ``(name, kwargs)`` participation spec of this config.

        Resolves the deprecated scalars into the equivalent ``uniform`` spec;
        the model's own defaults (q = 0.2, floor 4) fill anything unset, so
        a default config samples exactly as it always has.
        """
        if self.participation is not None:
            return parse_spec(self.participation)
        kwargs: dict = {}
        if self.sample_rate is not None:
            kwargs["sample_rate"] = self.sample_rate
        if self.min_sampled_clients is not None:
            kwargs["min_clients"] = self.min_sampled_clients
        return ("uniform", kwargs)

    def aggregation_spec(self) -> tuple[str, dict]:
        """Normalised ``(mode, kwargs)`` aggregation-mode spec."""
        return parse_spec(self.aggregation_mode)


class FederatedServer:
    """Runs federated training, optionally under attack and/or defense."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_factory: Callable[[], object],
        algorithm: FederatedAlgorithm,
        config: ServerConfig,
        aggregator: Aggregator | None = None,
        attack=None,
        compromised_ids: list[int] | None = None,
        eval_fn: Callable[[np.ndarray, int], dict] | None = None,
        backend: ExecutionBackend | str | None = None,
        hooks: Sequence[RoundHook] | None = None,
        participation: ParticipationModel | None = None,
        telemetry=None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.algorithm = algorithm
        self.config = config
        # A RunTelemetry instance can be injected (shared across servers in a
        # sweep); otherwise the config flag decides whether one is allocated.
        # Imported lazily so plaintext/telemetry-off runs never pay the
        # telemetry package import.
        if telemetry is None and config.telemetry:
            from repro.telemetry import RunTelemetry

            telemetry = RunTelemetry()
        self.telemetry = telemetry
        # The participation model owns round sampling; an instance can be
        # injected directly (tests, custom traces), otherwise it is built
        # from the config's spec (which resolves the deprecated scalars).
        self.participation = (
            participation
            if participation is not None
            else PARTICIPATION.create(config.participation_spec())
        )
        mode, mode_kwargs = config.aggregation_spec()
        self._buffered_async = mode == "buffered_async"
        self._buffer_size: int | None = mode_kwargs.get("buffer_size")
        self._staleness_discount = float(mode_kwargs.get("staleness_discount", 0.5))
        #: Updates that missed their round's buffer, folding next round.
        self._carry: list[ClientUpdate] = []
        # Shard-capable defenses fold across a worker pool when the config
        # asks for it; everything else keeps the single-fold path unchanged.
        defense = aggregator or MeanAggregator()
        self.aggregator = maybe_shard(defense, config.num_shards)
        if config.secure_aggregation:
            # Imported lazily to keep the server importable without the
            # secagg package in the hot path of plaintext runs.
            from repro.federated.secagg import SecureAggregator

            if self._algorithm_consumes_updates():
                raise ValueError(
                    f"algorithm {type(self.algorithm).__name__} consumes "
                    "per-client updates in post_aggregate, which secure "
                    "aggregation withholds from the server; disable "
                    "secure_aggregation or use an algorithm that only reads "
                    "the aggregate (e.g. fedavg)"
                )
            # The capability check runs against the configured defense, not
            # the shard wrapper around it (raises PlaintextRequiredError).
            self.aggregator = SecureAggregator(
                self.aggregator, seed=config.seed, check=defense
            )
        if config.streaming == "off" and getattr(self.aggregator, "streaming_only", False):
            # Fail fast: a streaming-only defense would otherwise waste a
            # full round of client training before its aggregate() raised.
            raise ValueError(
                f"defense {self.aggregator.name!r} only supports the "
                "streaming update path; run with streaming='auto' or 'on'"
            )
        self.attack = attack
        self.compromised_ids = set(compromised_ids or [])
        if self.attack is not None and not self.compromised_ids:
            raise ValueError("an attack requires at least one compromised client")
        self._rng = np.random.default_rng(config.seed)
        # Driver-side scratch model for personalisation/evaluation helpers;
        # parameters are overwritten on each use.  Also the source of the
        # initial global parameters (flatten_params copies), saving a
        # throwaway model allocation.
        self._worker_model = model_factory()
        self.global_params = flatten_params(self._worker_model)
        self.algorithm.init_state(dataset.num_clients, self.global_params.shape[0])
        if hasattr(self.algorithm, "set_label_distributions"):
            # label_distributions() is the lazy-population-safe accessor
            # (metadata only, no client data materialisation).
            self.algorithm.set_label_distributions(dataset.label_distributions())
        self.history = TrainingHistory()
        self._closed = False

        self.backend = backend if isinstance(backend, ExecutionBackend) else make_backend(
            backend or "serial"
        )
        self.backend.bind(
            EngineContext(
                dataset=dataset,
                model_factory=model_factory,
                algorithm=algorithm,
                local_config=config.local,
                attack=attack,
                secagg_seed=config.seed if config.secure_aggregation else None,
                telemetry=self.telemetry,
            )
        )
        # The evaluation hook is registered first so user hooks observe round
        # records with metrics already filled in.
        self.hooks = HookPipeline()
        self._eval_hook: EvaluationHook | None = None
        if eval_fn is not None:
            self._install_eval_fn(eval_fn)
        for hook in hooks or ():
            self.hooks.add(hook)
        if self.telemetry is not None:
            from repro.telemetry import TelemetryHook

            # Registered last so it snapshots metrics after user hooks (which
            # may enrich the record) have run.  Implements no per-update
            # event, so it never forces update-event materialisation.
            self.hooks.add(TelemetryHook(self.telemetry))

    def _install_eval_fn(self, fn: Callable[[np.ndarray, int], dict] | None) -> None:
        """(Re-)register the evaluation hook, always first in the pipeline."""
        if self._eval_hook is not None:
            self.hooks.remove(self._eval_hook)
            self._eval_hook = None
        if fn is not None:
            self._eval_hook = EvaluationHook(fn, every=None)
            # Always first, so user hooks observe records with metrics filled
            # in — even when eval_fn is (re)assigned after construction.
            self.hooks.insert(0, self._eval_hook)

    def add_hook(self, hook: RoundHook) -> RoundHook:
        """Register a round hook; returns it for chaining."""
        return self.hooks.add(hook)

    def run(self, rounds: int | None = None) -> TrainingHistory:
        """Execute the configured number of federated rounds."""
        total = rounds if rounds is not None else self.config.rounds
        for _ in range(total):
            self.run_round()
        return self.history

    def _span(self, name: str, **attrs):
        """Telemetry span context manager; a no-op when telemetry is off."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name, **attrs)

    def _streaming_round(self) -> bool:
        """Whether this round folds updates into the aggregator online."""
        mode = self.config.streaming
        if mode == "off":
            return False
        if mode == "on":
            return True
        return bool(getattr(self.aggregator, "streaming", False))

    def _algorithm_consumes_updates(self) -> bool:
        """Whether the algorithm's post_aggregate reads the benign updates."""
        return (
            type(self.algorithm).post_aggregate
            is not FederatedAlgorithm.post_aggregate
        )

    def _collect_buffered(self, plan, ctx):
        """Historical matrix path: round barrier, stack, one aggregate call."""
        results = self.backend.execute(plan, self.global_params)
        if self.hooks.wants_update_events():
            # Replay per-update events in aggregation order after the barrier
            # so on_update observers behave identically across paths.
            for result in results:
                self.hooks.update(self, plan, self.backend.make_update(result, plan))
        self.hooks.updates_collected(self, plan, results)

        benign_losses = [r.loss for r in results if not r.malicious]
        benign_updates_by_client = {
            r.client_id: r.update for r in results if not r.malicious
        }
        stacked = np.stack([r.update for r in results])
        with self._span("aggregate", round=ctx.round_idx):
            aggregated = self.aggregator(stacked, self.global_params, ctx)
        return aggregated, benign_losses, benign_updates_by_client

    def _collect_streaming(self, plan, ctx):
        """Streaming path: fold updates into the aggregator as they arrive.

        The aggregator reorders arrivals onto the canonical sampled-slot
        order internally (see :meth:`~repro.defenses.base.Aggregator.
        accumulate`), so the result is bit-identical to the buffered path no
        matter which clients finish first.  The full update list is only
        retained when a hook or the training algorithm consumes it;
        otherwise a streaming defense keeps the round at O(param_dim).
        """
        state = self.aggregator.begin_round(ctx)
        retain = self.hooks.wants_collected_results() or self._algorithm_consumes_updates()
        retained: list = []
        benign_losses_by_slot: dict[int, float] = {}
        try:
            for update in self.backend.iter_updates(plan, self.global_params):
                self.hooks.update(self, plan, update)
                self.aggregator.accumulate(state, update)
                if not update.malicious:
                    benign_losses_by_slot[update.slot] = update.loss
                if retain:
                    retained.append(update)
            retained.sort(key=lambda u: u.slot)
            self.hooks.updates_collected(self, plan, retained)
        except BaseException:
            # A hook (or the backend) failed mid-round: release the
            # half-folded aggregation state — sharded folds hold worker
            # threads — so the aggregator can begin a fresh round later.
            self.aggregator.abort(state)
            raise
        with self._span("aggregate", round=ctx.round_idx):
            aggregated = self.aggregator.finalize(state, self.global_params, ctx)

        # Slot order, matching the buffered path's reductions bit-for-bit.
        benign_losses = [benign_losses_by_slot[s] for s in sorted(benign_losses_by_slot)]
        benign_updates_by_client = {
            u.client_id: u.update for u in retained if not u.malicious
        }
        return aggregated, benign_losses, benign_updates_by_client

    def _collect_buffered_async(self, plan, round_idx):
        """FedBuff-style round: fold carried + first-K arrivals, carry the rest.

        Arrival order is ``(latency, slot)`` over the plan's deterministic
        latency draws (all-zero when the participation model has no latency
        model, degenerating to slot order).  The fold set is the previous
        round's carried updates — each passed through
        :meth:`~repro.defenses.base.Aggregator.discount_stale` — followed by
        this round's first ``buffer_size`` arrivals; fold slots are assigned
        in that order, so the existing slot-ordered ``accumulate`` machinery
        makes the result bit-identical across execution backends regardless
        of completion order.  Late arrivals are stashed (with their origin
        round) and neither folded nor shown to hooks until the round they
        actually arrive in — which is what gives the communication ledger
        correct per-round attribution.
        """
        latencies = plan.latencies or (0.0,) * len(plan)
        arrival = sorted(range(len(plan)), key=lambda s: (latencies[s], s))
        k = self._buffer_size if self._buffer_size is not None else len(plan)
        on_time = arrival[:k]
        carried, self._carry = self._carry, []

        fold_clients = tuple(u.client_id for u in carried) + tuple(
            plan.sampled_clients[s] for s in on_time
        )
        ctx = AggregationContext(
            rng=self._rng,
            round_idx=round_idx,
            sampled_clients=fold_clients,
            extras={"aggregation_mode": "buffered_async", "carried": len(carried)},
            telemetry=self.telemetry,
        )
        state = self.aggregator.begin_round(ctx)
        retain = self.hooks.wants_collected_results() or self._algorithm_consumes_updates()
        retained: list = []
        benign_losses_by_slot: dict[int, float] = {}

        def fold(update: ClientUpdate) -> None:
            self.hooks.update(self, plan, update)
            self.aggregator.accumulate(state, update)
            if not update.malicious:
                benign_losses_by_slot[update.slot] = update.loss
            if retain:
                retained.append(update)

        try:
            # Carried updates arrive first: they were already computed and
            # only waited for this round's buffer to open.
            for fold_slot, update in enumerate(carried):
                staleness = round_idx - update.metadata["origin_round"]
                discounted = self.aggregator.discount_stale(
                    update, staleness, self._staleness_discount
                )
                fold(replace(discounted, slot=fold_slot))

            fold_slot_of = {
                plan_slot: len(carried) + rank for rank, plan_slot in enumerate(on_time)
            }
            for update in self.backend.iter_updates(plan, self.global_params):
                fold_slot = fold_slot_of.get(update.slot)
                if fold_slot is None:
                    # A straggler: carry it (in arrival-rank order) to next round.
                    self._carry.append(
                        replace(
                            update, metadata={**update.metadata, "origin_round": round_idx}
                        )
                    )
                    continue
                fold(replace(update, slot=fold_slot))
            # Carried updates queue in arrival-rank (latency) order, not in the
            # backend's completion order, so next round's fold is deterministic.
            late_rank = {
                plan.sampled_clients[s]: rank for rank, s in enumerate(arrival[k:])
            }
            self._carry.sort(key=lambda u: late_rank[u.client_id])

            retained.sort(key=lambda u: u.slot)
            self.hooks.updates_collected(self, plan, retained)
        except BaseException:
            # Same hygiene as _collect_streaming: never leak a half-folded
            # round's worker state when a hook or the backend raises.
            self.aggregator.abort(state)
            raise
        with self._span("aggregate", round=ctx.round_idx):
            aggregated = self.aggregator.finalize(state, self.global_params, ctx)
        benign_losses = [benign_losses_by_slot[s] for s in sorted(benign_losses_by_slot)]
        benign_updates_by_client = {
            u.client_id: u.update for u in retained if not u.malicious
        }
        return ctx, aggregated, benign_losses, benign_updates_by_client

    def run_round(self) -> RoundRecord:
        """Execute a single federated round and return its record."""
        with self._span("round", round=len(self.history)):
            return self._run_round()

    def _run_round(self) -> RoundRecord:
        round_idx = len(self.history)
        # Running another round after close() re-acquires backend resources
        # (the pool backends recreate their executors lazily), so the next
        # close() must actually release them again.
        self._closed = False
        part = self.participation.sample_round(
            ParticipationContext(
                num_clients=self.dataset.num_clients,
                seed=self.config.seed,
                round_idx=round_idx,
                rng=self._rng,
            )
        )
        plan = build_round_plan(
            round_idx,
            part.sampled,
            self.compromised_ids,
            self.config.seed,
            attack_active=self.attack is not None,
            latencies=part.latencies,
        )
        self.hooks.round_start(self, plan)

        if self._buffered_async:
            ctx, aggregated, benign_losses, benign_updates_by_client = (
                self._collect_buffered_async(plan, round_idx)
            )
        else:
            ctx = AggregationContext(
                rng=self._rng,
                round_idx=round_idx,
                sampled_clients=plan.sampled_clients,
                telemetry=self.telemetry,
            )
            collect = (
                self._collect_streaming if self._streaming_round() else self._collect_buffered
            )
            aggregated, benign_losses, benign_updates_by_client = collect(plan, ctx)

        self.global_params = self.global_params + self.config.server_lr * aggregated
        self.algorithm.post_aggregate(self.global_params, benign_updates_by_client)
        self.hooks.aggregated(self, plan, aggregated)

        record = RoundRecord(
            round_idx=round_idx,
            sampled_clients=list(plan.sampled_clients),
            compromised_sampled=plan.compromised_sampled,
            mean_benign_loss=float(np.mean(benign_losses)) if benign_losses else 0.0,
            update_norm=float(np.linalg.norm(aggregated)),
        )
        if self._buffered_async:
            record.extras["buffered_async"] = {
                "folded": len(ctx.sampled_clients),
                "carried_in": int(ctx.extras.get("carried", 0)),
                "carried_out": len(self._carry),
            }
        self.history.append(record)
        self.hooks.round_end(self, plan, record)
        return record

    def personalized_params(self, client_id: int, rng_seed: int | None = None) -> np.ndarray:
        """Personalised parameters of one client under the active algorithm."""
        rng = np.random.default_rng(
            rng_seed if rng_seed is not None else personalization_seed(self.config.seed, client_id)
        )
        return self.algorithm.personalized_params(
            client_id,
            self.global_params,
            self._worker_model,
            self.dataset.client(client_id).train,
            self.config.local,
            rng,
        )

    def close(self) -> None:
        """Release backend and shard-pool worker resources (idempotent).

        Closes the execution backend — including a distributed coordinator's
        worker processes — and any shard worker pool the aggregator holds.
        Safe to call repeatedly; the server remains usable for driver-side
        helpers (``personalized_params``, history access) after closing.
        """
        if self._closed:
            return
        self._closed = True
        self.backend.close()
        closer = getattr(self.aggregator, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "FederatedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: workers and shard pools never leak."""
        self.close()
