"""Federated server: the synchronous round loop of Algorithm 1.

Each round the server samples clients, builds a :class:`RoundPlan`, hands it
to the configured :class:`~repro.federated.engine.backends.ExecutionBackend`
(serial by default; thread/process pools for parallel client execution),
aggregates the collected updates through the configured aggregator (plain
mean or a robust defense), and applies the aggregated update with the server
learning rate.  Instrumentation — evaluation, logging, custom probes — is
attached through the typed hook pipeline
(:mod:`repro.federated.engine.hooks`) rather than baked into the loop.
Per-round statistics are recorded in a :class:`TrainingHistory`.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.federated_data import FederatedDataset
from repro.defenses.base import AggregationContext, Aggregator, MeanAggregator
from repro.federated.algorithms.base import FederatedAlgorithm
from repro.federated.client import LocalTrainingConfig
from repro.federated.engine.backends import EngineContext, ExecutionBackend, make_backend
from repro.federated.engine.hooks import EvaluationHook, HookPipeline, RoundHook
from repro.federated.engine.plan import build_round_plan
from repro.federated.engine.sharding import maybe_shard
from repro.federated.history import RoundRecord, TrainingHistory
from repro.federated.rng import personalization_seed
from repro.federated.sampling import sample_clients
from repro.nn.serialization import flatten_params


@dataclass
class ServerConfig:
    """Hyper-parameters of the federated training run.

    ``streaming`` picks how client updates reach the aggregator:
    ``"off"`` buffers the whole round and aggregates the stacked matrix
    (the historical path), ``"on"`` folds each update into the aggregator as
    it arrives (:meth:`~repro.defenses.base.Aggregator.accumulate`), and
    ``"auto"`` (default) streams exactly when the configured aggregator has
    a true streaming implementation (``aggregator.streaming``) and buffers
    otherwise.  Both paths are bit-identical for the same seed.

    ``num_shards`` splits the streaming fold across that many contiguous
    parameter-vector shards folded by a concurrent worker pool
    (:mod:`repro.federated.engine.sharding`) when the aggregator supports it
    (``aggregator.shardable``); other defenses keep the single-fold path.
    ``shards=N`` is bit-identical to ``shards=1`` for the same seed on every
    backend.

    ``secure_aggregation`` runs the round under pairwise additive masking
    (:mod:`repro.federated.secagg`): every update leaving the execution
    engine is masked, and the aggregator is wrapped in the sealed
    :class:`~repro.federated.secagg.aggregator.SecureAggregator` layer, so
    the server only observes masked bytes or the finished fold.  Histories
    are bit-identical with masking on or off for server-blind defenses;
    defenses that inspect individual updates raise
    :class:`~repro.federated.secagg.aggregator.PlaintextRequiredError` at
    construction.
    """

    rounds: int = 20
    sample_rate: float = 0.2
    server_lr: float = 1.0
    seed: int = 0
    min_sampled_clients: int = 4
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    eval_every: int | None = None
    streaming: str = "auto"
    num_shards: int = 1
    secure_aggregation: bool = False

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        if self.server_lr <= 0:
            raise ValueError("server_lr must be positive")
        if self.streaming not in ("auto", "on", "off"):
            raise ValueError("streaming must be 'auto', 'on' or 'off'")
        if self.num_shards < 1:
            raise ValueError("num_shards must be positive")


class FederatedServer:
    """Runs federated training, optionally under attack and/or defense."""

    def __init__(
        self,
        dataset: FederatedDataset,
        model_factory: Callable[[], object],
        algorithm: FederatedAlgorithm,
        config: ServerConfig,
        aggregator: Aggregator | None = None,
        attack=None,
        compromised_ids: list[int] | None = None,
        eval_fn: Callable[[np.ndarray, int], dict] | None = None,
        backend: ExecutionBackend | str | None = None,
        hooks: Sequence[RoundHook] | None = None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.algorithm = algorithm
        self.config = config
        # Shard-capable defenses fold across a worker pool when the config
        # asks for it; everything else keeps the single-fold path unchanged.
        defense = aggregator or MeanAggregator()
        self.aggregator = maybe_shard(defense, config.num_shards)
        if config.secure_aggregation:
            # Imported lazily to keep the server importable without the
            # secagg package in the hot path of plaintext runs.
            from repro.federated.secagg import SecureAggregator

            if self._algorithm_consumes_updates():
                raise ValueError(
                    f"algorithm {type(self.algorithm).__name__} consumes "
                    "per-client updates in post_aggregate, which secure "
                    "aggregation withholds from the server; disable "
                    "secure_aggregation or use an algorithm that only reads "
                    "the aggregate (e.g. fedavg)"
                )
            # The capability check runs against the configured defense, not
            # the shard wrapper around it (raises PlaintextRequiredError).
            self.aggregator = SecureAggregator(
                self.aggregator, seed=config.seed, check=defense
            )
        if config.streaming == "off" and getattr(self.aggregator, "streaming_only", False):
            # Fail fast: a streaming-only defense would otherwise waste a
            # full round of client training before its aggregate() raised.
            raise ValueError(
                f"defense {self.aggregator.name!r} only supports the "
                "streaming update path; run with streaming='auto' or 'on'"
            )
        self.attack = attack
        self.compromised_ids = set(compromised_ids or [])
        if self.attack is not None and not self.compromised_ids:
            raise ValueError("an attack requires at least one compromised client")
        self._rng = np.random.default_rng(config.seed)
        # Driver-side scratch model for personalisation/evaluation helpers;
        # parameters are overwritten on each use.  Also the source of the
        # initial global parameters (flatten_params copies), saving a
        # throwaway model allocation.
        self._worker_model = model_factory()
        self.global_params = flatten_params(self._worker_model)
        self.algorithm.init_state(dataset.num_clients, self.global_params.shape[0])
        if hasattr(self.algorithm, "set_label_distributions"):
            self.algorithm.set_label_distributions(
                np.stack([c.class_counts for c in dataset.clients])
            )
        self.history = TrainingHistory()
        self._closed = False

        self.backend = backend if isinstance(backend, ExecutionBackend) else make_backend(
            backend or "serial"
        )
        self.backend.bind(
            EngineContext(
                dataset=dataset,
                model_factory=model_factory,
                algorithm=algorithm,
                local_config=config.local,
                attack=attack,
                secagg_seed=config.seed if config.secure_aggregation else None,
            )
        )
        # The evaluation hook is registered first so user hooks observe round
        # records with metrics already filled in.
        self.hooks = HookPipeline()
        self._eval_hook: EvaluationHook | None = None
        if eval_fn is not None:
            self._install_eval_fn(eval_fn)
        for hook in hooks or ():
            self.hooks.add(hook)

    def _install_eval_fn(self, fn: Callable[[np.ndarray, int], dict] | None) -> None:
        """(Re-)register the evaluation hook, always first in the pipeline."""
        if self._eval_hook is not None:
            self.hooks.remove(self._eval_hook)
            self._eval_hook = None
        if fn is not None:
            self._eval_hook = EvaluationHook(fn, every=None)
            # Always first, so user hooks observe records with metrics filled
            # in — even when eval_fn is (re)assigned after construction.
            self.hooks.insert(0, self._eval_hook)

    @property
    def eval_fn(self) -> Callable[[np.ndarray, int], dict] | None:
        """Deprecated accessor for the evaluation callable.

        Kept for backward compatibility: assigning ``server.eval_fn = fn``
        (the historical monkey-patch) re-registers the evaluation hook
        instead of bypassing the pipeline.  Evaluation only fires when
        ``config.eval_every`` is set, as before.  New code should pass
        ``eval_fn`` to the constructor or register an
        :class:`~repro.federated.engine.hooks.EvaluationHook` directly.
        """
        warnings.warn(
            "FederatedServer.eval_fn is deprecated; pass eval_fn to the "
            "constructor or register an EvaluationHook on server.hooks",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._eval_hook.eval_fn if self._eval_hook is not None else None

    @eval_fn.setter
    def eval_fn(self, fn: Callable[[np.ndarray, int], dict] | None) -> None:
        warnings.warn(
            "assigning FederatedServer.eval_fn is deprecated; pass eval_fn "
            "to the constructor or register an EvaluationHook on server.hooks",
            DeprecationWarning,
            stacklevel=2,
        )
        self._install_eval_fn(fn)

    def add_hook(self, hook: RoundHook) -> RoundHook:
        """Register a round hook; returns it for chaining."""
        return self.hooks.add(hook)

    def run(self, rounds: int | None = None) -> TrainingHistory:
        """Execute the configured number of federated rounds."""
        total = rounds if rounds is not None else self.config.rounds
        for _ in range(total):
            self.run_round()
        return self.history

    def _streaming_round(self) -> bool:
        """Whether this round folds updates into the aggregator online."""
        mode = self.config.streaming
        if mode == "off":
            return False
        if mode == "on":
            return True
        return bool(getattr(self.aggregator, "streaming", False))

    def _algorithm_consumes_updates(self) -> bool:
        """Whether the algorithm's post_aggregate reads the benign updates."""
        return (
            type(self.algorithm).post_aggregate
            is not FederatedAlgorithm.post_aggregate
        )

    def _collect_buffered(self, plan, ctx):
        """Historical matrix path: round barrier, stack, one aggregate call."""
        results = self.backend.execute(plan, self.global_params)
        if self.hooks.wants_update_events():
            # Replay per-update events in aggregation order after the barrier
            # so on_update observers behave identically across paths.
            for result in results:
                self.hooks.update(self, plan, self.backend.make_update(result, plan))
        self.hooks.updates_collected(self, plan, results)

        benign_losses = [r.loss for r in results if not r.malicious]
        benign_updates_by_client = {
            r.client_id: r.update for r in results if not r.malicious
        }
        stacked = np.stack([r.update for r in results])
        aggregated = self.aggregator(stacked, self.global_params, ctx)
        return aggregated, benign_losses, benign_updates_by_client

    def _collect_streaming(self, plan, ctx):
        """Streaming path: fold updates into the aggregator as they arrive.

        The aggregator reorders arrivals onto the canonical sampled-slot
        order internally (see :meth:`~repro.defenses.base.Aggregator.
        accumulate`), so the result is bit-identical to the buffered path no
        matter which clients finish first.  The full update list is only
        retained when a hook or the training algorithm consumes it;
        otherwise a streaming defense keeps the round at O(param_dim).
        """
        state = self.aggregator.begin_round(ctx)
        retain = self.hooks.wants_collected_results() or self._algorithm_consumes_updates()
        retained: list = []
        benign_losses_by_slot: dict[int, float] = {}
        for update in self.backend.iter_updates(plan, self.global_params):
            self.hooks.update(self, plan, update)
            self.aggregator.accumulate(state, update)
            if not update.malicious:
                benign_losses_by_slot[update.slot] = update.loss
            if retain:
                retained.append(update)
        retained.sort(key=lambda u: u.slot)
        self.hooks.updates_collected(self, plan, retained)
        aggregated = self.aggregator.finalize(state, self.global_params, ctx)

        # Slot order, matching the buffered path's reductions bit-for-bit.
        benign_losses = [benign_losses_by_slot[s] for s in sorted(benign_losses_by_slot)]
        benign_updates_by_client = {
            u.client_id: u.update for u in retained if not u.malicious
        }
        return aggregated, benign_losses, benign_updates_by_client

    def run_round(self) -> RoundRecord:
        """Execute a single federated round and return its record."""
        round_idx = len(self.history)
        # Running another round after close() re-acquires backend resources
        # (the pool backends recreate their executors lazily), so the next
        # close() must actually release them again.
        self._closed = False
        sampled = sample_clients(
            self.dataset.num_clients,
            self.config.sample_rate,
            self._rng,
            min_clients=self.config.min_sampled_clients,
        )
        plan = build_round_plan(
            round_idx,
            sampled,
            self.compromised_ids,
            self.config.seed,
            attack_active=self.attack is not None,
        )
        self.hooks.round_start(self, plan)

        ctx = AggregationContext(
            rng=self._rng,
            round_idx=round_idx,
            sampled_clients=plan.sampled_clients,
        )
        collect = self._collect_streaming if self._streaming_round() else self._collect_buffered
        aggregated, benign_losses, benign_updates_by_client = collect(plan, ctx)

        self.global_params = self.global_params + self.config.server_lr * aggregated
        self.algorithm.post_aggregate(self.global_params, benign_updates_by_client)
        self.hooks.aggregated(self, plan, aggregated)

        record = RoundRecord(
            round_idx=round_idx,
            sampled_clients=list(plan.sampled_clients),
            compromised_sampled=plan.compromised_sampled,
            mean_benign_loss=float(np.mean(benign_losses)) if benign_losses else 0.0,
            update_norm=float(np.linalg.norm(aggregated)),
        )
        self.history.append(record)
        self.hooks.round_end(self, plan, record)
        return record

    def personalized_params(self, client_id: int, rng_seed: int | None = None) -> np.ndarray:
        """Personalised parameters of one client under the active algorithm."""
        rng = np.random.default_rng(
            rng_seed if rng_seed is not None else personalization_seed(self.config.seed, client_id)
        )
        return self.algorithm.personalized_params(
            client_id,
            self.global_params,
            self._worker_model,
            self.dataset.client(client_id).train,
            self.config.local,
            rng,
        )

    def close(self) -> None:
        """Release backend and shard-pool worker resources (idempotent).

        Closes the execution backend — including a distributed coordinator's
        worker processes — and any shard worker pool the aggregator holds.
        Safe to call repeatedly; the server remains usable for driver-side
        helpers (``personalized_params``, history access) after closing.
        """
        if self._closed:
            return
        self._closed = True
        self.backend.close()
        closer = getattr(self.aggregator, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "FederatedServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: workers and shard pools never leak."""
        self.close()
