"""Deterministic RNG stream derivation shared across the federated stack.

Every source of randomness in a federated run is derived from the run seed
through the helpers below, so that results are reproducible regardless of
*where* a computation executes (serial loop, thread pool, worker process).
The per-client stream depends only on ``(seed, round_idx, client_id)``: two
backends that execute the same :class:`~repro.federated.engine.plan.ClientTask`
draw exactly the same random numbers, which is what makes the parallel
execution backends bit-identical to the serial one.
"""

from __future__ import annotations

import numpy as np

# The historical multipliers of the original server loop, kept verbatim so
# refactors stay bit-identical to the seed implementation.  The mapping is
# injective only while client_id < 1009 and round_idx * 1009 + client_id <
# 1_000_003; beyond that, distinct (round, client) pairs can share a stream
# (e.g. round 0 / client 1009 and round 1 / client 0).  Fine at reproduction
# scale; revisit (e.g. hash-based mixing) before paper-scale populations.
CLIENT_STREAM_PRIME = 1_000_003
ROUND_STREAM_PRIME = 1_009
PERSONALIZATION_PRIME = 31

#: Domain-separation tag of the secure-aggregation pair-mask streams.  The
#: pair streams are derived through :class:`numpy.random.SeedSequence` (not
#: the historical prime multipliers) because mask security rests on the
#: streams being pairwise independent; the tag keeps them disjoint from any
#: other SeedSequence-derived stream a future subsystem might add.
SECAGG_PAIR_TAG = 0x5EC466

#: Domain-separation tag of lazy client-population streams: everything a
#: :class:`~repro.federated.population.ClientPopulation` draws per client —
#: dataset size, label mix — comes from ``(seed, client_id, POPULATION_TAG)``,
#: so a client's shard is a pure function of ``(seed, cid)`` and re-deriving
#: after an LRU eviction reproduces it bit-identically.
POPULATION_TAG = 0x909

#: Domain-separation tag of participation-model streams (availability,
#: churn sessions, device-tier assignment, permanent dropout).  These run on
#: their own tagged streams — never the server's round RNG — so switching a
#: run from ``uniform`` to a churn/tiered model cannot shift the server
#: stream that the ``uniform`` bit-identity guarantee pins.
PARTICIPATION_TAG = 0x9A47

#: Domain-separation tag of per-round latency draws.  Each round derives one
#: stream from ``(seed, round_idx, LATENCY_TAG)`` and draws a full
#: population-length vector from it, so the latency of client ``cid`` in
#: round ``t`` is deterministic in ``(seed, t, cid)`` and independent of who
#: else was sampled — which is what keeps buffered-async arrival order
#: bit-identical across execution backends.
LATENCY_TAG = 0x1A7E

#: Entropy words handed to SeedSequence must be non-negative; run seeds are
#: plain Python ints, so they are reduced into the 64-bit word the sequence
#: mixes.  Collisions would need seeds 2**64 apart — not a practical concern.
_SEED_WORD_MASK = (1 << 64) - 1


def client_stream_seed(seed: int, round_idx: int, client_id: int) -> int:
    """Seed of the RNG stream a client uses in one round of local training."""
    return seed * CLIENT_STREAM_PRIME + round_idx * ROUND_STREAM_PRIME + client_id


def client_rng(seed: int, round_idx: int, client_id: int) -> np.random.Generator:
    """Fresh generator for one ``(seed, round, client)`` training stream."""
    return np.random.default_rng(client_stream_seed(seed, round_idx, client_id))


def personalization_seed(seed: int, client_id: int) -> int:
    """Seed of the RNG stream used to derive a client's personalised model."""
    return seed * PERSONALIZATION_PRIME + client_id


def personalization_rng(seed: int, client_id: int) -> np.random.Generator:
    """Fresh generator for one client's personalisation stream."""
    return np.random.default_rng(personalization_seed(seed, client_id))


def pair_mask_seed_sequence(
    seed: int, round_idx: int, client_a: int, client_b: int
) -> np.random.SeedSequence:
    """Seed sequence of one client pair's secure-aggregation mask stream.

    Deterministic in ``(seed, round, {client_a, client_b})``: the pair is
    canonicalised to ``(min, max)`` order, so both endpoints of a pair derive
    the *same* stream — which is what makes the pairwise masks cancel.  Every
    execution site (driver backend, remote worker, recovery re-dispatch)
    re-derives masks from this sequence alone, so a client that dies
    mid-round needs no explicit mask hand-off: re-deriving is reconstruction.
    """
    if client_a == client_b:
        raise ValueError("a client does not share a mask stream with itself")
    lo, hi = sorted((int(client_a), int(client_b)))
    return np.random.SeedSequence(
        (int(seed) & _SEED_WORD_MASK, int(round_idx), lo, hi, SECAGG_PAIR_TAG)
    )


def pair_mask_rng(
    seed: int, round_idx: int, client_a: int, client_b: int
) -> np.random.Generator:
    """Fresh generator for one pair's secure-aggregation mask stream."""
    return np.random.default_rng(pair_mask_seed_sequence(seed, round_idx, client_a, client_b))


def population_seed_sequence(seed: int, client_id: int) -> np.random.SeedSequence:
    """Seed sequence of one lazy-population client's metadata/data stream."""
    return np.random.SeedSequence(
        (int(seed) & _SEED_WORD_MASK, int(client_id), POPULATION_TAG)
    )


def population_rng(seed: int, client_id: int) -> np.random.Generator:
    """Fresh generator for one lazy-population client's stream."""
    return np.random.default_rng(population_seed_sequence(seed, client_id))


def participation_seed_sequence(
    seed: int, round_idx: int, domain: int
) -> np.random.SeedSequence:
    """Seed sequence of one participation-model stream.

    ``domain`` separates the model's independent concerns (sampling mask,
    availability sessions, tier assignment, permanent dropout — constants in
    :mod:`repro.federated.population.participation`); ``round_idx`` is the
    round or session index the stream belongs to, ``0`` for run-constant
    draws such as tier assignment.
    """
    return np.random.SeedSequence(
        (int(seed) & _SEED_WORD_MASK, int(round_idx), int(domain), PARTICIPATION_TAG)
    )


def participation_rng(seed: int, round_idx: int, domain: int) -> np.random.Generator:
    """Fresh generator for one participation-model stream."""
    return np.random.default_rng(participation_seed_sequence(seed, round_idx, domain))


def latency_seed_sequence(seed: int, round_idx: int) -> np.random.SeedSequence:
    """Seed sequence of one round's client-latency draw stream."""
    return np.random.SeedSequence(
        (int(seed) & _SEED_WORD_MASK, int(round_idx), LATENCY_TAG)
    )


def latency_rng(seed: int, round_idx: int) -> np.random.Generator:
    """Fresh generator for one round's client-latency draws."""
    return np.random.default_rng(latency_seed_sequence(seed, round_idx))
