"""Deterministic RNG stream derivation shared across the federated stack.

Every source of randomness in a federated run is derived from the run seed
through the helpers below, so that results are reproducible regardless of
*where* a computation executes (serial loop, thread pool, worker process).
The per-client stream depends only on ``(seed, round_idx, client_id)``: two
backends that execute the same :class:`~repro.federated.engine.plan.ClientTask`
draw exactly the same random numbers, which is what makes the parallel
execution backends bit-identical to the serial one.
"""

from __future__ import annotations

import numpy as np

# The historical multipliers of the original server loop, kept verbatim so
# refactors stay bit-identical to the seed implementation.  The mapping is
# injective only while client_id < 1009 and round_idx * 1009 + client_id <
# 1_000_003; beyond that, distinct (round, client) pairs can share a stream
# (e.g. round 0 / client 1009 and round 1 / client 0).  Fine at reproduction
# scale; revisit (e.g. hash-based mixing) before paper-scale populations.
CLIENT_STREAM_PRIME = 1_000_003
ROUND_STREAM_PRIME = 1_009
PERSONALIZATION_PRIME = 31


def client_stream_seed(seed: int, round_idx: int, client_id: int) -> int:
    """Seed of the RNG stream a client uses in one round of local training."""
    return seed * CLIENT_STREAM_PRIME + round_idx * ROUND_STREAM_PRIME + client_id


def client_rng(seed: int, round_idx: int, client_id: int) -> np.random.Generator:
    """Fresh generator for one ``(seed, round, client)`` training stream."""
    return np.random.default_rng(client_stream_seed(seed, round_idx, client_id))


def personalization_seed(seed: int, client_id: int) -> int:
    """Seed of the RNG stream used to derive a client's personalised model."""
    return seed * PERSONALIZATION_PRIME + client_id


def personalization_rng(seed: int, client_id: int) -> np.random.Generator:
    """Fresh generator for one client's personalisation stream."""
    return np.random.default_rng(personalization_seed(seed, client_id))
