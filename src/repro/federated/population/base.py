"""Lazy client populations: the federation as a generator, not a list.

The eager :class:`~repro.data.federated_data.FederatedDataset` materialises
every client's data up front, which caps simulations at a few thousand
clients.  A :class:`ClientPopulation` instead *describes* each client by a
deterministic per-cid spec: a client's metadata (size, label mix) and data
shard are pure functions of ``(population seed, cid)`` — derived through the
:func:`~repro.federated.rng.population_seed_sequence` streams — so only the
clients a round actually samples ever exist in memory.  Materialised shards
are held in a small LRU cache keyed by cid; evicting and re-materialising a
client reproduces its shard bit-identically, which is what keeps a
1e5–1e6-client run at O(sampled clients) peak memory without giving up the
repo's per-seed determinism guarantee.

A population duck-types the ``FederatedDataset`` surface the rest of the
stack consumes — ``num_clients``, ``client(cid)``, ``num_classes``,
``alpha``, ``input_shape``, ``metadata``, ``label_distributions()``,
``auxiliary_dataset(...)``, ``eval_client_ids()`` — so the server, engine
backends, attacks and the evaluation helpers run unchanged on top of it.

Populations are a registry family (``repro list populations``); members are
built from specs like ``"synthetic:cache_size=128"`` with the runner wiring
the scenario's data geometry (generator, num_clients, alpha, seed) in as
defaults.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.data.dataset import Dataset, train_test_val_split
from repro.data.federated_data import ClientData, pool_client_datasets
from repro.federated.rng import _SEED_WORD_MASK, POPULATION_TAG, population_rng
from repro.registry import DATASETS, POPULATIONS


class ClientPopulation:
    """Base class of lazy client populations.

    Subclasses implement :meth:`_materialize` (build one client's
    :class:`~repro.data.federated_data.ClientData` from scratch — must be a
    pure function of the population's configuration and ``cid``) and
    :meth:`class_counts` (the client's label metadata, cheap enough to call
    without building any sample arrays).  Everything else — the LRU cache,
    the ``FederatedDataset``-compatible surface — lives here.
    """

    name = "population"

    def __init__(self, num_clients: int, cache_size: int = 64) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self._num_clients = int(num_clients)
        self.cache_size = int(cache_size)
        self._cache: OrderedDict[int, ClientData] = OrderedDict()
        #: Total number of (re-)materialisations — cache misses — so far.
        #: Tests and benchmarks read this to pin laziness and eviction
        #: behaviour; it is not part of any determinism contract.
        self.materializations = 0

    # -- FederatedDataset-compatible surface --------------------------------

    @property
    def num_clients(self) -> int:
        return self._num_clients

    def client(self, client_id: int) -> ClientData:
        """The client's materialised data, served from the LRU cache."""
        cid = int(client_id)
        if not 0 <= cid < self._num_clients:
            raise IndexError(f"client id {cid} outside population [0, {self._num_clients})")
        cached = self._cache.get(cid)
        if cached is not None:
            self._cache.move_to_end(cid)
            return cached
        data = self._materialize(cid)
        self.materializations += 1
        self._cache[cid] = data
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return data

    def label_distributions(self) -> np.ndarray:
        """Stacked ``(num_clients, num_classes)`` class-count matrix.

        Built from :meth:`class_counts` alone — O(num_clients · num_classes)
        memory, no sample arrays — so per-client-state algorithms can still
        read the label skew of a large population.
        """
        return np.stack(
            [self.class_counts(cid) for cid in range(self._num_clients)]
        )

    def auxiliary_dataset(self, compromised_ids: list[int], source: str = "val") -> Dataset:
        """Pool the compromised clients' data (same semantics as the eager set)."""
        if not compromised_ids:
            raise ValueError("need at least one compromised client")
        return pool_client_datasets(self.client, compromised_ids, source=source)

    def auxiliary_class_counts(
        self, compromised_ids: list[int], source: str = "val"
    ) -> np.ndarray:
        """Class-count vector of the attacker's auxiliary dataset."""
        aux = self.auxiliary_dataset(compromised_ids, source=source)
        return aux.class_counts(self.num_classes)

    def eval_client_ids(self) -> list[int]:
        """Deterministic subset of clients the runner evaluates at the end.

        Full-population evaluation is O(num_clients) materialisations;
        subclasses cap it (see :class:`SyntheticPopulation.eval_clients`).
        """
        return list(range(self._num_clients))

    # -- cache introspection -------------------------------------------------

    def cache_info(self) -> dict:
        """Current cache occupancy and lifetime materialisation count."""
        return {
            "size": len(self._cache),
            "max_size": self.cache_size,
            "materializations": self.materializations,
        }

    # -- subclass obligations ------------------------------------------------

    def class_counts(self, client_id: int) -> np.ndarray:
        """Length-``num_classes`` label counts of one client (cheap)."""
        raise NotImplementedError

    def _materialize(self, client_id: int) -> ClientData:
        """Build one client's data from scratch; pure in ``(config, cid)``."""
        raise NotImplementedError


@POPULATIONS.register("synthetic")
class SyntheticPopulation(ClientPopulation):
    """Lazy population over a registered synthetic data generator.

    Per-client metadata is drawn from the client's own
    :func:`~repro.federated.rng.population_rng` stream: a lognormal dataset
    size around ``samples_per_client`` (sigma ``size_imbalance``, the same
    heavy-tailed LEAF-style spread as the eager builder) and a
    ``Dirichlet(α)`` label mix.  The sample arrays themselves reuse the
    generator's ``sample_client`` with the eager builder's per-cid seed
    derivation (``seed·100003 + cid`` for content, ``seed·7919 + cid`` for
    the train/test/val split), so a population client looks exactly like an
    eager client of the same generator — only its existence is lazy.

    ``dataset`` accepts a registry spec (``"femnist:num_classes=5"``) or an
    already-built generator instance (anything exposing ``num_classes`` and
    ``sample_client``) — the experiment runner passes the instance it built
    from the scenario's geometry fields.
    """

    name = "synthetic"

    def __init__(
        self,
        dataset="femnist",
        num_clients: int = 1000,
        samples_per_client: int = 24,
        alpha: float = 0.5,
        seed: int = 0,
        size_imbalance: float = 0.3,
        min_samples: int = 8,
        cache_size: int = 64,
        eval_clients: int = 32,
    ) -> None:
        super().__init__(num_clients=num_clients, cache_size=cache_size)
        if samples_per_client <= 0:
            raise ValueError("samples_per_client must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if eval_clients < 1:
            raise ValueError("eval_clients must be at least 1")
        self.generator = (
            dataset if hasattr(dataset, "sample_client") else DATASETS.create(dataset)
        )
        self.samples_per_client = int(samples_per_client)
        self.alpha = float(alpha)
        self.seed = int(seed)
        self.size_imbalance = float(size_imbalance)
        self.min_samples = int(min_samples)
        self.eval_clients = int(eval_clients)
        self.num_classes = int(self.generator.num_classes)
        self.input_shape = self._infer_input_shape()
        self.metadata = {
            "seed": self.seed,
            "samples_per_client": self.samples_per_client,
            "population": self.name,
        }

    def _infer_input_shape(self) -> tuple[int, ...]:
        """Sample geometry from generator attributes, without materialising."""
        embedding_dim = getattr(self.generator, "embedding_dim", None)
        if embedding_dim is not None:
            return (int(embedding_dim),)
        size = int(self.generator.image_size)
        return (1, size, size)

    def class_counts(self, client_id: int) -> np.ndarray:
        """Draw the client's size and label mix from its population stream.

        The draw order (size, then Dirichlet proportions, then the
        multinomial split) is part of the population's determinism contract:
        reordering it changes every client of every existing seed.
        """
        rng = population_rng(self.seed, int(client_id))
        spread = rng.lognormal(
            mean=-0.5 * self.size_imbalance**2, sigma=self.size_imbalance
        )
        size = max(self.min_samples, int(round(self.samples_per_client * spread)))
        proportions = rng.dirichlet(np.full(self.num_classes, self.alpha))
        return rng.multinomial(size, proportions).astype(np.int64)

    def _materialize(self, client_id: int) -> ClientData:
        cid = int(client_id)
        counts = self.class_counts(cid)
        data = self.generator.sample_client(
            counts, client_seed=self.seed * 100003 + cid
        )
        split_rng = np.random.default_rng(self.seed * 7919 + cid)
        train, test, val = train_test_val_split(data, rng=split_rng)
        return ClientData(
            client_id=cid, train=train, test=test, val=val, class_counts=counts
        )

    def eval_client_ids(self) -> list[int]:
        """At most ``eval_clients`` ids, drawn once per ``(seed, population)``.

        The draw comes from a dedicated four-word population stream (tag
        position differs from per-cid streams), so it cannot collide with or
        perturb any client's own metadata stream.
        """
        if self.eval_clients >= self._num_clients:
            return list(range(self._num_clients))
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed & _SEED_WORD_MASK, 0, POPULATION_TAG, 1))
        )
        chosen = rng.choice(self._num_clients, size=self.eval_clients, replace=False)
        return sorted(int(c) for c in chosen)
