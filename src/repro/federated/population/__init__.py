"""Lazy client populations and participation models.

See :mod:`repro.federated.population.base` (the ``ClientPopulation``
abstraction and the ``populations`` registry family) and
:mod:`repro.federated.population.participation` (the ``ParticipationModel``
API and the ``participation`` registry family).
"""

from repro.federated.population.base import ClientPopulation, SyntheticPopulation
from repro.federated.population.participation import (
    ChurnParticipation,
    ParticipationContext,
    ParticipationModel,
    ParticipationRound,
    TieredParticipation,
    UniformParticipation,
    uniform_sample,
)

__all__ = [
    "ClientPopulation",
    "SyntheticPopulation",
    "ParticipationContext",
    "ParticipationModel",
    "ParticipationRound",
    "UniformParticipation",
    "ChurnParticipation",
    "TieredParticipation",
    "uniform_sample",
]
